#include "check/check.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "masm/cfg.h"

namespace ferrum::check {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kStaleCheck: return "stale-check";
    case ViolationKind::kUnguardedDetect: return "unguarded-detect";
    case ViolationKind::kDanglingCheck: return "dangling-check";
    case ViolationKind::kInvalidEdgeAssert: return "invalid-edge-assert";
    case ViolationKind::kSharedProducer: return "shared-producer";
    case ViolationKind::kRequisitionImbalance:
      return "requisition-imbalance";
    case ViolationKind::kRequisitionClobber: return "requisition-clobber";
    case ViolationKind::kRequisitionAcrossCall:
      return "requisition-across-call";
    case ViolationKind::kStackImbalance: return "stack-imbalance";
    case ViolationKind::kUninitSlotRead: return "uninit-slot-read";
    case ViolationKind::kStrayProtectionJump:
      return "stray-protection-jump";
    case ViolationKind::kTrampolineFallthrough:
      return "trampoline-fallthrough";
  }
  return "?";
}

std::string to_string(const Violation& violation) {
  std::ostringstream os;
  os << violation.function << "/b" << violation.block << "#"
     << violation.inst << ": " << violation_kind_name(violation.kind)
     << ": " << violation.message;
  return os.str();
}

const char* site_kind_name(SiteKind kind) {
  return masm::fault_site_kind_name(kind);
}

const char* site_status_name(SiteStatus status) {
  switch (status) {
    case SiteStatus::kProtected: return "protected";
    case SiteStatus::kBenign: return "benign";
    case SiteStatus::kUnprotected: return "unprotected";
  }
  return "?";
}

namespace {

using masm::AsmBlock;
using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::InstOrigin;
using masm::LiveSet;
using masm::MemRef;
using masm::Op;
using masm::Operand;

// ------------------------------------------------------- value numbering --

using Vn = std::uint64_t;

// Structural tags for interned value numbers. Two abstract values are
// "provably equal on every fault-free execution" exactly when they intern
// to the same Vn.
enum Tag : std::uint64_t {
  kTagConst = 1,   // (value)
  kTagEntryGpr,    // (reg)
  kTagEntryXmm,    // (xmm, lane)
  kTagEntryFlags,  // ()
  kTagStackAddr,   // (offset from entry rsp)
  kTagAddr,        // (base vn, index vn, scale, disp)
  kTagGlobalAddr,  // (global id, disp)
  kTagOp,          // (op, a, b, width)
  kTagFlagsCmp,    // (op, a, b, width)
  kTagFlagsAlu,    // (result vn)
  kTagSetcc,       // (cc, flags vn)
  kTagLoad,        // (addr vn, width, epoch)
  kTagCallRet,     // (inst id, loc)
  kTagPhi,         // (block, loc, sub)
  kTagMerge,       // (old vn, byte vn)
  kTagView,        // (width, vn)
  kTagZext,        // (vn) -- 32->64 implicit zero extension
};

class VnTable {
 public:
  Vn make(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
          std::uint64_t d = 0, std::uint64_t e = 0) {
    const std::array<std::uint64_t, 5> key{a, b, c, d, e};
    auto it = interned_.find(key);
    if (it != interned_.end()) return it->second;
    const Vn vn = next_++;
    interned_.emplace(key, vn);
    keys_.emplace(vn, key);
    return vn;
  }

  Vn const_vn(std::uint64_t value) {
    const Vn vn = make(kTagConst, value);
    const_value_.emplace(vn, value);
    return vn;
  }

  bool const_of(Vn vn, std::uint64_t* value) const {
    auto it = const_value_.find(vn);
    if (it == const_value_.end()) return false;
    *value = it->second;
    return true;
  }

  Vn const0() { return const_vn(0); }

  /// Low-`width` view of `vn` (folds constants). Views are canonical:
  /// they see through value-preserving wrappers so the same value keeps
  /// the same narrow vn whether it was held in a register or round-
  /// tripped through a wider spill slot. `view(zext32(s), 4) == s`
  /// mirrors written_val's 32-bit-write encoding (vn4 = s verbatim),
  /// `view(merge(old, b), 1) == b` mirrors its byte-write encoding
  /// (vn1 = b verbatim), and a narrower view of a view unwraps — an
  /// EDDI master spilled at width 8 then reread at width 4 would
  /// otherwise stop matching its never-spilled duplicate.
  Vn view(Vn vn, int width) {
    if (width >= 8) return vn;
    std::uint64_t c = 0;
    if (const_of(vn, &c)) {
      const std::uint64_t mask =
          width == 4 ? 0xffff'ffffULL : 0xffULL;
      return const_vn(c & mask);
    }
    if (auto it = keys_.find(vn); it != keys_.end()) {
      const auto& key = it->second;
      if (key[0] == kTagZext) {
        return width == 4 ? static_cast<Vn>(key[1])
                          : view(static_cast<Vn>(key[1]), width);
      }
      if (key[0] == kTagView && width <= static_cast<int>(key[1])) {
        return width == static_cast<int>(key[1])
                   ? vn
                   : view(static_cast<Vn>(key[2]), width);
      }
      if (key[0] == kTagMerge && width == 1) return static_cast<Vn>(key[2]);
    }
    return make(kTagView, static_cast<std::uint64_t>(width), vn);
  }

  Vn zext32(Vn vn) {
    std::uint64_t c = 0;
    if (const_of(vn, &c)) return const_vn(c & 0xffff'ffffULL);
    return make(kTagZext, vn);
  }

 private:
  std::map<std::array<std::uint64_t, 5>, Vn> interned_;
  std::map<Vn, std::array<std::uint64_t, 5>> keys_;
  std::map<Vn, std::uint64_t> const_value_;
  Vn next_ = 16;
};

// ------------------------------------------------------------- obligations --

// Exactness of a taint: how faithfully a location mirrors the fault site's
// written value. 1/4/8 = that many low bytes are a bit-exact copy; 0 =
// derived (corruption maps unpredictably); kExactCc = the location is the
// 0/1 materialisation of a flags site under one condition code; kExactFlags
// = the flags location itself still holds the site's flags.
constexpr std::uint8_t kExactCc = 9;
constexpr std::uint8_t kExactFlags = 10;

struct Taint {
  int ob = -1;
  std::uint8_t exact = 0;
  std::uint8_t lane = 0;  // xmm: site-local lane; cc-exact: the Cond code
};
using Taints = std::vector<Taint>;

enum class ObKind { kGpr, kXmm, kFlags, kStore, kBranch };

struct Ob {
  int block = 0;
  int inst = 0;
  ObKind kind = ObKind::kGpr;
  Op op = Op::kMov;
  InstOrigin origin = InstOrigin::kFromIR;
  std::string operand;
  SiteKind site = SiteKind::kGprWrite;
  int store_size = 8;
  int checked = 0;  // low bytes of the written value observed by a check
  std::uint8_t lanes_written = 0;
  std::uint8_t lanes_checked = 0;
  bool escaped = false;
  std::string note;
  bool control_read = false;
  bool live_out = false;
  bool pending_cluster = false;
  bool protected_override = false;
  std::string override_note;
  std::set<int> reader_ccs;
  int discharge_cc = -1;
  bool cc_conflict = false;
};

struct Discharge {
  int ob = -1;
  std::uint8_t exact = 0;
  std::uint8_t lane = 0;
};

// ---------------------------------------------------------- abstract state --

constexpr int kNoWriter = -1;
constexpr int kJoinWriter = -2;

struct Val {
  Vn vn = 0;   // 64-bit view
  Vn vn4 = 0;  // low-32 view
  Vn vn1 = 0;  // low-8 view
  int writer = kNoWriter;
  int flags_writer = kNoWriter;  // producer of flags at setcc time
  bool has_off = false;          // rsp/rbp-derived stack address
  std::int64_t off = 0;          // offset from entry rsp
  Taints taints;
};

struct SlotVal {
  Val val;
  int width = 8;
};

struct ReqEntry {
  Gpr victim = Gpr::kNone;
  std::int64_t slot_off = 0;
};

struct AbsState {
  bool reachable = false;
  std::array<Val, masm::kGprCount> gpr;
  std::array<std::array<Val, 4>, masm::kXmmCount> xmm;
  Val flags;
  std::map<std::int64_t, SlotVal> slots;            // entry-rsp-relative
  std::map<std::pair<int, Vn>, SlotVal> cells;      // (global id, addr vn)
  std::map<std::pair<int, Vn>, int> facts;          // (cc, vn) -> 0/1
  std::vector<ReqEntry> req;
  std::int64_t rsp_off = 0;
  bool rsp_known = true;
};

bool same_val(const Val& a, const Val& b) {
  return a.vn == b.vn && a.vn4 == b.vn4 && a.vn1 == b.vn1 &&
         a.writer == b.writer && a.flags_writer == b.flags_writer &&
         a.has_off == b.has_off && a.off == b.off;
}

/// Structural equality of the pieces the fixpoint tracks (taints are
/// record-pass-only and deliberately excluded).
bool same_state(const AbsState& a, const AbsState& b) {
  if (a.reachable != b.reachable) return false;
  for (int r = 0; r < masm::kGprCount; ++r)
    if (!same_val(a.gpr[r], b.gpr[r])) return false;
  for (int x = 0; x < masm::kXmmCount; ++x)
    for (int l = 0; l < 4; ++l)
      if (!same_val(a.xmm[x][l], b.xmm[x][l])) return false;
  if (!same_val(a.flags, b.flags)) return false;
  if (a.slots.size() != b.slots.size()) return false;
  for (auto ita = a.slots.begin(), itb = b.slots.begin();
       ita != a.slots.end(); ++ita, ++itb) {
    if (ita->first != itb->first ||
        ita->second.width != itb->second.width ||
        !same_val(ita->second.val, itb->second.val))
      return false;
  }
  if (a.cells.size() != b.cells.size()) return false;
  for (auto ita = a.cells.begin(), itb = b.cells.begin();
       ita != a.cells.end(); ++ita, ++itb) {
    if (ita->first != itb->first ||
        ita->second.width != itb->second.width ||
        !same_val(ita->second.val, itb->second.val))
      return false;
  }
  if (a.facts != b.facts) return false;
  if (a.req.size() != b.req.size()) return false;
  for (std::size_t k = 0; k < a.req.size(); ++k)
    if (a.req[k].victim != b.req[k].victim ||
        a.req[k].slot_off != b.req[k].slot_off)
      return false;
  return a.rsp_off == b.rsp_off && a.rsp_known == b.rsp_known;
}

int gi(Gpr reg) { return static_cast<int>(reg); }

const char* kGprNames[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                           "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                           "r12", "r13", "r14", "r15"};

constexpr int kByteFactCc = 100;  // pseudo condition: "this i1 byte is 1"

// --------------------------------------------------------------- checker --

namespace {

// A pending check candidate: the flag-producing (or xor) instruction whose
// verdict the next `jne detect` consumes. Stale candidates expire because
// application requires `id == jcc_id - 1`.
struct Candidate {
  int id = -3;
  bool valid = false;
  bool shared_producer = false;
  bool edge_assert = false;
  Vn assert_vn1 = 0;
  std::vector<Discharge> dis;
  int own_flags_ob = -1;
  std::string fail;
};

// One captured branch-condition byte at a protected branch: the setcc
// materialisation parked in a spare flag register or a frame slot.
struct Cap {
  Vn vn1 = 0;
  int flags_writer = kNoWriter;
  bool prot = false;  // capture written by a kProtection instruction
  std::vector<Discharge> obs;
};

struct Cluster {
  int block = 0;
  int inst = 0;
  int jcc_ob = -1;
  int cc = 0;
  int taken = -1;
  int fall = -1;
  std::vector<Cap> caps;
};

class FunctionChecker {
 public:
  FunctionChecker(const AsmFunction& fn, const CheckOptions& options,
                  CheckReport* report)
      : fn_(fn), opts_(options), report_(report), live_(fn) {}

  void run();

 private:
  // ---- value / taint plumbing ----

  Vn vn_at(const Val& v, int w) const {
    return w >= 8 ? v.vn : (w == 4 ? v.vn4 : v.vn1);
  }

  Val written_val(const Val& old, Vn s, int w, int writer) {
    Val v;
    v.writer = writer;
    if (w >= 8) {
      v.vn = s;
      v.vn4 = vt_.view(s, 4);
      v.vn1 = vt_.view(s, 1);
    } else if (w == 4) {
      v.vn = vt_.zext32(s);  // 32-bit writes zero-extend
      v.vn4 = s;
      v.vn1 = vt_.view(s, 1);
    } else {
      v.vn1 = s;
      if (old.vn1 == s && old.vn != 0) {  // byte rewrite with same value
        v.vn = old.vn;
        v.vn4 = old.vn4;
      } else {
        v.vn = vt_.make(kTagMerge, old.vn, s);
        v.vn4 = vt_.make(kTagMerge, old.vn4, s);
      }
    }
    return v;
  }

  static std::uint8_t clamp_exact(std::uint8_t exact, int w) {
    if (exact == 0 || exact == kExactCc) return exact;
    if (exact == kExactFlags) return 0;  // flags never copied as a value
    return static_cast<std::uint8_t>(std::min<int>(exact, w));
  }

  bool uncovered(const Taint& t, int w) const {
    const Ob& ob = obs_[t.ob];
    if (ob.kind == ObKind::kXmm)
      return (ob.lanes_checked >> t.lane & 1) == 0;
    if (t.exact >= kExactCc) return ob.checked < 8;
    const int need = t.exact == 0 ? 8 : std::min<int>(t.exact, w);
    return ob.checked < need;
  }

  static void add_taint(Taints& ts, Taint t) {
    for (Taint& u : ts) {
      if (u.ob == t.ob && u.lane == t.lane) {
        u.exact = std::min(u.exact, t.exact);
        return;
      }
    }
    ts.push_back(t);
  }

  /// Taints visible to a `w`-byte read: covered ones dropped, exactness
  /// clamped to the read width. A non-xmm taint with `lane != 0` is a
  /// *merge remnant*: the VM flips the merged 64-bit register value, so a
  /// narrow write can corrupt the preserved bytes above it — visible only
  /// to reads wider than the written width and never discharged by a
  /// same-width check.
  Taints reach(const Taints& ts, int w) const {
    Taints out;
    for (const Taint& t : ts) {
      if (t.exact == 0 && t.lane != 0 && obs_[t.ob].kind != ObKind::kXmm &&
          w <= t.lane)
        continue;
      if (!uncovered(t, w)) continue;
      add_taint(out, Taint{t.ob, clamp_exact(t.exact, w), t.lane});
    }
    return out;
  }

  Taints derived(std::initializer_list<const Taints*> sources) const {
    Taints out;
    for (const Taints* ts : sources)
      for (const Taint& t : *ts)
        add_taint(out, Taint{t.ob, 0,
                             obs_[t.ob].kind == ObKind::kXmm
                                 ? t.lane
                                 : std::uint8_t{0}});
    return out;
  }

  // ---- obligations ----

  int new_ob(int b, int i, const AsmInst& inst, ObKind kind, SiteKind site,
             std::string operand, int store_size = 8,
             std::uint8_t lanes_written = 1) {
    if (!record_) return -1;
    Ob ob;
    ob.block = b;
    ob.inst = i;
    ob.kind = kind;
    ob.op = inst.op;
    ob.origin = inst.origin;
    ob.operand = std::move(operand);
    ob.site = site;
    ob.store_size = store_size;
    ob.lanes_written = lanes_written;
    obs_.push_back(std::move(ob));
    return static_cast<int>(obs_.size()) - 1;
  }

  static void self_taint(Taints& ts, int ob, std::uint8_t exact,
                         std::uint8_t lane = 0) {
    if (ob >= 0) add_taint(ts, Taint{ob, exact, lane});
  }

  void escape(const Taints& ts, int w, const char* note) {
    for (const Taint& t : ts) {
      if (!uncovered(t, w)) continue;
      Ob& ob = obs_[t.ob];
      if (ob.pending_cluster || ob.escaped) continue;
      ob.escaped = true;
      ob.note = note;
    }
  }

  void violate(ViolationKind kind, int b, int i, std::string msg) {
    if (!violation_seen_
             .emplace(static_cast<int>(kind), b * 10000 + i)
             .second)
      return;
    Violation v;
    v.kind = kind;
    v.function = fn_.name;
    v.block = b;
    v.inst = i;
    v.message = std::move(msg);
    report_->violations.push_back(std::move(v));
  }

  // ---- register / memory access ----

  struct RV {
    Vn vn = 0;
    // Low-byte view of the value carried alongside a wide (w >= 4) read.
    // A setcc result spilled and reloaded at word width would otherwise
    // lose its byte identity (the reload's view vn differs from the
    // original setcc vn), breaking edge-assert validation of trampolines
    // that test the reloaded condition byte. 0 = no byte view known.
    Vn vn1 = 0;
    Taints taints;
    int writer = kNoWriter;
    int flags_writer = kNoWriter;
    bool has_off = false;
    std::int64_t off = 0;
  };

  RV read_gpr(const AbsState& st, Gpr reg, int w) const {
    const Val& v = st.gpr[gi(reg)];
    RV r;
    r.vn = vn_at(v, w);
    if (w >= 4) r.vn1 = v.vn1;
    r.taints = reach(v.taints, w);
    r.writer = v.writer;
    r.flags_writer = v.flags_writer;
    r.has_off = v.has_off && w == 8;
    r.off = v.off;
    return r;
  }

  void write_gpr(AbsState& st, Gpr reg, int w, Vn s, Taints ts, int writer,
                 int flags_writer = kNoWriter, bool has_off = false,
                 std::int64_t off = 0) {
    Val& old = st.gpr[gi(reg)];
    Val v = written_val(old, s, w, writer);
    v.flags_writer = w == 1 ? flags_writer : kNoWriter;
    v.has_off = has_off;
    v.off = off;
    if (w == 1) {
      // Byte writes merge: bits 8..63 of the old value survive.
      v.taints = reach(old.taints, 8);
      for (const Taint& t : ts) add_taint(v.taints, t);
    } else {
      v.taints = std::move(ts);
    }
    old = std::move(v);
  }

  RV read_xmm_lane(const AbsState& st, int x, int lane) const {
    const Val& v = st.xmm[x][lane];
    RV r;
    r.vn = v.vn;
    r.taints = reach(v.taints, 8);
    r.writer = v.writer;
    return r;
  }

  void write_xmm_lane(AbsState& st, int x, int lane, Vn s, Taints ts,
                      int writer) {
    Val v = written_val(Val{}, s, 8, writer);
    v.taints = std::move(ts);
    st.xmm[x][lane] = std::move(v);
  }

  struct Addr {
    bool is_slot = false;
    std::int64_t off = 0;
    int gid = -1;
    Vn vn = 0;
    Taints taints;  // derived taints of the address registers
  };

  Addr resolve_addr(const AbsState& st, const MemRef& m) {
    Addr a;
    RV base, index;
    Vn base_vn = 0, index_vn = 0;
    if (m.base != Gpr::kNone) {
      base = read_gpr(st, m.base, 8);
      base_vn = base.vn;
    }
    if (m.index != Gpr::kNone) {
      index = read_gpr(st, m.index, 8);
      index_vn = index.vn;
    }
    a.taints = derived({&base.taints, &index.taints});
    a.gid = m.global_id;
    if (m.global_id >= 0) {
      a.vn = vt_.make(kTagGlobalAddr, static_cast<std::uint64_t>(m.global_id),
                      static_cast<std::uint64_t>(m.disp), base_vn, index_vn);
      return a;
    }
    if (base.has_off && m.index == Gpr::kNone) {
      a.is_slot = true;
      a.off = base.off + m.disp;
      a.vn = vt_.make(kTagStackAddr, static_cast<std::uint64_t>(a.off));
      return a;
    }
    a.vn = vt_.make(kTagAddr, base_vn, index_vn,
                    static_cast<std::uint64_t>(m.scale),
                    static_cast<std::uint64_t>(m.disp));
    return a;
  }

  RV load_mem(AbsState& st, const MemRef& m, int w, int b, int i,
              const AsmInst& inst) {
    Addr a = resolve_addr(st, m);
    RV r;
    if (a.is_slot) {
      auto it = st.slots.find(a.off);
      if (it != st.slots.end() && it->second.width >= w) {
        const Val& v = it->second.val;
        r.vn = vn_at(v, w);
        if (w >= 4) r.vn1 = v.vn1;
        r.taints = reach(v.taints, w);
        r.writer = v.writer;
        r.flags_writer = v.flags_writer;
      } else {
        if (it == st.slots.end() && record_ &&
            inst.origin == InstOrigin::kProtection) {
          violate(ViolationKind::kUninitSlotRead, b, i,
                  "protection load from slot never written on this path");
        }
        r.vn = fresh_load(b, a.vn, w);
        r.writer = kNoWriter;
        if (it != st.slots.end()) r.taints = reach(it->second.val.taints, 8);
      }
    } else {
      auto it = st.cells.find({a.gid, a.vn});
      if (it != st.cells.end() && it->second.width >= w) {
        const Val& v = it->second.val;
        r.vn = vn_at(v, w);
        if (w >= 4) r.vn1 = v.vn1;
        r.taints = reach(v.taints, w);
        r.writer = v.writer;
        r.flags_writer = v.flags_writer;
      } else {
        r.vn = fresh_load(b, a.vn, w);
      }
    }
    for (const Taint& t : a.taints) add_taint(r.taints, t);
    return r;
  }

  Vn fresh_load(int b, Vn addr_vn, int w) {
    // Epoch is block-local so duplicate loads inside one block VN-match
    // (EDDI load duplication, the SIMD direct-load fast path) while loads
    // in different blocks never unify across unseen stores.
    return vt_.make(kTagLoad, addr_vn, static_cast<std::uint64_t>(w),
                    static_cast<std::uint64_t>(b) << 16 | epoch_);
  }

  void store_mem(AbsState& st, const MemRef& m, int w, Val v) {
    Addr a = resolve_addr(st, m);
    escape(a.taints, 8, "computes a store address");
    if (a.is_slot) {
      auto lo = a.off;
      for (auto it = st.slots.begin(); it != st.slots.end();) {
        const auto off2 = it->first;
        if (off2 != lo && off2 < lo + w && off2 + it->second.width > lo)
          it = st.slots.erase(it);
        else
          ++it;
      }
      st.slots[lo] = SlotVal{std::move(v), w};
      return;
    }
    if (a.gid >= 0) {
      // Distinct globals never alias; same-global cells with a different
      // address vn and unknown-address cells (gid -1, which may point into
      // this global) may.
      for (auto it = st.cells.begin(); it != st.cells.end();) {
        if ((it->first.first == a.gid && it->first.second != a.vn) ||
            it->first.first == -1)
          it = st.cells.erase(it);
        else
          ++it;
      }
      st.cells[{a.gid, a.vn}] = SlotVal{std::move(v), w};
      return;
    }
    // Untracked address: clear every cell it may alias, then remember this
    // one exact-vn cell so an immediate load-back verification (the
    // protect_store_data re-check) still sees the stored value. Frame
    // slots are deliberately kept — the backend only addresses the frame
    // through rsp/rbp, which resolve_addr always classifies as slots.
    st.cells.clear();
    ++epoch_;
    st.cells[{-1, a.vn}] = SlotVal{std::move(v), w};
  }

  // ---- flags ----

  void write_flags(AbsState& st, Vn vnf, int writer, Taints ts, int b,
                   int /*i*/) {
    if (pending_check_ >= 0 && record_) {
      violate(ViolationKind::kDanglingCheck, b, pending_check_,
              "check result overwritten before any detect branch reads it");
    }
    pending_check_ = -1;
    Val v;
    v.vn = v.vn4 = v.vn1 = vnf;
    v.writer = writer;
    v.taints = std::move(ts);
    st.flags = std::move(v);
  }

  /// Bookkeeping for a flags read under condition `cc` (jcc or setcc).
  /// Returns the cc-exact taints a setcc materialisation inherits.
  Taints mark_flags_read(AbsState& st, int cc, bool suppress_control,
                         bool pending_ok) {
    Taints cc_taints;
    for (const Taint& t : st.flags.taints) {
      if (t.ob < 0) continue;
      Ob& ob = obs_[t.ob];
      if (t.exact == kExactFlags) {
        ob.reader_ccs.insert(cc);
        if (!uncovered(t, 8)) {
          if (ob.discharge_cc >= 0 && ob.discharge_cc != cc)
            ob.cc_conflict = true;
          continue;
        }
        add_taint(cc_taints, Taint{t.ob, kExactCc,
                                   static_cast<std::uint8_t>(cc)});
        if (!suppress_control && !(pending_ok && ob.pending_cluster))
          ob.control_read = true;
      } else {
        if (!uncovered(t, 8)) continue;
        add_taint(cc_taints, Taint{t.ob, 0, t.lane});
        if (!suppress_control && !(pending_ok && ob.pending_cluster))
          ob.control_read = true;
      }
    }
    pending_check_ = -1;
    return cc_taints;
  }

  // ---- joins ----

  Vn phi(int block, int loc, int sub) {
    return vt_.make(kTagPhi, static_cast<std::uint64_t>(block),
                    static_cast<std::uint64_t>(loc),
                    static_cast<std::uint64_t>(sub));
  }

  bool join_val(Val& d, const Val& s, int block, int loc) {
    if (same_val(d, s)) return false;
    Val j;
    j.vn = d.vn == s.vn ? d.vn : phi(block, loc, 0);
    j.vn4 = d.vn4 == s.vn4 ? d.vn4 : phi(block, loc, 1);
    j.vn1 = d.vn1 == s.vn1 ? d.vn1 : phi(block, loc, 2);
    j.writer = d.writer == s.writer ? d.writer : kJoinWriter;
    j.flags_writer =
        d.flags_writer == s.flags_writer ? d.flags_writer : kJoinWriter;
    if (d.has_off && s.has_off && d.off == s.off) {
      j.has_off = true;
      j.off = d.off;
      j.vn = d.vn;  // stack addresses join to themselves
    }
    const bool changed = !same_val(j, d);
    j.taints = d.taints;
    d = std::move(j);
    return changed;
  }

  bool join_into(AbsState& dst, const AbsState& src, int block) {
    if (!dst.reachable) {
      dst = src;
      return true;
    }
    bool changed = false;
    for (int r = 0; r < masm::kGprCount; ++r)
      changed |= join_val(dst.gpr[r], src.gpr[r], block, r);
    for (int x = 0; x < masm::kXmmCount; ++x)
      for (int l = 0; l < 4; ++l)
        changed |= join_val(dst.xmm[x][l], src.xmm[x][l], block,
                            100 + x * 4 + l);
    changed |= join_val(dst.flags, src.flags, block, 99);
    // Slots: keep keys present in both with matching width.
    for (auto it = dst.slots.begin(); it != dst.slots.end();) {
      auto sit = src.slots.find(it->first);
      if (sit == src.slots.end() || sit->second.width != it->second.width) {
        it = dst.slots.erase(it);
        changed = true;
      } else {
        changed |= join_val(it->second.val, sit->second.val, block,
                            200 + static_cast<int>(it->first & 0xffff));
        ++it;
      }
    }
    for (auto it = dst.cells.begin(); it != dst.cells.end();) {
      auto sit = src.cells.find(it->first);
      if (sit == src.cells.end() ||
          !same_val(sit->second.val, it->second.val)) {
        it = dst.cells.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (auto it = dst.facts.begin(); it != dst.facts.end();) {
      auto sit = src.facts.find(it->first);
      if (sit == src.facts.end() || sit->second != it->second) {
        it = dst.facts.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    const bool req_match =
        dst.req.size() == src.req.size() &&
        std::equal(dst.req.begin(), dst.req.end(), src.req.begin(),
                   [](const ReqEntry& a, const ReqEntry& b) {
                     return a.victim == b.victim && a.slot_off == b.slot_off;
                   });
    if (!req_match)
      violate(ViolationKind::kStackImbalance, block, 0,
              "requisition stacks disagree between joined paths");
    if (dst.rsp_known && src.rsp_known && dst.rsp_off != src.rsp_off) {
      violate(ViolationKind::kStackImbalance, block, 0,
              "stack depth disagrees between joined paths");
      dst.rsp_known = false;
      changed = true;
    }
    return changed;
  }

  AbsState entry_state() {
    AbsState st;
    st.reachable = true;
    for (int r = 0; r < masm::kGprCount; ++r) {
      st.gpr[r] = written_val(
          Val{}, vt_.make(kTagEntryGpr, static_cast<std::uint64_t>(r)), 8,
          kNoWriter);
    }
    st.gpr[gi(Gpr::kRsp)].has_off = true;
    st.gpr[gi(Gpr::kRsp)].off = 0;
    st.gpr[gi(Gpr::kRsp)].vn = vt_.make(kTagStackAddr, 0);
    for (int x = 0; x < masm::kXmmCount; ++x)
      for (int l = 0; l < 4; ++l)
        st.xmm[x][l] = written_val(
            Val{},
            vt_.make(kTagEntryXmm, static_cast<std::uint64_t>(x),
                     static_cast<std::uint64_t>(l)),
            8, kNoWriter);
    st.flags.vn = st.flags.vn4 = st.flags.vn1 = vt_.make(kTagEntryFlags);
    return st;
  }

  // ---- members ----

  const AsmFunction& fn_;
  const CheckOptions& opts_;
  CheckReport* report_;
  masm::Liveness live_;
  VnTable vt_;

  std::vector<Ob> obs_;
  std::vector<int> block_first_id_;
  std::vector<char> is_detect_;
  std::vector<AbsState> in_;
  std::set<std::pair<int, int>> violation_seen_;
  std::map<Vn, std::pair<int, Vn>> setcc_info_;  // setcc vn -> (cc, flags vn)
  std::map<Vn, Vn> test_byte_;   // `test $1, byte` flags vn -> byte vn
  std::map<int, std::vector<Discharge>> vpxor_info_;  // inst id -> lane diffs
  std::map<int, std::set<Vn>> asserts_;  // block -> edge-asserted byte vns
  std::vector<Cluster> clusters_;

  bool record_ = false;
  std::uint64_t epoch_ = 0;
  int pending_check_ = -1;  // inst index of an unconsumed check producer
  Candidate cand_;

  void exec_block(int b, AbsState st,
                  const std::function<void(int, AbsState)>& propagate);
  void transfer(int b, int i, const AsmInst& inst, AbsState& st,
                const std::function<void(int, AbsState)>& propagate,
                bool& terminated, bool& skip_next_jmp);
  void exec_alu(int b, int i, const AsmInst& inst, AbsState& st);
  void exec_call(int b, int i, const AsmInst& inst, AbsState& st);
  void do_jcc(int b, int i, const AsmInst& inst, AbsState& st,
              const std::function<void(int, AbsState)>& propagate,
              bool& terminated, bool& skip_next_jmp);
  void apply_discharge(const std::vector<Discharge>& dis, bool allow_cc);
  void end_of_block(int b, AbsState& st, bool fell_through, bool all_prot,
                    int last_i);
  void resolve_clusters();
  void finalize();

  RV read_operand(AbsState& st, const Operand& op, int w, int b, int i,
                  const AsmInst& inst) {
    switch (op.kind) {
      case Operand::Kind::kReg:
        return read_gpr(st, op.reg, w);
      case Operand::Kind::kImm: {
        RV r;
        std::uint64_t v = static_cast<std::uint64_t>(op.imm);
        if (w == 4) v &= 0xffff'ffffULL;
        if (w == 1) v &= 0xffULL;
        r.vn = vt_.const_vn(v);
        return r;
      }
      case Operand::Kind::kMem:
        return load_mem(st, op.mem, w, b, i, inst);
      case Operand::Kind::kXmm:
        return read_xmm_lane(st, op.xmm, 0);
      default:
        return RV{};
    }
  }

  std::string operand_str(const Operand& op) const {
    if (op.kind == Operand::Kind::kReg)
      return std::string("%") + kGprNames[gi(op.reg)];
    if (op.kind == Operand::Kind::kXmm)
      return std::string("%xmm") + std::to_string(op.xmm);
    if (op.kind == Operand::Kind::kMem) return "mem";
    return "?";
  }
};

}  // namespace

namespace {

void FunctionChecker::run() {
  const int nblocks = static_cast<int>(fn_.blocks.size());
  if (nblocks == 0) return;
  block_first_id_.resize(nblocks);
  is_detect_.resize(nblocks);
  int id = 0;
  for (int b = 0; b < nblocks; ++b) {
    block_first_id_[b] = id;
    id += static_cast<int>(fn_.blocks[b].insts.size());
    is_detect_[b] = !fn_.blocks[b].insts.empty() &&
                    fn_.blocks[b].insts[0].op == Op::kDetectTrap;
  }

  in_.assign(nblocks, AbsState{});
  record_ = false;
  // Per-edge out-states: re-executing a block *replaces* its previous
  // contribution along each edge (incremental joins would keep stale
  // facts/value-numbers from earlier fixpoint rounds alive forever).
  std::map<std::pair<int, int>, AbsState> edge_out;
  edge_out[{-1, 0}] = entry_state();
  std::set<int> dirty{0};
  int guard = 0;
  while (!dirty.empty() && ++guard < 100000) {
    const int b = *dirty.begin();
    dirty.erase(dirty.begin());
    AbsState st;
    for (const auto& [key, es] : edge_out)
      if (key.second == b) join_into(st, es, b);
    in_[b] = st;
    std::set<std::pair<int, int>> touched;
    exec_block(b, std::move(st), [&, b](int succ, AbsState out) {
      if (succ < 0 || succ >= nblocks || is_detect_[succ]) return;
      const auto key = std::make_pair(b, succ);
      auto it = edge_out.find(key);
      if (touched.count(key) != 0) {
        join_into(it->second, out, succ);
      } else if (it != edge_out.end() && same_state(it->second, out)) {
        return;  // edge contribution unchanged: no re-propagation
      } else {
        edge_out[key] = std::move(out);
      }
      touched.insert(key);
      dirty.insert(succ);
    });
  }

  record_ = true;
  for (int b = 0; b < nblocks; ++b) {
    if (!in_[b].reachable || is_detect_[b]) continue;
    exec_block(b, in_[b], [](int, AbsState) {});
  }
  resolve_clusters();
  finalize();
}

void FunctionChecker::exec_block(
    int b, AbsState st, const std::function<void(int, AbsState)>& propagate) {
  const AsmBlock& block = fn_.blocks[b];
  const int nblocks = static_cast<int>(fn_.blocks.size());
  epoch_ = 0;
  pending_check_ = -1;
  cand_ = Candidate{};
  bool all_prot = !block.insts.empty();
  bool terminated = false;
  bool skip_next_jmp = false;
  int last_i = 0;
  const int n = static_cast<int>(block.insts.size());
  for (int i = 0; i < n && !terminated; ++i) {
    const AsmInst& inst = block.insts[i];
    last_i = i;
    if (inst.origin != InstOrigin::kProtection) {
      all_prot = false;
      if (record_ && !st.req.empty()) {
        const masm::UseDef ud = masm::use_def_of(inst);
        for (const ReqEntry& re : st.req) {
          if (((ud.use | ud.def) & masm::gpr_bit(re.victim)) != 0) {
            violate(ViolationKind::kRequisitionClobber, b, i,
                    std::string("instruction touches requisitioned %") +
                        kGprNames[gi(re.victim)]);
            break;
          }
        }
      }
    }
    if (skip_next_jmp && inst.op == Op::kJmp) {
      // the detect leg of a `jcc cont; jmp detect` check pair
      terminated = true;
      break;
    }
    skip_next_jmp = false;
    transfer(b, i, inst, st, propagate, terminated, skip_next_jmp);
  }
  end_of_block(b, st, !terminated, !terminated && all_prot ? 1 : 0,
               last_i);
  if (!terminated && b + 1 < nblocks) propagate(b + 1, std::move(st));
}

void FunctionChecker::end_of_block(int b, AbsState& st, bool fell_through,
                                   bool all_prot, int last_i) {
  if (record_) {
    if (pending_check_ >= 0)
      violate(ViolationKind::kDanglingCheck, b, pending_check_,
              "check result never consumed before the block ends");
    if (!st.req.empty())
      violate(ViolationKind::kRequisitionImbalance, b, last_i,
              "requisition window crosses a block boundary");
    if (fell_through && all_prot)
      violate(ViolationKind::kTrampolineFallthrough, b, last_i,
              "protection-only block falls off its end");
    const LiveSet lv = live_.live_out(b);
    auto mark_live = [&](const Taints& ts, int w) {
      for (const Taint& t : ts) {
        if (!uncovered(t, w)) continue;
        Ob& ob = obs_[t.ob];
        if (!ob.pending_cluster) ob.live_out = true;
      }
    };
    for (int r = 0; r < masm::kGprCount; ++r)
      if (masm::has_gpr(lv, static_cast<Gpr>(r)))
        mark_live(st.gpr[r].taints, 8);
    for (int x = 0; x < masm::kXmmCount; ++x)
      if (masm::has_xmm(lv, x))
        for (int l = 0; l < 4; ++l) mark_live(st.xmm[x][l].taints, 8);
    if (masm::has_flags(lv)) mark_live(st.flags.taints, 8);
    for (const auto& [off, slot] : st.slots)
      if (off >= st.rsp_off) mark_live(slot.val.taints, 8);
    for (const auto& [key, cell] : st.cells) mark_live(cell.val.taints, 8);
  }
  pending_check_ = -1;
}

void FunctionChecker::exec_call(int b, int i, const AsmInst& inst,
                                AbsState& st) {
  const int id = block_first_id_[b] + i;
  const std::string& callee = inst.ops[0].label;
  if (callee == "print_int") {
    escape(read_gpr(st, Gpr::kRdi, 8).taints, 8, "reaches program output");
    return;
  }
  if (callee == "print_f64") {
    escape(read_xmm_lane(st, 0, 0).taints, 8, "reaches program output");
    return;
  }
  if (record_ && !st.req.empty())
    violate(ViolationKind::kRequisitionAcrossCall, b, i,
            "requisition window left open across a call");
  if (record_) {
    if (opts_.store_data_sites) {
      const int sob = new_ob(b, i, inst, ObKind::kStore,
                             SiteKind::kStoreData, "mem", 8);
      if (sob >= 0) {
        obs_[sob].escaped = true;
        obs_[sob].note = "return-address push is unverifiable";
      }
    }
    static const Gpr kArgRegs[] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                                   Gpr::kRcx, Gpr::kR8,  Gpr::kR9};
    for (Gpr r : kArgRegs)
      escape(read_gpr(st, r, 8).taints, 8, "passed to a callee");
    for (int x = 0; x < 8; ++x)
      escape(read_xmm_lane(st, x, 0).taints, 8, "passed to a callee");
    for (const auto& [key, cell] : st.cells)
      escape(cell.val.taints, 8, "global memory visible to a callee");
  }
  static const Gpr kClobbered[] = {Gpr::kRax, Gpr::kRcx, Gpr::kRdx,
                                   Gpr::kRsi, Gpr::kRdi, Gpr::kR8,
                                   Gpr::kR9,  Gpr::kR10, Gpr::kR11};
  for (Gpr r : kClobbered) {
    st.gpr[gi(r)] = written_val(
        Val{},
        vt_.make(kTagCallRet, static_cast<std::uint64_t>(id),
                 static_cast<std::uint64_t>(gi(r))),
        8, id);
  }
  for (int x = 0; x < masm::kXmmCount; ++x)
    for (int l = 0; l < 4; ++l)
      st.xmm[x][l] = written_val(
          Val{},
          vt_.make(kTagCallRet, static_cast<std::uint64_t>(id),
                   static_cast<std::uint64_t>(100 + x * 4 + l)),
          8, id);
  write_flags(st,
              vt_.make(kTagCallRet, static_cast<std::uint64_t>(id), 99),
              id, {}, b, i);
  st.cells.clear();
  ++epoch_;
  for (auto it = st.slots.begin(); it != st.slots.end();)
    it = it->first < st.rsp_off ? st.slots.erase(it) : std::next(it);
}

void FunctionChecker::apply_discharge(const std::vector<Discharge>& dis,
                                      bool allow_cc) {
  for (const Discharge& d : dis) {
    if (d.ob < 0) continue;
    Ob& ob = obs_[d.ob];
    if (ob.kind == ObKind::kXmm) {
      ob.lanes_checked |= static_cast<std::uint8_t>(1u << d.lane);
      continue;
    }
    if (d.exact == kExactCc) {
      if (!allow_cc) continue;  // a lone byte assert can't prove the flags
      const int cc = d.lane;
      bool only_cc = true;
      for (int reader : ob.reader_ccs)
        if (reader != cc) only_cc = false;
      if (only_cc) {
        ob.checked = 8;
        ob.discharge_cc = cc;
      } else {
        ob.cc_conflict = true;
      }
      continue;
    }
    ob.checked = std::max<int>(ob.checked, d.exact);
  }
}

void FunctionChecker::resolve_clusters() {
  for (const Cluster& cl : clusters_) {
    std::vector<const Cap*> qualified;
    for (const Cap& cap : cl.caps) {
      const bool taken_ok =
          cl.taken >= 0 && asserts_[cl.taken].count(cap.vn1) != 0;
      const bool fall_ok =
          cl.fall >= 0 && asserts_[cl.fall].count(cap.vn1) != 0;
      if (taken_ok && fall_ok) qualified.push_back(&cap);
    }
    std::set<int> writers;
    for (const Cap* cap : qualified) writers.insert(cap->flags_writer);
    if (qualified.size() >= 2 && writers.size() >= 2) {
      for (const Cap* cap : qualified) apply_discharge(cap->obs, true);
      if (cl.jcc_ob >= 0) {
        obs_[cl.jcc_ob].protected_override = true;
        obs_[cl.jcc_ob].override_note = "edge-asserted branch";
        obs_[cl.jcc_ob].pending_cluster = false;
      }
      continue;
    }
    std::set<int> all_writers;
    bool any_prot = false;
    for (const Cap& cap : cl.caps) {
      all_writers.insert(cap.flags_writer);
      any_prot |= cap.prot;
    }
    if (cl.caps.size() >= 2 && all_writers.size() == 1 &&
        *all_writers.begin() >= 0 && any_prot) {
      violate(ViolationKind::kSharedProducer, cl.block, cl.inst,
              "both branch captures derive from one flags producer");
    }
    if (cl.jcc_ob >= 0 && !obs_[cl.jcc_ob].note.empty()) continue;
    if (cl.jcc_ob >= 0) obs_[cl.jcc_ob].note = "cluster unverified";
  }
}

void FunctionChecker::finalize() {
  for (const Ob& ob : obs_) {
    SiteRecord rec;
    rec.function = fn_.name;
    rec.block = ob.block;
    rec.inst = ob.inst;
    rec.kind = ob.site;
    rec.op = ob.op;
    rec.origin = ob.origin;
    rec.operand = ob.operand;
    const bool full =
        ob.kind == ObKind::kXmm
            ? (ob.lanes_written & ~ob.lanes_checked) == 0
            : (ob.kind != ObKind::kBranch &&
               ob.checked >= std::min(ob.store_size, 8));
    if (ob.protected_override) {
      rec.status = SiteStatus::kProtected;
      rec.reason = ob.override_note;
    } else if (ob.cc_conflict) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = "flags consumed under a condition the check never covers";
    } else if (full) {
      rec.status = SiteStatus::kProtected;
      rec.reason = "written value checked before any observable use";
    } else if (ob.escaped) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = ob.note;
    } else if (ob.control_read) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = "feeds a branch decision";
    } else if (ob.live_out) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = "live across a block boundary";
    } else if (ob.pending_cluster) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = "branch capture never verified";
    } else if (ob.checked > 0 || ob.lanes_checked != 0) {
      rec.status = SiteStatus::kProtected;
      rec.reason = "partially checked; remainder provably unobserved";
    } else if (ob.kind == ObKind::kBranch) {
      rec.status = SiteStatus::kUnprotected;
      rec.reason = ob.note.empty() ? "unchecked branch" : ob.note;
    } else {
      rec.status = SiteStatus::kBenign;
      rec.reason = "written value never observed";
    }
    switch (rec.status) {
      case SiteStatus::kProtected: ++report_->protected_sites; break;
      case SiteStatus::kBenign: ++report_->benign_sites; break;
      case SiteStatus::kUnprotected: ++report_->unprotected_sites; break;
    }
    report_->sites.push_back(std::move(rec));
  }
}

}  // namespace

// ---- free taint helpers (used by the transfer rules) ----

void push_taint(Taints& ts, int ob, std::uint8_t exact, std::uint8_t lane) {
  if (ob < 0) return;
  for (Taint& u : ts) {
    if (u.ob == ob && u.lane == lane) {
      u.exact = std::min(u.exact, exact);
      return;
    }
  }
  ts.push_back(Taint{ob, exact, lane});
}

/// Self-taints of a w-byte GPR site: the low bytes are a bit-exact copy,
/// and for w<8 a merge remnant covers flips landing in the preserved bytes.
void gpr_site_taints(Taints& ts, int ob, int w) {
  if (ob < 0) return;
  push_taint(ts, ob, static_cast<std::uint8_t>(std::min(w, 8)), 0);
  if (w < 8) push_taint(ts, ob, 0, static_cast<std::uint8_t>(w));
}

/// Value-exact taints present in exactly one of the two compared values.
/// Common-mode taints (present in both) stay: a fault corrupting master
/// and duplicate identically is invisible to the comparison.
std::vector<Discharge> symdiff(const Taints& x, const Taints& y) {
  auto has = [](const Taints& ts, int ob, std::uint8_t lane) {
    for (const Taint& t : ts)
      if (t.ob == ob && t.lane == lane) return true;
    return false;
  };
  std::vector<Discharge> out;
  for (const Taint& t : x)
    if (t.exact >= 1 && t.exact <= kExactCc && !has(y, t.ob, t.lane))
      out.push_back(Discharge{t.ob, t.exact, t.lane});
  for (const Taint& t : y)
    if (t.exact >= 1 && t.exact <= kExactCc && !has(x, t.ob, t.lane))
      out.push_back(Discharge{t.ob, t.exact, t.lane});
  return out;
}

// ------------------------------------------------------- transfer rules --

void FunctionChecker::transfer(
    int b, int i, const AsmInst& inst, AbsState& st,
    const std::function<void(int, AbsState)>& propagate, bool& terminated,
    bool& skip_next_jmp) {
  const int id = block_first_id_[b] + i;
  auto set_rsp = [&](std::int64_t off) {
    st.rsp_off = off;
    st.rsp_known = true;
    Val v = written_val(
        Val{}, vt_.make(kTagStackAddr, static_cast<std::uint64_t>(off)), 8,
        id);
    v.has_off = true;
    v.off = off;
    st.gpr[gi(Gpr::kRsp)] = std::move(v);
  };
  switch (inst.op) {
    case Op::kMov: {
      const Operand& src = inst.ops[0];
      const Operand& dst = inst.ops[1];
      const int w = dst.width;
      RV r = read_operand(st, src, w, b, i, inst);
      if (dst.kind == Operand::Kind::kReg) {
        Taints ts = r.taints;
        const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                              operand_str(dst));
        gpr_site_taints(ts, ob, w);
        write_gpr(st, dst.reg, w, r.vn, std::move(ts), id, r.flags_writer,
                  r.has_off && w == 8, r.off);
        // A wide mov copies the low byte verbatim: keep the source's byte
        // view (e.g. a setcc identity) instead of the derived view vn.
        if (w >= 4 && r.vn1 != 0) st.gpr[gi(dst.reg)].vn1 = r.vn1;
        if (dst.reg == Gpr::kRsp && w == 8) {
          if (r.has_off) {
            st.rsp_off = r.off;
            st.rsp_known = true;
          } else {
            st.rsp_known = false;
          }
        }
      } else {
        Taints ts = r.taints;
        if (opts_.store_data_sites) {
          const int sob = new_ob(b, i, inst, ObKind::kStore,
                                 SiteKind::kStoreData, "mem", w);
          push_taint(ts, sob, static_cast<std::uint8_t>(std::min(w, 8)), 0);
        }
        Val v = written_val(Val{}, r.vn, w, id);
        v.flags_writer = w == 1 ? r.flags_writer : kNoWriter;
        v.has_off = r.has_off && w == 8;
        v.off = r.off;
        if (w >= 4 && r.vn1 != 0) v.vn1 = r.vn1;
        v.taints = std::move(ts);
        store_mem(st, dst.mem, w, std::move(v));
      }
      break;
    }
    case Op::kMovsx:
    case Op::kMovzx: {
      const int sw = inst.ops[0].width;
      const int dw = inst.ops[1].width;
      RV r = read_operand(st, inst.ops[0], sw, b, i, inst);
      const Vn vn =
          vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op), r.vn,
                   static_cast<std::uint64_t>(sw * 16 + dw));
      Taints ts = r.taints;
      const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                            operand_str(inst.ops[1]));
      gpr_site_taints(ts, ob, dw);
      write_gpr(st, inst.ops[1].reg, dw, vn, std::move(ts), id);
      if (sw == 1) {
        // The low byte is a verbatim copy: keep the setcc shape visible
        // so byte facts and captures survive an extension.
        Val& v = st.gpr[gi(inst.ops[1].reg)];
        v.vn1 = r.vn;
        v.flags_writer = r.flags_writer;
      }
      break;
    }
    case Op::kLea: {
      Addr a = resolve_addr(st, inst.ops[0].mem);
      Taints ts = a.taints;
      const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                            operand_str(inst.ops[1]));
      gpr_site_taints(ts, ob, 8);
      write_gpr(st, inst.ops[1].reg, 8, a.vn, std::move(ts), id, kNoWriter,
                a.is_slot, a.off);
      if (inst.ops[1].reg == Gpr::kRsp) {
        if (a.is_slot) {
          st.rsp_off = a.off;
          st.rsp_known = true;
        } else {
          st.rsp_known = false;
        }
      }
      break;
    }
    case Op::kPush: {
      RV r = read_gpr(st, inst.ops[0].reg, 8);
      set_rsp(st.rsp_off - 8);
      Taints ts = r.taints;
      if (opts_.store_data_sites) {
        const int sob = new_ob(b, i, inst, ObKind::kStore,
                               SiteKind::kStoreData, "mem", 8);
        push_taint(ts, sob, 8, 0);
      }
      Val v = written_val(Val{}, r.vn, 8, id);
      v.flags_writer = r.flags_writer;
      v.has_off = r.has_off;
      v.off = r.off;
      v.taints = std::move(ts);
      for (auto it = st.slots.begin(); it != st.slots.end();) {
        if (it->first != st.rsp_off && it->first < st.rsp_off + 8 &&
            it->first + it->second.width > st.rsp_off)
          it = st.slots.erase(it);
        else
          ++it;
      }
      st.slots[st.rsp_off] = SlotVal{std::move(v), 8};
      if (inst.origin == InstOrigin::kProtection)
        st.req.push_back(ReqEntry{inst.ops[0].reg, st.rsp_off});
      break;
    }
    case Op::kPop: {
      const Gpr reg = inst.ops[0].reg;
      if (inst.origin == InstOrigin::kProtection) {
        if (st.req.empty() || st.req.back().victim != reg ||
            st.req.back().slot_off != st.rsp_off) {
          if (record_)
            violate(ViolationKind::kRequisitionImbalance, b, i,
                    "pop does not close the innermost requisition window");
        }
        if (!st.req.empty()) st.req.pop_back();
      }
      RV r;
      auto it = st.slots.find(st.rsp_off);
      if (it != st.slots.end() && it->second.width == 8) {
        const Val& v = it->second.val;
        r.vn = v.vn;
        r.taints = reach(v.taints, 8);
        r.flags_writer = v.flags_writer;
        r.has_off = v.has_off;
        r.off = v.off;
      } else {
        r.vn = fresh_load(
            b, vt_.make(kTagStackAddr, static_cast<std::uint64_t>(st.rsp_off)),
            8);
      }
      // The slot entry survives: requisition_end rechecks -8(%rsp).
      Taints ts = r.taints;
      const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                            operand_str(inst.ops[0]));
      gpr_site_taints(ts, ob, 8);
      write_gpr(st, reg, 8, r.vn, std::move(ts), id, r.flags_writer,
                r.has_off, r.off);
      set_rsp(st.rsp_off + 8);
      break;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kImul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kSar:
    case Op::kIdiv:
    case Op::kIrem:
      exec_alu(b, i, inst, st);
      break;
    case Op::kCmp:
    case Op::kTest: {
      const int w = inst.ops[1].width;
      RV a = read_operand(st, inst.ops[1], w, b, i, inst);
      RV bb = read_operand(st, inst.ops[0],
                           inst.ops[0].kind == Operand::Kind::kReg
                               ? inst.ops[0].width
                               : w,
                           b, i, inst);
      const Vn f =
          vt_.make(kTagFlagsCmp, static_cast<std::uint64_t>(inst.op), a.vn,
                   bb.vn, static_cast<std::uint64_t>(w));
      const int fob = new_ob(b, i, inst, ObKind::kFlags,
                             SiteKind::kFlagsWrite, "flags");
      Taints fts = derived({&a.taints, &bb.taints});
      push_taint(fts, fob, kExactFlags, 0);
      if (inst.op == Op::kTest &&
          inst.ops[0].kind == Operand::Kind::kImm && inst.ops[0].imm == 1 &&
          w == 1)
        test_byte_[f] = a.vn;
      // Candidate must be built before write_flags trips any previously
      // pending check, but published after.
      Candidate cand;
      bool have_cand = false;
      if (inst.op == Op::kCmp) {
        have_cand = true;
        cand.id = id;
        cand.own_flags_ob = fob;
        if (inst.ops[0].kind == Operand::Kind::kImm && w == 1) {
          cand.edge_assert = true;
          const std::uint64_t want =
              static_cast<std::uint64_t>(inst.ops[0].imm) & 0xff;
          cand.assert_vn1 = a.vn;
          bool valid = a.vn == vt_.const_vn(want);
          if (!valid) {
            auto bf = st.facts.find({kByteFactCc, a.vn});
            if (bf != st.facts.end() &&
                static_cast<std::uint64_t>(bf->second) == want)
              valid = true;
          }
          if (!valid) {
            auto si = setcc_info_.find(a.vn);
            if (si != setcc_info_.end()) {
              auto ff = st.facts.find({si->second.first, si->second.second});
              if (ff != st.facts.end() &&
                  static_cast<std::uint64_t>(ff->second) == want)
                valid = true;
            }
          }
          cand.valid = valid;
          if (!valid) cand.fail = "assert not implied by the edge facts";
          for (const Taint& t : a.taints)
            if (t.exact >= 1 && t.exact <= 8)
              cand.dis.push_back(Discharge{t.ob, t.exact, t.lane});
        } else {
          if (a.vn != bb.vn) {
            cand.fail = "compared values are not provably master and duplicate";
          } else if (a.writer >= 0 && a.writer == bb.writer) {
            cand.shared_producer = true;
            cand.fail = "both compare operands come from one instruction";
          } else if (w == 1 && a.flags_writer >= 0 &&
                     a.flags_writer == bb.flags_writer &&
                     setcc_info_.count(a.vn) != 0) {
            cand.shared_producer = true;
            cand.fail = "compared materialisations share a flags producer";
          } else {
            cand.valid = true;
          }
          cand.dis = symdiff(a.taints, bb.taints);
        }
      }
      write_flags(st, f, id, std::move(fts), b, i);
      if (have_cand) {
        cand_ = std::move(cand);
        if (inst.origin == InstOrigin::kProtection) pending_check_ = i;
      }
      break;
    }
    case Op::kSetcc: {
      const Operand& dst = inst.ops[0];
      const int cc = static_cast<int>(inst.cc);
      const Vn s =
          vt_.make(kTagSetcc, static_cast<std::uint64_t>(cc), st.flags.vn);
      setcc_info_[s] = {cc, st.flags.vn};
      const int fw = st.flags.writer;
      Taints ts = mark_flags_read(st, cc, true, false);
      if (dst.kind == Operand::Kind::kReg) {
        const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                              operand_str(dst));
        gpr_site_taints(ts, ob, 1);
        write_gpr(st, dst.reg, 1, s, std::move(ts), id, fw);
      } else {
        if (opts_.store_data_sites) {
          const int sob = new_ob(b, i, inst, ObKind::kStore,
                                 SiteKind::kStoreData, "mem", 1);
          push_taint(ts, sob, 1, 0);
        }
        Val v = written_val(Val{}, s, 1, id);
        v.flags_writer = fw;
        v.taints = std::move(ts);
        store_mem(st, dst.mem, 1, std::move(v));
      }
      break;
    }
    case Op::kMovsd: {
      const Operand& src = inst.ops[0];
      const Operand& dst = inst.ops[1];
      if (dst.kind == Operand::Kind::kXmm) {
        RV r = src.kind == Operand::Kind::kXmm
                   ? read_xmm_lane(st, src.xmm, 0)
                   : load_mem(st, src.mem, 8, b, i, inst);
        Taints ts = r.taints;
        const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                              operand_str(dst), 8, 1);
        push_taint(ts, ob, 8, 0);
        write_xmm_lane(st, dst.xmm, 0, r.vn, std::move(ts), id);
      } else {
        RV r = read_xmm_lane(st, src.xmm, 0);
        Taints ts = r.taints;
        if (opts_.store_data_sites) {
          const int sob = new_ob(b, i, inst, ObKind::kStore,
                                 SiteKind::kStoreData, "mem", 8);
          push_taint(ts, sob, 8, 0);
        }
        Val v = written_val(Val{}, r.vn, 8, id);
        v.taints = std::move(ts);
        store_mem(st, dst.mem, 8, std::move(v));
      }
      break;
    }
    case Op::kMovq: {
      const Operand& src = inst.ops[0];
      const Operand& dst = inst.ops[1];
      if (dst.kind == Operand::Kind::kXmm) {
        const int sw = src.width != 0 ? src.width : 8;
        RV r = src.kind == Operand::Kind::kReg
                   ? read_gpr(st, src.reg, sw)
                   : load_mem(st, src.mem, sw, b, i, inst);
        const Vn v0 = sw == 4 ? vt_.zext32(r.vn) : r.vn;
        const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                              operand_str(dst), 8, 0b11);
        Taints t0 = r.taints;
        push_taint(t0, ob, 8, 0);
        write_xmm_lane(st, dst.xmm, 0, v0, std::move(t0), id);
        Taints t1;
        push_taint(t1, ob, 8, 1);
        write_xmm_lane(st, dst.xmm, 1, vt_.const0(), std::move(t1), id);
      } else if (dst.kind == Operand::Kind::kReg) {
        RV r = read_xmm_lane(st, src.xmm, 0);
        const int w = dst.width != 0 ? dst.width : 8;
        Taints ts = r.taints;
        const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                              operand_str(dst));
        gpr_site_taints(ts, ob, w);
        write_gpr(st, dst.reg, w, w == 4 ? vt_.view(r.vn, 4) : r.vn,
                  std::move(ts), id);
      } else {
        RV r = read_xmm_lane(st, src.xmm, 0);
        const int w = dst.width != 0 ? dst.width : 8;
        Taints ts = r.taints;
        if (opts_.store_data_sites) {
          const int sob = new_ob(b, i, inst, ObKind::kStore,
                                 SiteKind::kStoreData, "mem", w);
          push_taint(ts, sob, static_cast<std::uint8_t>(std::min(w, 8)), 0);
        }
        Val v =
            written_val(Val{}, w == 4 ? vt_.view(r.vn, 4) : r.vn, w, id);
        v.taints = std::move(ts);
        store_mem(st, dst.mem, w, std::move(v));
      }
      break;
    }
    case Op::kPinsrq: {
      const int lane = static_cast<int>(inst.ops[0].imm & 1);
      const Operand& src = inst.ops[1];
      const int sw = src.width != 0 ? src.width : 8;
      RV r = src.kind == Operand::Kind::kReg
                 ? read_gpr(st, src.reg, sw)
                 : load_mem(st, src.mem, sw, b, i, inst);
      Taints ts = r.taints;
      const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                            operand_str(inst.ops[2]), 8, 1);
      push_taint(ts, ob, 8, 0);
      write_xmm_lane(st, inst.ops[2].xmm, lane,
                     sw == 4 ? vt_.zext32(r.vn) : r.vn, std::move(ts), id);
      break;
    }
    case Op::kVinserti128: {
      const int sel = static_cast<int>(inst.ops[0].imm & 1);
      RV r0 = read_xmm_lane(st, inst.ops[1].xmm, 0);
      RV r1 = read_xmm_lane(st, inst.ops[1].xmm, 1);
      const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                            operand_str(inst.ops[2]), 8, 0b11);
      Taints t0 = r0.taints;
      push_taint(t0, ob, 8, 0);
      write_xmm_lane(st, inst.ops[2].xmm, sel * 2, r0.vn, std::move(t0),
                     id);
      Taints t1 = r1.taints;
      push_taint(t1, ob, 8, 1);
      write_xmm_lane(st, inst.ops[2].xmm, sel * 2 + 1, r1.vn, std::move(t1),
                     id);
      break;
    }
    case Op::kVpxor: {
      const int s2 = inst.ops[0].xmm;
      const int s1 = inst.ops[1].xmm;
      const int dx = inst.ops[2].xmm;
      const int active = inst.ops[2].ymm ? 4 : 2;
      const int ob = new_ob(
          b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
          operand_str(inst.ops[2]), 8,
          static_cast<std::uint8_t>((1u << active) - 1u));
      std::vector<Discharge> diffs;
      std::array<Val, 4> out;
      for (int l = 0; l < 4; ++l) {
        if (l >= active) {
          Taints ts;
          push_taint(ts, ob, 8, static_cast<std::uint8_t>(l));
          out[l] = written_val(Val{}, vt_.const0(), 8, id);
          out[l].taints = std::move(ts);
          continue;
        }
        RV a = read_xmm_lane(st, s1, l);
        RV bb = read_xmm_lane(st, s2, l);
        const Vn vn = a.vn == bb.vn
                          ? vt_.const0()
                          : vt_.make(kTagOp,
                                     static_cast<std::uint64_t>(Op::kVpxor),
                                     a.vn, bb.vn,
                                     static_cast<std::uint64_t>(l));
        for (const Discharge& d : symdiff(a.taints, bb.taints))
          diffs.push_back(d);
        Taints ts = derived({&a.taints, &bb.taints});
        push_taint(ts, ob, 8, static_cast<std::uint8_t>(l));
        out[l] = written_val(Val{}, vn, 8, id);
        out[l].taints = std::move(ts);
      }
      for (int l = 0; l < 4; ++l) st.xmm[dx][l] = std::move(out[l]);
      vpxor_info_[id] = std::move(diffs);
      break;
    }
    case Op::kVptest: {
      const int x1 = inst.ops[0].xmm;
      const int x2 = inst.ops[1].xmm;
      const int active = inst.ops[0].ymm || inst.ops[1].ymm ? 4 : 2;
      Candidate cand;
      cand.id = id;
      bool all_zero = x1 == x2;
      Taints fts;
      Vn agg = vt_.const0();
      for (int l = 0; l < active && x1 == x2; ++l) {
        RV r = read_xmm_lane(st, x1, l);
        if (r.vn != vt_.const0()) all_zero = false;
        Taints d = derived({&r.taints});
        for (const Taint& t : d) add_taint(fts, t);
        if (r.writer >= 0 && vpxor_info_.count(r.writer) != 0)
          for (const Discharge& dd : vpxor_info_[r.writer])
            cand.dis.push_back(dd);
        agg = vt_.make(kTagOp, static_cast<std::uint64_t>(Op::kVptest), agg,
                       r.vn, static_cast<std::uint64_t>(l));
      }
      if (all_zero) {
        cand.valid = true;
      } else {
        cand.fail = "stale SIMD batch: vptest operand is not a fresh "
                    "master^dup xor";
        cand.dis.clear();
      }
      const int fob = new_ob(b, i, inst, ObKind::kFlags,
                             SiteKind::kFlagsWrite, "flags");
      push_taint(fts, fob, kExactFlags, 0);
      cand.own_flags_ob = fob;
      write_flags(st, vt_.make(kTagFlagsCmp,
                               static_cast<std::uint64_t>(Op::kVptest), agg,
                               0, static_cast<std::uint64_t>(active)),
                  id, std::move(fts), b, i);
      cand_ = std::move(cand);
      if (inst.origin == InstOrigin::kProtection) pending_check_ = i;
      break;
    }
    case Op::kAddsd:
    case Op::kSubsd:
    case Op::kMulsd:
    case Op::kDivsd: {
      RV a = read_xmm_lane(st, inst.ops[1].xmm, 0);
      RV bb = inst.ops[0].kind == Operand::Kind::kXmm
                  ? read_xmm_lane(st, inst.ops[0].xmm, 0)
                  : load_mem(st, inst.ops[0].mem, 8, b, i, inst);
      const Vn res = vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op),
                              a.vn, bb.vn, 8);
      Taints ts = derived({&a.taints, &bb.taints});
      const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                            operand_str(inst.ops[1]), 8, 1);
      push_taint(ts, ob, 8, 0);
      write_xmm_lane(st, inst.ops[1].xmm, 0, res, std::move(ts), id);
      break;
    }
    case Op::kSqrtsd: {
      RV r = inst.ops[0].kind == Operand::Kind::kXmm
                 ? read_xmm_lane(st, inst.ops[0].xmm, 0)
                 : load_mem(st, inst.ops[0].mem, 8, b, i, inst);
      const Vn res = vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op),
                              r.vn, 0, 8);
      Taints ts = derived({&r.taints});
      const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                            operand_str(inst.ops[1]), 8, 1);
      push_taint(ts, ob, 8, 0);
      write_xmm_lane(st, inst.ops[1].xmm, 0, res, std::move(ts), id);
      break;
    }
    case Op::kCvtsi2sd: {
      const int sw = inst.ops[0].width != 0 ? inst.ops[0].width : 8;
      RV r = read_operand(st, inst.ops[0], sw, b, i, inst);
      const Vn res = vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op),
                              r.vn, static_cast<std::uint64_t>(sw), 8);
      Taints ts = derived({&r.taints});
      const int ob = new_ob(b, i, inst, ObKind::kXmm, SiteKind::kXmmWrite,
                            operand_str(inst.ops[1]), 8, 1);
      push_taint(ts, ob, 8, 0);
      write_xmm_lane(st, inst.ops[1].xmm, 0, res, std::move(ts), id);
      break;
    }
    case Op::kCvttsd2si: {
      RV r = read_xmm_lane(st, inst.ops[0].xmm, 0);
      const int w = inst.ops[1].width != 0 ? inst.ops[1].width : 8;
      const Vn res = vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op),
                              r.vn, 0, static_cast<std::uint64_t>(w));
      Taints ts = derived({&r.taints});
      const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                            operand_str(inst.ops[1]));
      gpr_site_taints(ts, ob, w);
      write_gpr(st, inst.ops[1].reg, w, res, std::move(ts), id);
      break;
    }
    case Op::kUcomisd: {
      RV a = read_xmm_lane(st, inst.ops[1].xmm, 0);
      RV bb = inst.ops[0].kind == Operand::Kind::kXmm
                  ? read_xmm_lane(st, inst.ops[0].xmm, 0)
                  : load_mem(st, inst.ops[0].mem, 8, b, i, inst);
      const Vn f = vt_.make(kTagFlagsCmp,
                            static_cast<std::uint64_t>(inst.op), a.vn, bb.vn,
                            8);
      const int fob = new_ob(b, i, inst, ObKind::kFlags,
                             SiteKind::kFlagsWrite, "flags");
      Taints fts = derived({&a.taints, &bb.taints});
      push_taint(fts, fob, kExactFlags, 0);
      // ir-eddi emits its double-precision checks as
      // `ucomisd dup, master; je cont; jmp detect` — the same value-pair
      // candidate shape as an integer cmp.
      Candidate cand;
      cand.id = id;
      cand.own_flags_ob = fob;
      if (a.vn != bb.vn) {
        cand.fail = "compared values are not provably master and duplicate";
      } else if (a.writer >= 0 && a.writer == bb.writer) {
        cand.shared_producer = true;
        cand.fail = "both compare operands come from one instruction";
      } else {
        cand.valid = true;
      }
      cand.dis = symdiff(a.taints, bb.taints);
      write_flags(st, f, id, std::move(fts), b, i);
      cand_ = std::move(cand);
      if (inst.origin == InstOrigin::kProtection) pending_check_ = i;
      break;
    }
    case Op::kJmp: {
      const int target = fn_.block_index(inst.ops[0].label);
      terminated = true;
      if (target >= 0 && !is_detect_[target]) propagate(target, st);
      break;
    }
    case Op::kJcc:
      do_jcc(b, i, inst, st, propagate, terminated, skip_next_jmp);
      break;
    case Op::kCall:
      exec_call(b, i, inst, st);
      break;
    case Op::kRet: {
      if (record_) {
        if (!st.req.empty())
          violate(ViolationKind::kRequisitionImbalance, b, i,
                  "requisition window still open at ret");
        if (st.rsp_known && st.rsp_off != 0)
          violate(ViolationKind::kStackImbalance, b, i,
                  "stack depth nonzero at ret");
        escape(read_gpr(st, Gpr::kRax, 8).taints, 8,
               "returned to the caller");
        escape(read_xmm_lane(st, 0, 0).taints, 8, "returned to the caller");
        static const Gpr kCalleeSaved[] = {Gpr::kRbx, Gpr::kRbp, Gpr::kR12,
                                           Gpr::kR13, Gpr::kR14, Gpr::kR15};
        for (Gpr r : kCalleeSaved)
          escape(read_gpr(st, r, 8).taints, 8,
                 "callee-saved register returned corrupted");
        for (const auto& [key, cell] : st.cells)
          escape(cell.val.taints, 8, "left in global memory");
      }
      st.req.clear();
      terminated = true;
      break;
    }
    case Op::kDetectTrap:
      terminated = true;
      break;
    default:
      break;
  }
}

void FunctionChecker::exec_alu(int b, int i, const AsmInst& inst,
                               AbsState& st) {
  const int id = block_first_id_[b] + i;
  const Operand& srcop = inst.ops[0];
  const Operand& dstop = inst.ops[1];
  const int w = dstop.width;
  const int sw =
      srcop.kind == Operand::Kind::kReg && srcop.width != 0 ? srcop.width
                                                            : w;
  RV bb = read_operand(st, srcop, sw, b, i, inst);
  RV a = dstop.kind == Operand::Kind::kReg
             ? read_gpr(st, dstop.reg, w)
             : load_mem(st, dstop.mem, w, b, i, inst);
  Vn res;
  bool has_off = false;
  std::int64_t off = 0;
  if (inst.op == Op::kXor && a.vn == bb.vn) {
    res = vt_.const0();
  } else if (w == 8 && a.has_off && srcop.kind == Operand::Kind::kImm &&
             (inst.op == Op::kAdd || inst.op == Op::kSub)) {
    has_off = true;
    off = inst.op == Op::kAdd ? a.off + srcop.imm : a.off - srcop.imm;
    res = vt_.make(kTagStackAddr, static_cast<std::uint64_t>(off));
  } else {
    res = vt_.make(kTagOp, static_cast<std::uint64_t>(inst.op), a.vn, bb.vn,
                   static_cast<std::uint64_t>(w));
  }
  Candidate cand;
  bool have_cand = false;
  if (inst.op == Op::kXor && dstop.kind == Operand::Kind::kReg) {
    have_cand = true;
    cand.id = id;
    if (a.vn != bb.vn) {
      cand.fail = "xor operands are not provably master and duplicate";
    } else if (a.writer >= 0 && a.writer == bb.writer) {
      cand.shared_producer = true;
      cand.fail = "both xor operands come from one instruction";
    } else if (w == 1 && a.flags_writer >= 0 &&
               a.flags_writer == bb.flags_writer &&
               setcc_info_.count(a.vn) != 0) {
      cand.shared_producer = true;
      cand.fail = "compared materialisations share a flags producer";
    } else {
      cand.valid = true;
    }
    cand.dis = symdiff(a.taints, bb.taints);
  }
  Taints fts = derived({&a.taints, &bb.taints});
  write_flags(st, vt_.make(kTagFlagsAlu, res), id, std::move(fts), b, i);
  if (have_cand) {
    cand_ = std::move(cand);
    if (inst.origin == InstOrigin::kProtection && cand_.valid)
      pending_check_ = i;
  }
  Taints ts = derived({&a.taints, &bb.taints});
  if (dstop.kind == Operand::Kind::kReg) {
    const int ob = new_ob(b, i, inst, ObKind::kGpr, SiteKind::kGprWrite,
                          operand_str(dstop));
    gpr_site_taints(ts, ob, w);
    write_gpr(st, dstop.reg, w, res, std::move(ts), id, kNoWriter, has_off,
              off);
    if (dstop.reg == Gpr::kRsp && w == 8) {
      if (has_off) {
        st.rsp_off = off;
        st.rsp_known = true;
      } else {
        st.rsp_known = false;
      }
    }
  } else {
    if (opts_.store_data_sites) {
      const int sob = new_ob(b, i, inst, ObKind::kStore,
                             SiteKind::kStoreData, "mem", w);
      push_taint(ts, sob, static_cast<std::uint8_t>(std::min(w, 8)), 0);
    }
    Val v = written_val(Val{}, res, w, id);
    v.taints = std::move(ts);
    store_mem(st, dstop.mem, w, std::move(v));
  }
}

void FunctionChecker::do_jcc(
    int b, int i, const AsmInst& inst, AbsState& st,
    const std::function<void(int, AbsState)>& propagate,
    bool& /*terminated*/, bool& skip_next_jmp) {
  const int id = block_first_id_[b] + i;
  const int cc = static_cast<int>(inst.cc);
  const int target = fn_.block_index(inst.ops[0].label);
  const AsmBlock& block = fn_.blocks[b];
  const bool tgt_detect = target >= 0 && is_detect_[target];
  int jmp_target = -1;
  if (i + 1 < static_cast<int>(block.insts.size()) &&
      block.insts[i + 1].op == Op::kJmp)
    jmp_target = fn_.block_index(block.insts[i + 1].ops[0].label);
  const bool shape_b = !tgt_detect && jmp_target >= 0 &&
                       is_detect_[jmp_target];

  const int bob =
      new_ob(b, i, inst, ObKind::kBranch, SiteKind::kBranchDecision,
             "branch");
  const Vn flags_vn = st.flags.vn;

  if (tgt_detect || shape_b) {
    // A check consumption: shape A (`jne detect`, fall = clean) or shape B
    // (`jcc cont; jmp detect`, taken = clean).
    const bool have_cand = cand_.id == id - 1;
    const bool valid = have_cand && cand_.valid;
    mark_flags_read(st, cc, valid, false);
    if (record_) {
      if (valid) {
        apply_discharge(cand_.dis, !cand_.edge_assert);
        if (cand_.own_flags_ob >= 0) {
          obs_[cand_.own_flags_ob].protected_override = true;
          obs_[cand_.own_flags_ob].override_note =
              "flags produced and consumed by the check itself";
        }
        if (bob >= 0) {
          obs_[bob].protected_override = true;
          obs_[bob].override_note = "detect branch of a valid check";
        }
        if (cand_.edge_assert) asserts_[b].insert(cand_.assert_vn1);
      } else {
        // Branching into the detect machinery claims to be a check, so
        // an invalid candidate is a violation regardless of the recorded
        // origin — parsed assembly carries no origin annotations.
        if (!have_cand)
          violate(ViolationKind::kUnguardedDetect, b, i,
                  "detect branch without an immediately preceding check");
        else if (cand_.shared_producer)
          violate(ViolationKind::kSharedProducer, b, i, cand_.fail);
        else if (cand_.edge_assert)
          violate(ViolationKind::kInvalidEdgeAssert, b, i, cand_.fail);
        else
          violate(ViolationKind::kStaleCheck, b, i, cand_.fail);
        if (bob >= 0)
          obs_[bob].note = "detect branch guarded by an invalid check";
      }
    }
    if (tgt_detect) {
      st.facts[{cc, flags_vn}] = 0;  // continue past the untaken detect leg
    } else {
      AbsState out = st;
      out.facts[{cc, flags_vn}] = 1;
      auto tb = test_byte_.find(flags_vn);
      if (tb != test_byte_.end())
        out.facts[{kByteFactCc, tb->second}] = 1;
      if (target >= 0) propagate(target, std::move(out));
      skip_next_jmp = true;
    }
    return;
  }

  if (record_ && inst.origin == InstOrigin::kProtection)
    violate(ViolationKind::kStrayProtectionJump, b, i,
            "protection branch does not guard the detect block");

  // Normal branch: collect the capture cluster (setcc materialisations of
  // this condition parked in registers or slots) for edge verification.
  bool have_caps = false;
  if (record_) {
    std::vector<Cap> caps;
    auto consider = [&](const Val& v) {
      if (v.writer < block_first_id_[b]) return;
      auto si = setcc_info_.find(v.vn1);
      if (si == setcc_info_.end() || si->second.first != cc) return;
      Cap cap;
      cap.vn1 = v.vn1;
      cap.flags_writer = v.flags_writer;
      const int wi = v.writer - block_first_id_[b];
      cap.prot = wi >= 0 && wi < static_cast<int>(block.insts.size()) &&
                 block.insts[wi].origin == InstOrigin::kProtection;
      for (const Taint& t : v.taints) {
        if (t.exact < 1 || t.exact > kExactCc) continue;
        if (!uncovered(t, t.exact == kExactCc ? 8 : 1)) continue;
        cap.obs.push_back(Discharge{t.ob, t.exact, t.lane});
      }
      caps.push_back(std::move(cap));
    };
    for (int r = 0; r < masm::kGprCount; ++r) consider(st.gpr[r]);
    for (const auto& [off, slot] : st.slots)
      if (slot.width == 1) consider(slot.val);
    if (!caps.empty()) {
      have_caps = true;
      for (const Cap& cap : caps)
        for (const Discharge& d : cap.obs)
          obs_[d.ob].pending_cluster = true;
      if (bob >= 0) obs_[bob].pending_cluster = true;
      Cluster cl;
      cl.block = b;
      cl.inst = i;
      cl.jcc_ob = bob;
      cl.cc = cc;
      cl.taken = target;
      cl.fall = jmp_target;
      cl.caps = std::move(caps);
      clusters_.push_back(std::move(cl));
    }
  }
  mark_flags_read(st, cc, false, have_caps);
  AbsState out = st;
  out.facts[{cc, flags_vn}] = 1;
  auto tb = test_byte_.find(flags_vn);
  if (tb != test_byte_.end()) out.facts[{kByteFactCc, tb->second}] = 1;
  if (target >= 0 && !is_detect_[target])
    propagate(target, std::move(out));
  st.facts[{cc, flags_vn}] = 0;
  if (tb != test_byte_.end()) st.facts[{kByteFactCc, tb->second}] = 0;
}

}  // namespace

CheckReport check_program(const masm::AsmProgram& program,
                          const CheckOptions& options) {
  CheckReport report;
  for (const auto& fn : program.functions) {
    FunctionChecker checker(fn, options, &report);
    checker.run();
  }
  return report;
}

telemetry::Json to_json(const CheckReport& report) {
  using telemetry::Json;
  Json root = Json::object();
  root["schema"] = Json("ferrum.check.v1");
  Json violations = Json::array();
  for (const Violation& v : report.violations) {
    Json jv = Json::object();
    jv["kind"] = Json(violation_kind_name(v.kind));
    jv["function"] = Json(v.function);
    jv["block"] = Json(static_cast<std::int64_t>(v.block));
    jv["inst"] = Json(static_cast<std::int64_t>(v.inst));
    jv["message"] = Json(v.message);
    violations.push_back(std::move(jv));
  }
  root["violations"] = std::move(violations);
  Json counts = Json::object();
  counts["protected"] =
      Json(static_cast<std::int64_t>(report.protected_sites));
  counts["benign"] = Json(static_cast<std::int64_t>(report.benign_sites));
  counts["unprotected"] =
      Json(static_cast<std::int64_t>(report.unprotected_sites));
  counts["total"] = Json(static_cast<std::int64_t>(report.total_sites()));
  root["site_counts"] = std::move(counts);

  // Unprotected sites are listed exhaustively (the containment contract of
  // the audit cross-validation); protected/benign only as per-kind tallies.
  Json unprot = Json::array();
  std::map<std::string, std::int64_t> kind_protected, kind_benign;
  for (const SiteRecord& s : report.sites) {
    if (s.status == SiteStatus::kProtected) {
      ++kind_protected[site_kind_name(s.kind)];
      continue;
    }
    if (s.status == SiteStatus::kBenign) {
      ++kind_benign[site_kind_name(s.kind)];
      continue;
    }
    Json js = Json::object();
    js["function"] = Json(s.function);
    js["block"] = Json(static_cast<std::int64_t>(s.block));
    js["inst"] = Json(static_cast<std::int64_t>(s.inst));
    js["kind"] = Json(site_kind_name(s.kind));
    js["op"] = Json(masm::op_mnemonic(s.op));
    js["operand"] = Json(s.operand);
    js["reason"] = Json(s.reason);
    unprot.push_back(std::move(js));
  }
  root["unprotected_sites"] = std::move(unprot);
  Json prot = Json::object();
  for (const auto& [k, n] : kind_protected) prot[k] = Json(n);
  root["protected_by_kind"] = std::move(prot);
  Json ben = Json::object();
  for (const auto& [k, n] : kind_benign) ben[k] = Json(n);
  root["benign_by_kind"] = std::move(ben);
  return root;
}

}  // namespace ferrum::check
