// ferrum-check: a static dataflow verifier for the protection invariants
// that asm_protect / ir_eddi promise and the fault-injection audit probes
// dynamically.
//
// The checker runs a forward abstract interpretation over each function
// (worklist to fixpoint, per-block join) whose abstract state tracks, per
// location (GPR, XMM lane, flags, frame slot, global cell):
//   - a value number (width-sensitive: 64-bit, low-32 and low-8 views),
//     which encodes the master <-> duplicate shadow binding: a duplicate
//     is "fresh" exactly when it still carries the same value number as
//     its master;
//   - the static instruction that last wrote it (provenance for the
//     shared-producer and deferred-flags rules);
//   - the symbolic stack offset, when the value is rsp/rbp-derived
//     (requisition discipline, frame-slot tracking);
//   - the set of open *obligations* — one per VM fault-injection site —
//     whose corruption may still reside in the location.
//
// On top of the fixpoint it lints the protection structure (violations)
// and classifies every fault site the VM would enumerate (coverage):
//
//   violations — a malformed protection idiom that can never detect what
//     it claims to (stale check operands, an unguarded detect branch, an
//     unbalanced requisition, a trampoline assert contradicted by the
//     edge facts, ...). A well-formed protected program has none.
//
//   coverage — each (instruction, operand) fault site is kProtected
//     (a full-width check observes the written value on the straight-line
//     path), kBenign (the value provably dies unobserved), or
//     kUnprotected (corruption can reach a store, a call, a branch
//     decision, or escape the block unchecked). kUnprotected
//     over-approximates: every dynamically observed SDC site must lie
//     inside it (cross-validated by bench/analysis_static_coverage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "masm/fault_site.h"
#include "masm/masm.h"
#include "telemetry/json.h"

namespace ferrum::check {

enum class ViolationKind {
  kStaleCheck,            // check compares values not provably master/dup
  kUnguardedDetect,       // detect branch not preceded by a valid check
  kDanglingCheck,         // check producer whose result is never consumed
  kInvalidEdgeAssert,     // trampoline assert unsupported by edge facts
  kSharedProducer,        // both branch captures derive from one producer
  kRequisitionImbalance,  // pop without matching requisition push
  kRequisitionClobber,    // original code touches a parked victim
  kRequisitionAcrossCall, // requisition window left open across a call
  kStackImbalance,        // rsp depth mismatch at a join or at ret
  kUninitSlotRead,        // protection load from a never-written slot
  kStrayProtectionJump,   // protection jcc not targeting the detect block
  kTrampolineFallthrough, // protection-only block falls off its end
};
const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string function;
  int block = 0;  // block index within the function
  int inst = 0;   // instruction index within the block
  std::string message;
};

std::string to_string(const Violation& violation);

/// Same type as vm::FaultKind (masm/fault_site.h), so static and dynamic
/// artifacts key identically by construction; site_kind_name returns the
/// shared strings.
using SiteKind = masm::FaultSiteKind;
const char* site_kind_name(SiteKind kind);

enum class SiteStatus { kProtected, kBenign, kUnprotected };
const char* site_status_name(SiteStatus status);

struct SiteRecord {
  std::string function;
  int block = 0;
  int inst = 0;
  SiteKind kind = SiteKind::kGprWrite;
  masm::Op op = masm::Op::kMov;
  masm::InstOrigin origin = masm::InstOrigin::kFromIR;
  SiteStatus status = SiteStatus::kUnprotected;
  std::string operand;  // "%rax", "%xmm3", "flags", "mem", "branch"
  std::string reason;   // why the status was assigned
};

struct CheckOptions {
  /// Enumerate kStoreData sites. Must mirror VmOptions::fault_store_data
  /// of the audit being cross-validated, or containment keys will drift.
  bool store_data_sites = false;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::vector<SiteRecord> sites;  // block/inst order per function
  std::uint64_t protected_sites = 0;
  std::uint64_t benign_sites = 0;
  std::uint64_t unprotected_sites = 0;

  bool clean() const { return violations.empty(); }
  std::uint64_t total_sites() const {
    return protected_sites + benign_sites + unprotected_sites;
  }
};

CheckReport check_program(const masm::AsmProgram& program,
                          const CheckOptions& options = {});

/// Deterministic JSON view: violation list, per-status counters, and the
/// full site table (unprotected sites always listed; protected/benign
/// summarised per kind).
telemetry::Json to_json(const CheckReport& report);

}  // namespace ferrum::check
