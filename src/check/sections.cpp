#include "check/sections.h"

#include <unordered_map>

#include "check/check.h"
#include "masm/fault_site.h"
#include "support/hash.h"

namespace ferrum::check::sections {

namespace {

using masm::AsmInst;
using masm::Op;

/// Sync-point classification of one instruction, kBlockEnd meaning "not
/// a sync point". Control-flow kinds win over the store check so a call
/// (which also pushes its return address) reads as kCall.
Boundary sync_kind(const AsmInst& inst) {
  switch (inst.op) {
    case Op::kJcc: return Boundary::kBranch;
    case Op::kJmp: return Boundary::kJump;
    case Op::kCall: return Boundary::kCall;
    case Op::kRet: return Boundary::kRet;
    case Op::kDetectTrap: return Boundary::kDetect;
    default: break;
  }
  return masm::effects_of(inst).writes_mem ? Boundary::kStore
                                           : Boundary::kBlockEnd;
}

/// Whether one executed instance of a call pushes its return address
/// (mirrors the decoder: builtin check precedes the function lookup, an
/// unresolved callee traps before the push).
bool call_pushes_ret(const masm::AsmProgram& program, const AsmInst& inst) {
  if (inst.op != Op::kCall) return true;
  const std::string& callee = inst.ops[0].label;
  if (callee == "print_int" || callee == "print_f64") return false;
  return program.find_function(callee) != nullptr;
}

std::string live_name(int bit) {
  if (bit < 16) return masm::gpr_name(static_cast<masm::Gpr>(bit), 8);
  if (bit < 32) return "xmm" + std::to_string(bit - 16);
  return "flags";
}

telemetry::Json live_set_json(masm::LiveSet set) {
  telemetry::Json list = telemetry::Json::array();
  for (int bit = 0; bit <= 32; ++bit) {
    if ((set >> bit) & 1) list.push_back(telemetry::Json(live_name(bit)));
  }
  return list;
}

}  // namespace

const char* boundary_name(Boundary boundary) {
  switch (boundary) {
    case Boundary::kStore: return "store";
    case Boundary::kBranch: return "branch";
    case Boundary::kJump: return "jump";
    case Boundary::kCall: return "call";
    case Boundary::kRet: return "ret";
    case Boundary::kDetect: return "detect";
    case Boundary::kBlockEnd: return "block-end";
  }
  return "?";
}

SectionMap build_sections(const masm::AsmProgram& program,
                          const SectionOptions& options) {
  SectionMap map;
  map.section_at.resize(program.functions.size());
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    const masm::AsmFunction& fn = program.functions[f];
    const masm::Liveness liveness(fn);
    map.section_at[f].resize(fn.blocks.size());
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const auto& insts = fn.blocks[b].insts;
      map.section_at[f][b].assign(insts.size(), -1);
      std::size_t start = 0;
      while (start < insts.size()) {
        // Extend to the first sync point at-or-after `start` (inclusive),
        // or to the end of the block.
        std::size_t end = start;
        Boundary boundary = Boundary::kBlockEnd;
        for (; end < insts.size(); ++end) {
          boundary = sync_kind(insts[end]);
          if (boundary != Boundary::kBlockEnd) break;
        }
        if (end == insts.size()) --end;  // fell off the block

        Section section;
        section.id = static_cast<int>(map.sections.size());
        section.function = static_cast<int>(f);
        section.block = static_cast<int>(b);
        section.first_inst = static_cast<int>(start);
        section.last_inst = static_cast<int>(end);
        section.boundary = boundary;
        Sha256 sha;
        for (std::size_t i = start; i <= end; ++i) {
          const std::string text = insts[i].to_string() + "\n";
          sha.update(text.data(), text.size());
          map.section_at[f][b][i] = section.id;
          const masm::StaticSiteInfo site = masm::static_site_of(
              insts[i], options.store_data_sites,
              call_pushes_ret(program, insts[i]));
          if (site.has_site) ++section.static_sites;
        }
        section.code_sha256 = sha.hex_digest();
        section.interface.live_in =
            liveness.live_after(static_cast<int>(b),
                                static_cast<int>(start) - 1);
        section.interface.live_out =
            liveness.live_after(static_cast<int>(b), static_cast<int>(end));
        for (std::size_t i = start; i <= end; ++i) {
          const masm::RegEffects effects = masm::effects_of(insts[i]);
          if (effects.writes_mem) ++section.interface.stores;
          if (effects.reads_mem) ++section.interface.loads;
        }
        map.sections.push_back(std::move(section));
        start = end + 1;
      }
    }
  }

  // Fold the checker's master/duplicate classification onto the owning
  // sections. SiteRecords carry function names; resolve them once.
  std::unordered_map<std::string, int> fn_index;
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    fn_index.emplace(program.functions[f].name, static_cast<int>(f));
  }
  const CheckReport check =
      check_program(program, CheckOptions{options.store_data_sites});
  for (const SiteRecord& site : check.sites) {
    const auto it = fn_index.find(site.function);
    if (it == fn_index.end()) continue;
    const int id = map.section_of(it->second, site.block, site.inst);
    if (id < 0) continue;
    SectionInterface& interface =
        map.sections[static_cast<std::size_t>(id)].interface;
    switch (site.status) {
      case SiteStatus::kProtected: ++interface.protected_sites; break;
      case SiteStatus::kBenign: ++interface.benign_sites; break;
      case SiteStatus::kUnprotected: ++interface.unprotected_sites; break;
    }
  }
  return map;
}

telemetry::Json to_json(const SectionMap& map,
                        const masm::AsmProgram& program,
                        const SectionOptions& options) {
  telemetry::Json out = telemetry::Json::object();
  telemetry::Json list = telemetry::Json::array();
  for (const Section& section : map.sections) {
    const masm::AsmFunction& fn =
        program.functions[static_cast<std::size_t>(section.function)];
    telemetry::Json entry = telemetry::Json::object();
    entry["id"] = static_cast<std::int64_t>(section.id);
    entry["function"] = fn.name;
    entry["block"] = static_cast<std::int64_t>(section.block);
    entry["label"] = fn.blocks[static_cast<std::size_t>(section.block)].label;
    entry["first_inst"] = static_cast<std::int64_t>(section.first_inst);
    entry["last_inst"] = static_cast<std::int64_t>(section.last_inst);
    entry["boundary"] = boundary_name(section.boundary);
    entry["sha256"] = section.code_sha256;
    entry["static_sites"] = static_cast<std::int64_t>(section.static_sites);
    telemetry::Json interface = telemetry::Json::object();
    interface["live_in"] = live_set_json(section.interface.live_in);
    interface["live_out"] = live_set_json(section.interface.live_out);
    interface["stores"] =
        static_cast<std::int64_t>(section.interface.stores);
    interface["loads"] = static_cast<std::int64_t>(section.interface.loads);
    telemetry::Json sites = telemetry::Json::object();
    sites["protected"] =
        static_cast<std::int64_t>(section.interface.protected_sites);
    sites["benign"] =
        static_cast<std::int64_t>(section.interface.benign_sites);
    sites["unprotected"] =
        static_cast<std::int64_t>(section.interface.unprotected_sites);
    interface["sites"] = std::move(sites);
    entry["interface"] = std::move(interface);
    list.push_back(std::move(entry));
  }
  out["sections"] = std::move(list);

  // One row per static fault site, in program order, naming its section
  // — the per-site membership `ferrumc sites` / lint=json expose.
  telemetry::Json site_rows = telemetry::Json::array();
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    const masm::AsmFunction& fn = program.functions[f];
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
        const AsmInst& inst = fn.blocks[b].insts[i];
        const masm::StaticSiteInfo site = masm::static_site_of(
            inst, options.store_data_sites, call_pushes_ret(program, inst));
        if (!site.has_site) continue;
        telemetry::Json row = telemetry::Json::object();
        row["function"] = fn.name;
        row["block"] = static_cast<std::int64_t>(b);
        row["inst"] = static_cast<std::int64_t>(i);
        row["kind"] = masm::fault_site_kind_name(site.kind);
        row["section"] = static_cast<std::int64_t>(
            map.section_of(static_cast<int>(f), static_cast<int>(b),
                           static_cast<int>(i)));
        site_rows.push_back(std::move(row));
      }
    }
  }
  out["sites"] = std::move(site_rows);
  return out;
}

}  // namespace ferrum::check::sections
