#include "check/prune.h"

#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ferrum::check::prune {
namespace {

using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::FaultSiteKind;
using masm::Gpr;
using masm::MemRef;
using masm::Op;
using masm::Operand;

// ------------------------------------------------------------ bit state --

// Flag bit numbering matches the VM's burst_mask(spec, 4) decode:
// bit 0 = zf, 1 = sf, 2 = of, 3 = cf.
constexpr std::uint8_t kZf = 1, kSf = 2, kOf = 4, kCf = 8;
constexpr std::uint8_t kAllFlags = kZf | kSf | kOf | kCf;

/// Per-program-point live-bit set: 64 bits per GPR, 64 per XMM lane
/// (full 256-bit YMM backing store), 4 flag bits. Memory is deliberately
/// absent — every store keeps its full source live instead (see the
/// soundness argument in prune.h).
struct BitState {
  std::array<std::uint64_t, masm::kGprCount> gpr{};
  std::array<std::array<std::uint64_t, 4>, masm::kXmmCount> xmm{};
  std::uint8_t flags = 0;

  bool operator==(const BitState& o) const {
    return gpr == o.gpr && xmm == o.xmm && flags == o.flags;
  }
  void join(const BitState& o) {
    for (int r = 0; r < masm::kGprCount; ++r) gpr[r] |= o.gpr[r];
    for (int x = 0; x < masm::kXmmCount; ++x) {
      for (int l = 0; l < 4; ++l) xmm[x][l] |= o.xmm[x][l];
    }
    flags |= o.flags;
  }
  static BitState all() {
    BitState s;
    s.gpr.fill(~std::uint64_t{0});
    for (auto& x : s.xmm) x.fill(~std::uint64_t{0});
    s.flags = kAllFlags;
    return s;
  }
};

std::uint64_t width_mask(int width) {
  switch (width) {
    case 1: return 0xffULL;
    case 4: return 0xffff'ffffULL;
    default: return ~std::uint64_t{0};
  }
}

void use_gpr(BitState& s, Gpr reg, std::uint64_t mask) {
  if (reg != Gpr::kNone) s.gpr[static_cast<int>(reg)] |= mask;
}

/// Mirrors merged_gpr_value: an 8-bit write merges (upper bits pass
/// through), 32/64-bit writes replace the whole register.
void kill_gpr(BitState& s, Gpr reg, int width) {
  if (reg == Gpr::kNone) return;
  if (width == 1) {
    s.gpr[static_cast<int>(reg)] &= ~0xffULL;
  } else {
    s.gpr[static_cast<int>(reg)] = 0;
  }
}

/// Address registers are fully observed: a flipped base/index bit moves
/// the access (different outcome or a memory trap).
void use_mem(BitState& s, const MemRef& mem) {
  use_gpr(s, mem.base, ~std::uint64_t{0});
  use_gpr(s, mem.index, ~std::uint64_t{0});
}

void use_xmm_lane(BitState& s, int xmm, int lane) {
  s.xmm[xmm][lane] = ~std::uint64_t{0};
}

/// Generic operand read (GPR at access width, memory address registers,
/// immediates nothing). XMM operands read by the scalar/shuffle ops are
/// handled per-opcode at lane granularity; hitting one here falls back to
/// the conservative whole-register read.
void use_operand(BitState& s, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      use_gpr(s, op.reg, width_mask(op.width));
      return;
    case Operand::Kind::kMem:
      use_mem(s, op.mem);
      return;
    case Operand::Kind::kXmm:
      for (int l = 0; l < 4; ++l) use_xmm_lane(s, op.xmm, l);
      return;
    default:
      return;
  }
}

/// Scalar-double source: xmm low lane or a memory/GPR operand.
void use_scalar_src(BitState& s, const Operand& op) {
  if (op.is_xmm()) {
    use_xmm_lane(s, op.xmm, 0);
  } else {
    use_operand(s, op);
  }
}

/// Flag bits eval_cond reads for each condition.
std::uint8_t cond_flags(Cond cc) {
  switch (cc) {
    case Cond::kE: case Cond::kNe: return kZf;
    case Cond::kL: case Cond::kGe: return kSf | kOf;
    case Cond::kLe: case Cond::kG: return kZf | kSf | kOf;
    case Cond::kA: case Cond::kBe: return kCf | kZf;
    case Cond::kAe: case Cond::kB: return kCf;
  }
  return kAllFlags;
}

// ------------------------------------------------------------- analyzer --

/// Callee behaviour summary for the interprocedural transfer at calls:
/// live_before = {rsp} ∪ l0 ∪ (live_after ∩ la).
///   l0 — live-in with exit liveness ∅   (bits the callee may read);
///   la — live-in with exit liveness ALL (l0 plus bits not surely killed
///        on every path, i.e. an upper bound on pass-through).
struct Summary {
  BitState l0;
  BitState la;
};

constexpr int kCalleePrintInt = -2;
constexpr int kCalleePrintF64 = -3;
constexpr int kCalleeUnknown = -1;

class Analyzer {
 public:
  Analyzer(const AsmProgram& program, const PruneOptions& options)
      : prog_(program), opts_(options) {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    std::unordered_map<std::string, int> by_name;
    for (int f = 0; f < nfuncs; ++f) by_name.emplace(prog_.functions[f].name, f);
    tables_.resize(static_cast<std::size_t>(nfuncs));
    for (int f = 0; f < nfuncs; ++f) {
      const AsmFunction& fn = prog_.functions[f];
      std::unordered_map<std::string, int> block_by_label;
      for (int b = 0; b < static_cast<int>(fn.blocks.size()); ++b) {
        block_by_label.emplace(fn.blocks[b].label, b);
      }
      auto& t = tables_[static_cast<std::size_t>(f)];
      t.target.resize(fn.blocks.size());
      t.callee.resize(fn.blocks.size());
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        t.target[b].assign(insts.size(), -1);
        t.callee[b].assign(insts.size(), kCalleeUnknown);
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const AsmInst& inst = insts[i];
          if (inst.op == Op::kJmp || inst.op == Op::kJcc) {
            auto it = block_by_label.find(inst.ops[0].label);
            if (it != block_by_label.end()) t.target[b][i] = it->second;
          } else if (inst.op == Op::kCall) {
            // Builtin check precedes the function lookup, mirroring the
            // decoder (a user function named print_int is unreachable).
            const std::string& callee = inst.ops[0].label;
            if (callee == "print_int") {
              t.callee[b][i] = kCalleePrintInt;
            } else if (callee == "print_f64") {
              t.callee[b][i] = kCalleePrintF64;
            } else {
              auto it = by_name.find(callee);
              if (it != by_name.end()) t.callee[b][i] = it->second;
            }
          }
        }
      }
    }
    summaries_.resize(static_cast<std::size_t>(nfuncs));
    ret_live_.resize(static_cast<std::size_t>(nfuncs));
  }

  PruneReport run() {
    compute_summaries();
    compute_ret_liveness();
    return build_report();
  }

 private:
  struct FnTables {
    /// Resolved jcc/jmp target block index per instruction, -1 when the
    /// label does not resolve (the VM traps on that edge).
    std::vector<std::vector<int>> target;
    /// Resolved callee per kCall: function index, kCalleePrint*, or
    /// kCalleeUnknown (traps before the return-address push).
    std::vector<std::vector<int>> callee;
  };

  /// Backward transfer of one instruction: s holds liveness *after* the
  /// instruction on entry and *before* it on exit. Kills first, uses
  /// second (live_before = use ∪ (after \ kill)).
  void transfer(int f, int b, int i, const AsmInst& inst, BitState& s,
                const std::vector<BitState>& live_in,
                const BitState& exit_seed) const {
    const FnTables& t = tables_[static_cast<std::size_t>(f)];
    switch (inst.op) {
      case Op::kMov:
        if (inst.ops[1].is_mem()) {
          use_mem(s, inst.ops[1].mem);
          use_operand(s, inst.ops[0]);
        } else {
          kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
          use_operand(s, inst.ops[0]);
        }
        return;
      case Op::kMovsx:
      case Op::kMovzx:
        kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
        use_operand(s, inst.ops[0]);
        return;
      case Op::kLea:
        kill_gpr(s, inst.ops[1].reg, 8);
        use_mem(s, inst.ops[0].mem);
        return;
      case Op::kPush:
        // rsp is read (bump + address) and written; the pushed source is
        // fully observed by the store — this is the edge that keeps
        // spill/requisition round trips live.
        use_gpr(s, Gpr::kRsp, ~std::uint64_t{0});
        use_operand(s, inst.ops[0]);
        return;
      case Op::kPop:
        kill_gpr(s, inst.ops[0].reg, 8);
        use_gpr(s, Gpr::kRsp, ~std::uint64_t{0});
        return;
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem: {
        const int width = inst.ops[1].width;
        s.flags = 0;  // every ALU op replaces the whole flag set
        if (inst.ops[1].is_mem()) {
          use_mem(s, inst.ops[1].mem);
        } else {
          kill_gpr(s, inst.ops[1].reg, width);
          use_gpr(s, inst.ops[1].reg, width_mask(width));  // RMW read
        }
        use_operand(s, inst.ops[0]);
        return;
      }
      case Op::kCmp:
      case Op::kTest:
        s.flags = 0;
        use_operand(s, inst.ops[0]);
        use_operand(s, inst.ops[1]);
        return;
      case Op::kSetcc:
        if (inst.ops[0].is_mem()) {
          use_mem(s, inst.ops[0].mem);
        } else {
          kill_gpr(s, inst.ops[0].reg, 1);
        }
        s.flags |= cond_flags(inst.cc);
        return;
      case Op::kJcc: {
        // s currently holds the fall-through liveness; join the taken
        // edge (an unresolved label traps: nothing live on that edge).
        const int target = t.target[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        if (target >= 0) s.join(live_in[static_cast<std::size_t>(target)]);
        s.flags |= cond_flags(inst.cc);
        return;
      }
      case Op::kJmp: {
        const int target = t.target[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        s = target >= 0 ? live_in[static_cast<std::size_t>(target)]
                        : BitState{};
        return;
      }
      case Op::kCall: {
        const int callee = t.callee[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(i)];
        if (callee == kCalleePrintInt) {
          use_gpr(s, Gpr::kRdi, ~std::uint64_t{0});  // the full printed word
          return;
        }
        if (callee == kCalleePrintF64) {
          use_xmm_lane(s, 0, 0);
          return;
        }
        if (callee < 0) {
          s = BitState{};  // unknown callee traps before any effect
          return;
        }
        const Summary& sum = summaries_[static_cast<std::size_t>(callee)];
        BitState before = sum.l0;
        BitState pass = s;
        for (int r = 0; r < masm::kGprCount; ++r) {
          pass.gpr[r] &= sum.la.gpr[r];
          before.gpr[r] |= pass.gpr[r];
        }
        for (int x = 0; x < masm::kXmmCount; ++x) {
          for (int l = 0; l < 4; ++l) {
            pass.xmm[x][l] &= sum.la.xmm[x][l];
            before.xmm[x][l] |= pass.xmm[x][l];
          }
        }
        before.flags |= static_cast<std::uint8_t>(s.flags & sum.la.flags);
        use_gpr(before, Gpr::kRsp, ~std::uint64_t{0});  // return-address push
        s = before;
        return;
      }
      case Op::kRet:
        s = exit_seed;
        use_gpr(s, Gpr::kRsp, ~std::uint64_t{0});  // the pop
        return;
      case Op::kDetectTrap:
        s = BitState{};  // never returns
        return;
      case Op::kMovsd:
        if (inst.ops[1].is_xmm()) {
          s.xmm[inst.ops[1].xmm][0] = 0;
          use_scalar_src(s, inst.ops[0]);
        } else {
          use_mem(s, inst.ops[1].mem);
          use_xmm_lane(s, inst.ops[0].xmm, 0);
        }
        return;
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd:
        s.xmm[inst.ops[1].xmm][0] = 0;
        use_xmm_lane(s, inst.ops[1].xmm, 0);  // RMW read of the low lane
        use_scalar_src(s, inst.ops[0]);
        return;
      case Op::kSqrtsd:
        s.xmm[inst.ops[1].xmm][0] = 0;
        use_scalar_src(s, inst.ops[0]);
        return;
      case Op::kUcomisd:
        s.flags = 0;
        use_scalar_src(s, inst.ops[0]);
        use_xmm_lane(s, inst.ops[1].xmm, 0);
        return;
      case Op::kCvtsi2sd:
        s.xmm[inst.ops[1].xmm][0] = 0;
        use_operand(s, inst.ops[0]);
        return;
      case Op::kCvttsd2si:
        kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
        use_xmm_lane(s, inst.ops[0].xmm, 0);
        return;
      case Op::kMovq:
        if (inst.ops[1].is_xmm()) {
          s.xmm[inst.ops[1].xmm][0] = 0;
          s.xmm[inst.ops[1].xmm][1] = 0;  // movq zeroes lane 1
          use_operand(s, inst.ops[0]);
        } else if (inst.ops[1].is_mem()) {
          use_mem(s, inst.ops[1].mem);
          use_xmm_lane(s, inst.ops[0].xmm, 0);
        } else {
          kill_gpr(s, inst.ops[1].reg, inst.ops[1].width);
          use_xmm_lane(s, inst.ops[0].xmm, 0);
        }
        return;
      case Op::kPinsrq: {
        const int lane = static_cast<int>(inst.ops[0].imm) & 1;
        s.xmm[inst.ops[2].xmm][lane] = 0;  // other lanes pass through
        use_operand(s, inst.ops[1]);
        return;
      }
      case Op::kVinserti128: {
        const int base = (static_cast<int>(inst.ops[0].imm) & 1) * 2;
        s.xmm[inst.ops[2].xmm][base] = 0;
        s.xmm[inst.ops[2].xmm][base + 1] = 0;
        use_xmm_lane(s, inst.ops[1].xmm, 0);
        use_xmm_lane(s, inst.ops[1].xmm, 1);
        return;
      }
      case Op::kVpxor: {
        const int active = inst.ops[0].ymm ? 4 : 2;
        for (int l = 0; l < 4; ++l) s.xmm[inst.ops[2].xmm][l] = 0;
        for (int l = 0; l < active; ++l) {
          use_xmm_lane(s, inst.ops[0].xmm, l);
          use_xmm_lane(s, inst.ops[1].xmm, l);
        }
        return;
      }
      case Op::kVptest: {
        const int active = inst.ops[0].ymm ? 4 : 2;
        s.flags = 0;
        for (int l = 0; l < active; ++l) {
          use_xmm_lane(s, inst.ops[0].xmm, l);
          use_xmm_lane(s, inst.ops[1].xmm, l);
        }
        return;
      }
    }
  }

  /// One backward sweep of block b. `s` enters holding the liveness past
  /// the block's last instruction (free fall-through into block b+1, or
  /// nothing past the function's end — falling off traps). Optionally
  /// records the after-state of every instruction.
  BitState walk_block(int f, int b, BitState s,
                      const std::vector<BitState>& live_in,
                      const BitState& exit_seed,
                      std::vector<BitState>* after_out) const {
    const auto& insts =
        prog_.functions[static_cast<std::size_t>(f)]
            .blocks[static_cast<std::size_t>(b)].insts;
    if (after_out != nullptr) after_out->resize(insts.size());
    for (int i = static_cast<int>(insts.size()) - 1; i >= 0; --i) {
      if (after_out != nullptr) {
        (*after_out)[static_cast<std::size_t>(i)] = s;
      }
      transfer(f, b, i, insts[static_cast<std::size_t>(i)], s, live_in,
               exit_seed);
    }
    return s;
  }

  /// Round-robin backward fixpoint over the function's blocks,
  /// reflecting the VM's free fall-through (block b runs into block b+1
  /// unless a terminator transfers elsewhere; falling past the last
  /// block traps). Returns per-block live-in states.
  std::vector<BitState> analyze_function(int f,
                                         const BitState& exit_seed) const {
    const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
    const int nblocks = static_cast<int>(fn.blocks.size());
    std::vector<BitState> live_in(static_cast<std::size_t>(nblocks));
    bool changed = true;
    while (changed) {
      changed = false;
      for (int b = nblocks - 1; b >= 0; --b) {
        BitState seed = b + 1 < nblocks
                            ? live_in[static_cast<std::size_t>(b + 1)]
                            : BitState{};
        BitState in = walk_block(f, b, std::move(seed), live_in, exit_seed,
                                 nullptr);
        if (!(in == live_in[static_cast<std::size_t>(b)])) {
          live_in[static_cast<std::size_t>(b)] = in;
          changed = true;
        }
      }
    }
    return live_in;
  }

  /// After-states for every instruction of f under a converged live_in.
  std::vector<std::vector<BitState>> record_function(
      int f, const std::vector<BitState>& live_in,
      const BitState& exit_seed) const {
    const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
    const int nblocks = static_cast<int>(fn.blocks.size());
    std::vector<std::vector<BitState>> after(
        static_cast<std::size_t>(nblocks));
    for (int b = 0; b < nblocks; ++b) {
      BitState seed = b + 1 < nblocks
                          ? live_in[static_cast<std::size_t>(b + 1)]
                          : BitState{};
      walk_block(f, b, std::move(seed), live_in, exit_seed,
                 &after[static_cast<std::size_t>(b)]);
    }
    return after;
  }

  /// Bottom-up may-read / pass-through summaries: optimistic ∅ start,
  /// iterate to the least fixpoint (monotone — recursion converges).
  void compute_summaries() {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    bool changed = true;
    while (changed) {
      changed = false;
      for (int f = 0; f < nfuncs; ++f) {
        const auto l0_in = analyze_function(f, BitState{});
        const auto la_in = analyze_function(f, BitState::all());
        BitState l0 = l0_in.empty() ? BitState{} : l0_in.front();
        BitState la = la_in.empty() ? BitState{} : la_in.front();
        Summary& sum = summaries_[static_cast<std::size_t>(f)];
        if (!(sum.l0 == l0) || !(sum.la == la)) {
          sum.l0 = l0;
          sum.la = la;
          changed = true;
        }
      }
    }
  }

  /// Top-down return-site liveness R(f): what a ret of f must preserve.
  /// main's exit observes %rax (VmResult::return_value); every call site
  /// of g adds its own live-after to R(g). Mutually recursive with the
  /// final liveness, so iterate to fixpoint.
  void compute_ret_liveness() {
    const int nfuncs = static_cast<int>(prog_.functions.size());
    for (int f = 0; f < nfuncs; ++f) {
      if (prog_.functions[static_cast<std::size_t>(f)].name == "main") {
        use_gpr(ret_live_[static_cast<std::size_t>(f)], Gpr::kRax,
                ~std::uint64_t{0});
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (int f = 0; f < nfuncs; ++f) {
        const auto live_in =
            analyze_function(f, ret_live_[static_cast<std::size_t>(f)]);
        const auto after = record_function(
            f, live_in, ret_live_[static_cast<std::size_t>(f)]);
        const FnTables& t = tables_[static_cast<std::size_t>(f)];
        for (std::size_t b = 0; b < after.size(); ++b) {
          for (std::size_t i = 0; i < after[b].size(); ++i) {
            const int callee = t.callee[b][i];
            if (prog_.functions[static_cast<std::size_t>(f)]
                    .blocks[b].insts[i].op != Op::kCall ||
                callee < 0) {
              continue;
            }
            BitState& r = ret_live_[static_cast<std::size_t>(callee)];
            BitState joined = r;
            joined.join(after[b][i]);
            if (!(joined == r)) {
              r = joined;
              changed = true;
            }
          }
        }
      }
    }
  }

  // ------------------------------------------------- report construction --

  /// Register-granular taint footprint used by the propagation-slice
  /// signatures (equivalence only — never feeds the dead masks).
  struct TaintSet {
    std::uint32_t gprs = 0;
    std::uint32_t xmms = 0;
    bool flags = false;
    bool empty() const { return gprs == 0 && xmms == 0 && !flags; }
  };

  static TaintSet reads_of(const AsmInst& inst) {
    const masm::RegEffects eff = masm::effects_of(inst);
    TaintSet t;
    for (Gpr r : eff.gpr_reads) t.gprs |= 1u << static_cast<int>(r);
    for (int x : eff.xmm_reads) t.xmms |= 1u << x;
    t.flags = eff.reads_flags;
    return t;
  }
  static TaintSet writes_of(const AsmInst& inst) {
    const masm::RegEffects eff = masm::effects_of(inst);
    TaintSet t;
    for (Gpr r : eff.gpr_writes) t.gprs |= 1u << static_cast<int>(r);
    for (int x : eff.xmm_writes) t.xmms |= 1u << x;
    t.flags = eff.writes_flags;
    return t;
  }

  /// Relative dataflow slice from the site to its first sync point
  /// (store / tainted branch / call / ret / detect), FastFlip-style. Two
  /// sites with the same slice corrupt the program through the same
  /// consumer chain and land in one class. Scoped to the block: a slice
  /// that survives to the block boundary is keyed on the residual taint.
  std::string slice_signature(int f, int b, int i,
                              const masm::StaticSiteInfo& info) const {
    const auto& insts = prog_.functions[static_cast<std::size_t>(f)]
                            .blocks[static_cast<std::size_t>(b)].insts;
    TaintSet taint;
    switch (info.kind) {
      case FaultSiteKind::kGprWrite:
        taint.gprs = 1u << static_cast<int>(info.reg);
        break;
      case FaultSiteKind::kXmmWrite:
        taint.xmms = 1u << info.xmm;
        break;
      case FaultSiteKind::kFlagsWrite:
        taint.flags = true;
        break;
      default:
        return "";  // store/branch sites are keyed per static site
    }
    std::ostringstream sig;
    constexpr int kMaxWalk = 48;
    constexpr int kMaxEvents = 12;
    int events = 0;
    int walked = 0;
    for (std::size_t j = static_cast<std::size_t>(i) + 1;
         j < insts.size() && walked < kMaxWalk && events < kMaxEvents;
         ++j, ++walked) {
      const AsmInst& inst = insts[j];
      const TaintSet reads = reads_of(inst);
      const bool tainted_read = (reads.gprs & taint.gprs) != 0 ||
                                (reads.xmms & taint.xmms) != 0 ||
                                (reads.flags && taint.flags);
      if (tainted_read) {
        sig << "+" << (j - static_cast<std::size_t>(i)) << ":"
            << masm::op_mnemonic(inst.op);
        ++events;
        const bool sync = inst.op == Op::kJcc || inst.op == Op::kCall ||
                          inst.op == Op::kRet ||
                          (inst.nops > 0 && inst.dst().is_mem()) ||
                          inst.op == Op::kPush;
        if (sync) {
          sig << "!";
          return sig.str();
        }
        const TaintSet writes = writes_of(inst);
        taint.gprs |= writes.gprs;
        taint.xmms |= writes.xmms;
        taint.flags = taint.flags || writes.flags;
        sig << ";";
      } else {
        const TaintSet writes = writes_of(inst);
        taint.gprs &= ~writes.gprs;
        taint.xmms &= ~writes.xmms;
        if (writes.flags) taint.flags = false;
        if (taint.empty()) {
          sig << "dies+" << (j - static_cast<std::size_t>(i));
          return sig.str();
        }
        if (inst.op == Op::kJmp || inst.op == Op::kRet ||
            inst.op == Op::kDetectTrap) {
          // Control leaves the block with live taint.
          sig << "leave+" << (j - static_cast<std::size_t>(i));
          return sig.str();
        }
      }
    }
    sig << "end:g" << std::hex << taint.gprs << ":x" << taint.xmms
        << (taint.flags ? ":F" : "");
    return sig.str();
  }

  PruneReport build_report() {
    PruneReport report;
    report.store_data_sites = opts_.store_data_sites;
    const int nfuncs = static_cast<int>(prog_.functions.size());
    report.site_at_.resize(static_cast<std::size_t>(nfuncs));
    std::map<std::string, std::uint32_t> class_by_signature;

    for (int f = 0; f < nfuncs; ++f) {
      const AsmFunction& fn = prog_.functions[static_cast<std::size_t>(f)];
      const auto live_in =
          analyze_function(f, ret_live_[static_cast<std::size_t>(f)]);
      const auto after =
          record_function(f, live_in, ret_live_[static_cast<std::size_t>(f)]);
      const FnTables& t = tables_[static_cast<std::size_t>(f)];
      auto& fn_index = report.site_at_[static_cast<std::size_t>(f)];
      fn_index.resize(fn.blocks.size());
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        fn_index[b].assign(insts.size(), -1);
        for (std::size_t i = 0; i < insts.size(); ++i) {
          const AsmInst& inst = insts[i];
          const bool pushes_ret =
              inst.op != Op::kCall || t.callee[b][i] >= 0;
          const masm::StaticSiteInfo info =
              masm::static_site_of(inst, opts_.store_data_sites, pushes_ret);
          if (!info.has_site) continue;

          PruneSite site;
          site.function = f;
          site.block = static_cast<int>(b);
          site.inst = static_cast<int>(i);
          site.kind = info.kind;
          site.bit_space = info.bit_space;

          const BitState& live = after[b][i];
          switch (info.kind) {
            case FaultSiteKind::kGprWrite:
              // The flip lands on the merged 64-bit value, so deadness
              // is over all 64 bits of the destination — including the
              // preserved upper bits of a narrow write.
              site.dead_mask[0] = ~live.gpr[static_cast<int>(info.reg)];
              break;
            case FaultSiteKind::kXmmWrite:
              for (int l = 0; l < info.lane_count; ++l) {
                site.dead_mask[static_cast<std::size_t>(l)] =
                    ~live.xmm[info.xmm][info.lane_base + l];
              }
              break;
            case FaultSiteKind::kFlagsWrite:
              site.dead_mask[0] =
                  static_cast<std::uint64_t>(~live.flags & kAllFlags);
              break;
            case FaultSiteKind::kStoreData:
              // Memory is untracked: no store bit is ever claimed dead.
              break;
            case FaultSiteKind::kBranchDecision:
              // Flipping `taken` is invisible exactly when the taken
              // edge and the fall-through resolve to the same next pc:
              // the jcc ends its block and targets the next block.
              if (i + 1 == insts.size() &&
                  t.target[b][i] == static_cast<int>(b) + 1) {
                site.dead_mask[0] = 1;
              }
              break;
          }

          int dead = site.dead_bits();
          report.dead_bits += static_cast<std::uint64_t>(dead);
          report.total_bits += static_cast<std::uint64_t>(site.bit_space);
          if (dead == site.bit_space) {
            site.class_id = kDeadClass;
            ++report.fully_dead_sites;
          } else {
            std::ostringstream key;
            key << masm::fault_site_kind_name(info.kind) << ":bs"
                << site.bit_space << ":dm" << std::hex << site.dead_mask[0]
                << "," << site.dead_mask[1] << "," << site.dead_mask[2]
                << "," << site.dead_mask[3] << std::dec << ":f" << f << ":b"
                << b;
            const std::string slice = slice_signature(
                f, static_cast<int>(b), static_cast<int>(i), info);
            if (slice.empty()) {
              key << ":i" << i;  // store/branch: one class per static site
            } else {
              key << ":" << slice;
            }
            auto [it, inserted] = class_by_signature.emplace(
                key.str(), static_cast<std::uint32_t>(report.classes.size()));
            site.class_id = it->second;
            if (inserted) {
              PruneClass cls;
              cls.id = it->second;
              cls.signature = it->first;
              cls.representative =
                  static_cast<std::uint32_t>(report.sites.size());
              report.classes.push_back(std::move(cls));
            }
            ++report.classes[it->second].static_members;
          }
          fn_index[b][i] = static_cast<std::int32_t>(report.sites.size());
          report.sites.push_back(site);
        }
      }
    }
    return report;
  }

  const AsmProgram& prog_;
  PruneOptions opts_;
  std::vector<FnTables> tables_;
  std::vector<Summary> summaries_;
  std::vector<BitState> ret_live_;
};

}  // namespace

PruneReport prune_program(const AsmProgram& program,
                          const PruneOptions& options) {
  return Analyzer(program, options).run();
}

telemetry::Json to_json(const PruneReport& report,
                        const AsmProgram& program) {
  telemetry::Json root = telemetry::Json::object();
  telemetry::Json& summary = root["summary"];
  summary["sites"] = static_cast<std::uint64_t>(report.sites.size());
  summary["classes"] = static_cast<std::uint64_t>(report.classes.size());
  summary["fully_dead_sites"] = report.fully_dead_sites;
  summary["dead_bits"] = report.dead_bits;
  summary["total_bits"] = report.total_bits;
  summary["dead_fraction"] = report.dead_fraction();
  summary["store_data_sites"] = report.store_data_sites;

  telemetry::Json classes = telemetry::Json::array();
  for (const PruneClass& cls : report.classes) {
    telemetry::Json entry = telemetry::Json::object();
    entry["id"] = static_cast<std::uint64_t>(cls.id);
    entry["signature"] = cls.signature;
    entry["static_members"] = static_cast<std::uint64_t>(cls.static_members);
    entry["representative"] = static_cast<std::uint64_t>(cls.representative);
    classes.push_back(std::move(entry));
  }
  root["classes"] = std::move(classes);

  telemetry::Json sites = telemetry::Json::array();
  for (const PruneSite& site : report.sites) {
    telemetry::Json entry = telemetry::Json::object();
    entry["function"] =
        program.functions[static_cast<std::size_t>(site.function)].name;
    entry["block"] = static_cast<std::int64_t>(site.block);
    entry["inst"] = static_cast<std::int64_t>(site.inst);
    entry["kind"] = masm::fault_site_kind_name(site.kind);
    entry["bit_space"] = static_cast<std::int64_t>(site.bit_space);
    entry["dead_bits"] = static_cast<std::int64_t>(site.dead_bits());
    telemetry::Json mask = telemetry::Json::array();
    const int words = (site.bit_space + 63) / 64;
    for (int w = 0; w < words; ++w) {
      mask.push_back(site.dead_mask[static_cast<std::size_t>(w)]);
    }
    entry["dead_mask"] = std::move(mask);
    if (site.fully_dead()) {
      entry["class"] = "dead";
    } else {
      entry["class"] = static_cast<std::uint64_t>(site.class_id);
    }
    sites.push_back(std::move(entry));
  }
  root["sites"] = std::move(sites);
  return root;
}

}  // namespace ferrum::check::prune
