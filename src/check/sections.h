// Static section decomposition of MiniASM programs (the FastFlip-style
// unit of compositional campaigning). A *section* is a maximal
// straight-line run of instructions inside one block that contains no
// sync point except possibly as its final instruction. Sync points are
// the places where a section's effects become architecturally visible
// to the rest of the program — memory writes (the store choke point),
// control transfers (jcc/jmp/call/ret) and protection traps — so a
// fault injected inside a section can only reach other sections through
// the section's *interface*: its live-out registers/flags and the store
// stream. Sections partition every instruction of the program: each
// instruction belongs to exactly one section, and control enters a
// section only at its first instruction (branch targets are block
// starts, and block starts always start a section).
//
// The interface attached to each section is computed from the same
// analyses the rest of the static stack uses: live-in/live-out from
// masm::Liveness (prune's liveness domain), the memory footprint from
// masm::effects_of (the store choke point's static mirror), and the
// master/duplicate pairing from ferrum-check's abstract domain
// (per-section counts of protected / benign / unprotected sites).
//
// Layering: this analysis lives in ferrum_check, but SectionMap is plain
// data with inline lookups only, so ferrum_fault's composition layer
// (src/fault/compose) can consume a built map by const reference without
// a link dependency — the same pattern as check::prune::PruneReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "masm/cfg.h"
#include "masm/masm.h"
#include "telemetry/json.h"

namespace ferrum::check::sections {

/// Why a section ends where it does. Every kind except kBlockEnd names a
/// sync-point instruction that is the section's own last instruction.
enum class Boundary : std::uint8_t {
  kStore,     // memory-writing instruction (store choke point)
  kBranch,    // conditional jump
  kJump,      // unconditional jump
  kCall,      // call (activation frame push + control transfer)
  kRet,       // return
  kDetect,    // protection detector trap
  kBlockEnd,  // plain fall-through into the next block
};

const char* boundary_name(Boundary boundary);

/// The dataflow surface through which a section talks to its neighbours.
struct SectionInterface {
  /// Registers + flags live immediately before the first instruction /
  /// immediately after the last (masm::LiveSet encoding: bits 0-15 GPRs,
  /// 16-31 XMMs, bit 32 FLAGS).
  masm::LiveSet live_in = 0;
  masm::LiveSet live_out = 0;
  /// Memory footprint: instructions that write / read memory.
  int stores = 0;
  int loads = 0;
  /// Master/duplicate pairing from ferrum-check: how this section's
  /// fault sites are classified by the protection verifier.
  int protected_sites = 0;
  int benign_sites = 0;
  int unprotected_sites = 0;
};

struct Section {
  int id = 0;  // program-order index
  int function = 0;
  int block = 0;
  int first_inst = 0;
  int last_inst = 0;  // inclusive
  Boundary boundary = Boundary::kBlockEnd;
  /// SHA-256 of the printed instructions — the content address used by
  /// the ferrum-section-v1 summary keys and the incremental diff.
  std::string code_sha256;
  /// Fault-injection sites one pass through the section registers
  /// (masm::static_site_of, the engine's static mirror).
  int static_sites = 0;
  SectionInterface interface;
};

struct SectionOptions {
  /// Enumerate kStoreData sites when counting static_sites and the
  /// checker classification. Must mirror VmOptions::fault_store_data of
  /// any campaign composed over this map.
  bool store_data_sites = false;
};

struct SectionMap {
  std::vector<Section> sections;  // program order
  /// section_at[function][block][inst] -> section id. Inline data so
  /// ferrum_fault can resolve dynamic sites without linking this lib.
  std::vector<std::vector<std::vector<std::int32_t>>> section_at;

  int section_of(int function, int block, int inst) const {
    return section_at[static_cast<std::size_t>(function)]
                     [static_cast<std::size_t>(block)]
                     [static_cast<std::size_t>(inst)];
  }
};

/// Decomposes the program. Deterministic: depends only on the program
/// text and options.
SectionMap build_sections(const masm::AsmProgram& program,
                          const SectionOptions& options = {});

/// Deterministic JSON: the section table (with interfaces) plus a
/// per-fault-site membership table ("sites": every static fault site with
/// its section id), so section membership is inspectable from
/// `ferrumc sites` / `ferrumc lint=json` without running a campaign.
telemetry::Json to_json(const SectionMap& map,
                        const masm::AsmProgram& program,
                        const SectionOptions& options = {});

}  // namespace ferrum::check::sections
