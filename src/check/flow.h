// ferrum-flow: static error-propagation analysis with per-site outcome
// prediction (the FastFlip direction taken one step further — see
// PAPERS.md). Where ferrum-check classifies *protectedness* and
// ferrum-prune classifies *liveness*, ferrum-flow predicts the dynamic
// audit's four-way outcome for every fault site before a single
// injection runs:
//
//   kMasked         the flipped value is absorbed before any sync point
//                   (prune proves every injectable bit dead, check proves
//                   the site benign, or no sink is flow-reachable);
//   kDetected       the corruption provably runs into a detector — the
//                   site is check-kProtected, or its only flow-reachable
//                   sink is a detect branch;
//   kCrashProne     the corruption can reach an address operand, a branch
//                   decision, the stack/frame pointer or a trapping
//                   divisor — outcomes dominated by crashes, but control-
//                   flow divergence can still corrupt output;
//   kSdcVulnerable  the corruption can reach the store stream or a print
//                   argument / main's return value — the silent-data-
//                   corruption surface.
//
// The engine is a backward sink-reachability dataflow over the same
// per-location domain prune walks (16 GPRs, 16 XMM registers at 64-bit
// lane granularity, RFLAGS): each location carries the set of *sinks* the
// value residing there can still reach, plus (during summary
// construction) the set of *exit locations* it can flow into by function
// return. Interprocedural flow mirrors prune: bottom-up per-callee
// summaries to a least fixpoint, then a top-down caller-context pass
// seeding main's %rax with the output sink.
//
// Soundness contract (one-directional, DESIGN.md "flow"): the two
// predicted-safe buckets must never produce a dynamic SDC. Every SDC
// escape the audit observes must land on a site predicted kSdcVulnerable
// or kCrashProne (kCrashProne stays in the containment union because a
// corrupted branch decision or address can silently alter output as well
// as crash). The converse gap — predicted-vulnerable sites that never
// corrupt — is the reported *precision* and is expected to be < 1:
// memory is deliberately untracked (every store is a potential output
// path; the store choke-point argument of the sections analysis), and
// reachability ignores values. bench/analysis_flow_accuracy
// cross-validates containment at 1.000 on the Table II workloads.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "masm/fault_site.h"
#include "masm/masm.h"
#include "telemetry/json.h"

namespace ferrum::check::flow {

// ------------------------------------------------------------- sinks ----

/// What a corrupted value can reach (bitmask). The four predictions fold
/// these down; the raw mask is kept per site so the JSON export stays
/// inspectable.
enum Sink : std::uint16_t {
  kSinkStore = 1u << 0,     // reaches a memory write (store choke point)
  kSinkOutput = 1u << 1,    // reaches print_int/print_f64 or main's %rax
  kSinkAddress = 1u << 2,   // reaches a memory address operand
  kSinkStackPtr = 1u << 3,  // reaches %rsp / %rbp
  kSinkBranch = 1u << 4,    // reaches a conditional-branch decision
  kSinkTrap = 1u << 5,      // reaches a trapping divisor (idiv/irem)
  kSinkDetect = 1u << 6,    // reaches a detect branch (jcc -> detect trap)
};

/// Renders a sink mask as "store|output|..." ("none" for 0).
std::string sink_mask_name(std::uint16_t sinks);

// -------------------------------------------------------- predictions ---

enum class Prediction : std::uint8_t {
  kMasked,
  kDetected,
  kCrashProne,
  kSdcVulnerable,
};
constexpr int kPredictionCount = 4;
const char* prediction_name(Prediction prediction);

/// Which rule assigned the prediction, in priority order: prune's
/// fully-dead proof, ferrum-check's protected/benign classification, or
/// the flow sink mask itself.
enum class PredictionBasis : std::uint8_t {
  kPruneDead,       // every injectable bit statically dead
  kCheckProtected,  // check proved a current check pair observes the site
  kCheckBenign,     // check proved the value dies unobserved
  kFlow,            // decided by the reachable-sink mask
};
const char* prediction_basis_name(PredictionBasis basis);

struct FlowSite {
  /// Static coordinates, matching check::SiteRecord / prune::PruneSite.
  int function = 0;
  int block = 0;
  int inst = 0;
  masm::FaultSiteKind kind = masm::FaultSiteKind::kGprWrite;
  /// Sink-reachability mask of the written location(s) just after the
  /// instruction (union over written XMM lanes for kXmmWrite).
  std::uint16_t sinks = 0;
  Prediction prediction = Prediction::kMasked;
  PredictionBasis basis = PredictionBasis::kFlow;
  /// Sync-section containing the instruction (check::sections id), for
  /// the per-section vulnerability profile.
  int section = -1;
};

/// Prediction counts — the whole-program static vulnerability profile
/// (also computed per function and per section).
struct FlowProfile {
  std::array<std::uint64_t, kPredictionCount> count{};

  std::uint64_t total() const {
    return count[0] + count[1] + count[2] + count[3];
  }
  std::uint64_t of(Prediction p) const {
    return count[static_cast<std::size_t>(p)];
  }
  void add(Prediction p) { ++count[static_cast<std::size_t>(p)]; }
};

struct FlowOptions {
  /// Enumerate kStoreData sites. Must mirror VmOptions::fault_store_data
  /// of the audit being cross-validated, or containment keys drift.
  bool store_data_sites = false;
};

struct FlowReport {
  /// Program order: functions in order, blocks in order, instructions in
  /// order — the same enumeration prune and the VM use.
  std::vector<FlowSite> sites;
  FlowProfile profile;                     // whole program
  std::vector<FlowProfile> by_function;    // indexed by function
  std::vector<FlowProfile> by_section;     // indexed by section id
  bool store_data_sites = false;

  /// sites index for static coordinates, -1 when that instruction
  /// registers no fault site (same layout as PruneReport::site_at_).
  int site_index(int function, int block, int inst) const {
    return site_at_[static_cast<std::size_t>(function)]
                   [static_cast<std::size_t>(block)]
                   [static_cast<std::size_t>(inst)];
  }
  const FlowSite* find(int function, int block, int inst) const {
    const int index = site_index(function, block, inst);
    return index < 0 ? nullptr : &sites[static_cast<std::size_t>(index)];
  }

  std::vector<std::vector<std::vector<std::int32_t>>> site_at_;
};

/// Runs the propagation analysis plus the prune/check passes it folds in.
/// Deterministic: depends only on the program and options.
FlowReport flow_program(const masm::AsmProgram& program,
                        const FlowOptions& options = {});

/// Deterministic JSON view: profile counters (whole-program / per
/// function / per section) and the full site table.
telemetry::Json to_json(const FlowReport& report,
                        const masm::AsmProgram& program);

}  // namespace ferrum::check::flow
