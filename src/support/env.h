// Environment-variable knobs shared by the experiment binaries and the
// examples (FERRUM_TRIALS, FERRUM_JOBS, FERRUM_SCALE, ...). Parsing is
// strict: a value that is not a whole, in-range integer falls back to the
// default with a warning on stderr instead of being silently truncated
// (atoi would read "10O0" as 10 and "abc" as 0).
#pragma once

#include <string>

namespace ferrum {

/// Parses `text` as a whole base-10 integer. Returns false (leaving
/// `out` untouched) on empty input, trailing garbage, or overflow.
bool parse_int(const char* text, int& out) noexcept;

/// Parses `text` as a finite double. Returns false (leaving `out`
/// untouched) on empty input, trailing garbage, overflow, or non-finite
/// values ("nan"/"inf" are rejected — no knob here wants them).
bool parse_double(const char* text, double& out) noexcept;

/// Reads a double knob from the environment. Unset -> `fallback`.
/// Malformed values, or values outside [min_value, max_value), warn on
/// stderr and fall back.
double env_double(const char* name, double fallback, double min_value,
                  double max_value);

/// Reads an integer knob from the environment. Unset -> `fallback`.
/// Malformed values, or values below `min_value`, warn on stderr and
/// fall back. Count-like knobs keep the default `min_value = 1`; pass a
/// different floor for knobs where 0 or negatives are meaningful.
int env_int(const char* name, int fallback, int min_value = 1);

// ---------------------------------------------------------------------
// The shared experiment knobs. Name, floor and default live HERE only;
// the bench binaries (bench/bench_util.h) and examples/ferrumc all go
// through these helpers, so a knob rename or floor change is one edit.

/// FERRUM_TRIALS — sampled faults per campaign measurement. Floor 1.
/// Benches pass their experiment-specific default (the paper's 1000 for
/// coverage figures, less for expensive sweeps).
int env_trials(int fallback = 1000);

/// FERRUM_SCALE — workload scaling factor for the timing experiments
/// (workloads::scaled). Floor 1.
int env_scale(int fallback = 2);

/// FERRUM_JOBS — worker threads for campaign/audit execution, defaulting
/// to hardware concurrency. Floor 1. Results are deterministic for any
/// value; the knob only changes wall-clock time.
int env_jobs();

/// FERRUM_CKPT_STRIDE — golden-run checkpoint stride (in dynamic FI
/// sites) for campaign/audit fast-forwarding. Floor 0: zero disables
/// checkpointing (cold trials). Like FERRUM_JOBS, the value only moves
/// wall-clock time — results are bit-identical for every stride.
int env_ckpt_stride(int fallback = 64);

/// FERRUM_BATCH — lockstep batch width for campaign/audit trial
/// execution (vm::Engine::run_batch lanes per call). Floor 1: one lane
/// is the scalar path. Like FERRUM_JOBS and FERRUM_CKPT_STRIDE the knob
/// only moves wall-clock time; results are bit-identical for any width.
int env_batch(int fallback = 8);

/// FERRUM_CI_TARGET — adaptive stop-rule target: the campaign stops at
/// the first power-of-two boundary where every outcome-rate Wilson
/// half-width is <= this value (fault/adaptive.h). Range [0, 0.5); 0
/// (the default) disables early stopping. UNLIKE the engine knobs above
/// this one changes results — it is cell/section cache-key material.
double env_ci_target(double fallback = 0.0);

/// Reads a string knob from the environment. Unset or empty -> fallback
/// (pass "" when empty is a meaningful value for the knob).
std::string env_str(const char* name, const char* fallback);

// --- Campaign-service knobs (ferrumd / ferrumc serve|submit) ----------

/// FERRUM_SVC_SOCKET — unix-domain socket path the daemon listens on and
/// clients connect to. Keep it short (sockaddr_un caps paths at ~107
/// bytes); a relative path is resolved against the daemon's cwd.
std::string env_svc_socket(const char* fallback = "ferrumd.sock");

/// FERRUM_SVC_CACHE — directory for the content-addressed result store.
/// Empty (the default) keeps the cache in memory only: results survive
/// resubmission within one daemon lifetime but not a restart.
std::string env_svc_cache_dir(const char* fallback = "");

/// FERRUM_SVC_WORKERS — service worker threads (campaign cells in
/// flight; each cell still fans out over its own FERRUM_JOBS-style inner
/// pool). Floor 1. Like every engine knob, the value never changes
/// results — cells are deterministic functions of their spec.
int env_svc_workers(int fallback = 2);

}  // namespace ferrum
