// Deterministic pseudo-random number generation for fault sampling and
// workload input synthesis. All randomness in the project flows through
// this generator so that every experiment is exactly reproducible from a
// seed.
#pragma once

#include <cstdint>

namespace ferrum {

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and — unlike
/// std::mt19937 — guaranteed to produce the same stream on every platform
/// and standard-library implementation, which matters for reproducible
/// fault-injection campaigns.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform value in [0, bound). bound must be non-zero. Uses rejection
  /// sampling (Lemire-style threshold) to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi. The full
  /// span [INT64_MIN, INT64_MAX] is handled (every int64 equally likely).
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Creates an independent generator derived from this one (stream split).
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

/// splitmix64 step, exposed for tests and for seeding other state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace ferrum
