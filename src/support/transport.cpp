#include "support/transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ferrum {

namespace {

bool fill_unix_addr(const std::string& path, sockaddr_un& addr,
                    std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path '" + path + "' is empty or longer than " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
    }
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

}  // namespace

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Conn::write_all(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a hung-up peer surfaces as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Conn::read_exact(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd_, bytes, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-read
    bytes += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Conn, Conn> Conn::pipe_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return {Conn(), Conn()};
  }
  return {Conn(fds[0]), Conn(fds[1])};
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Listener Listener::bind_unix(const std::string& path, std::string* error) {
  Listener listener;
  sockaddr_un addr;
  if (!fill_unix_addr(path, addr, error)) return listener;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return listener;
  }
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, "bind");
    ::close(fd);
    return listener;
  }
  if (::listen(fd, 64) != 0) {
    set_error(error, "listen");
    ::close(fd);
    ::unlink(path.c_str());
    return listener;
  }
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

Conn Listener::accept() {
  while (fd_ >= 0) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Conn(client);
    if (errno == EINTR) continue;
    break;  // EINVAL/EBADF after shutdown(), or a real error
  }
  return Conn();
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

Conn connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_unix_addr(path, addr, error)) return Conn();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return Conn();
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    set_error(error, "connect");
    ::close(fd);
    return Conn();
  }
  return Conn(fd);
}

}  // namespace ferrum
