#include "support/rng.h"

namespace ferrum {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but be defensive anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling: reject the small non-uniform tail of the 64-bit
  // range so every residue is equally likely.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t value = next_u64();
    if (value >= threshold) return value % bound;
  }
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // The full-int64 range [INT64_MIN, INT64_MAX] wraps the span to 0;
  // every 64-bit value is then a valid draw (next_below(0) would
  // degenerate to always returning lo).
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span));
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace ferrum
