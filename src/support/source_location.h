// Source positions and diagnostics shared by the MiniC frontend, the
// MiniIR parser and the MiniASM parser.
#pragma once

#include <string>
#include <vector>

namespace ferrum {

/// 1-based line/column position in some textual input.
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const noexcept { return line > 0; }
  std::string to_string() const;
};

/// Severity of a diagnostic message.
enum class DiagSeverity { kError, kWarning, kNote };

/// One diagnostic message attached to a location.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;

  std::string to_string() const;
};

/// Accumulates diagnostics during a compilation phase. Phases report
/// errors here instead of throwing so that multiple problems can be
/// surfaced in a single pass over the input.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  bool has_errors() const noexcept { return error_count_ > 0; }
  int error_count() const noexcept { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  /// All diagnostics rendered one per line; empty string when clean.
  std::string render() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
};

}  // namespace ferrum
