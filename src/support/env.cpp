#include "support/env.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <climits>

#include "support/parallel.h"

namespace ferrum {

bool parse_int(const char* text, int& out) noexcept {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;      // no digits / trailing junk
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_double(const char* text, double& out) noexcept {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;  // no digits / trailing junk
  if (errno == ERANGE || !std::isfinite(value)) return false;
  out = value;
  return true;
}

double env_double(const char* name, double fallback, double min_value,
                  double max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double parsed = 0.0;
  if (!parse_double(value, parsed)) {
    std::fprintf(stderr,
                 "warning: %s='%s' is not a number; using default %g\n",
                 name, value, fallback);
    return fallback;
  }
  if (parsed < min_value || parsed >= max_value) {
    std::fprintf(stderr,
                 "warning: %s=%g is outside [%g, %g); using default %g\n",
                 name, parsed, min_value, max_value, fallback);
    return fallback;
  }
  return parsed;
}

int env_int(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int parsed = 0;
  if (!parse_int(value, parsed)) {
    std::fprintf(stderr,
                 "warning: %s='%s' is not an integer; using default %d\n",
                 name, value, fallback);
    return fallback;
  }
  if (parsed < min_value) {
    std::fprintf(stderr,
                 "warning: %s=%d is below the minimum %d; using default %d\n",
                 name, parsed, min_value, fallback);
    return fallback;
  }
  return parsed;
}

int env_trials(int fallback) { return env_int("FERRUM_TRIALS", fallback); }

int env_scale(int fallback) { return env_int("FERRUM_SCALE", fallback); }

int env_jobs() {
  return env_int("FERRUM_JOBS", ThreadPool::hardware_workers());
}

int env_ckpt_stride(int fallback) {
  return env_int("FERRUM_CKPT_STRIDE", fallback, /*min_value=*/0);
}

int env_batch(int fallback) {
  return env_int("FERRUM_BATCH", fallback, /*min_value=*/1);
}

double env_ci_target(double fallback) {
  return env_double("FERRUM_CI_TARGET", fallback, /*min_value=*/0.0,
                    /*max_value=*/0.5);
}

std::string env_str(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

std::string env_svc_socket(const char* fallback) {
  return env_str("FERRUM_SVC_SOCKET", fallback);
}

std::string env_svc_cache_dir(const char* fallback) {
  return env_str("FERRUM_SVC_CACHE", fallback);
}

int env_svc_workers(int fallback) {
  return env_int("FERRUM_SVC_WORKERS", fallback, /*min_value=*/1);
}

}  // namespace ferrum
