#include "support/str.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace ferrum {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value) {
  // Find the shortest precision that round-trips, so printed IR/traces stay
  // readable without losing determinism.
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ferrum
