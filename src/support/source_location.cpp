#include "support/source_location.h"

#include <sstream>

namespace ferrum {

std::string SourceLoc::to_string() const {
  std::ostringstream os;
  os << line << ":" << column;
  return os.str();
}

namespace {
const char* severity_name(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.valid()) os << loc.to_string() << ": ";
  os << severity_name(severity) << ": " << message;
  return os.str();
}

void DiagEngine::error(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagEngine::warning(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
}

void DiagEngine::note(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

std::string DiagEngine::render() const {
  std::ostringstream os;
  for (const auto& diag : diagnostics_) os << diag.to_string() << "\n";
  return os.str();
}

}  // namespace ferrum
