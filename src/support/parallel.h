// A small fixed-size thread pool for deterministic fan-out over index
// ranges. There is no work stealing and no task graph: callers hand the
// pool a contiguous index range, workers claim fixed-size chunks off a
// shared cursor, and every index lands in a caller-owned slot. Anything
// that must be deterministic (fault sampling, reduction order) happens
// outside the pool — the pool only decides *when* each index runs, never
// *what* it computes or where its result goes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ferrum {

class ThreadPool {
 public:
  /// Workers that actually execute chunks, including the calling thread.
  /// `workers <= 0` selects hardware_concurrency (at least 1); `1` runs
  /// everything inline on the caller with no threads spawned.
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const noexcept { return workers_; }

  /// Runs `body(begin, end)` over [0, count) split into chunks of at most
  /// `grain` indices (grain == 0 picks one aimed at ~8 chunks per worker).
  /// The calling thread participates. Blocks until every chunk finished;
  /// if any chunk threw, the first exception (in claim order) is
  /// rethrown here after all workers have drained. Not reentrant: `body`
  /// must not call back into the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 0);

  /// As parallel_for, but the body also receives the index of the pool
  /// worker executing the chunk (0 = the calling thread, 1..workers-1 =
  /// pool threads). For per-worker accounting/telemetry only: which
  /// worker claims which chunk IS scheduling-dependent, so results must
  /// never depend on the index — only observability may.
  void parallel_for_indexed(
      std::size_t count,
      const std::function<void(int, std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// hardware_concurrency clamped to >= 1 (the value `workers = 0` picks).
  static int hardware_workers() noexcept;

 private:
  struct Job;

  void worker_loop(int worker);
  void run_chunks(Job& job, int worker);

  int workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: new job / shutdown
  std::condition_variable done_cv_;   // signals caller: job drained
  Job* job_ = nullptr;                // current job, valid while running
  std::uint64_t generation_ = 0;      // bumped per job so workers re-wake
  bool shutdown_ = false;
};

/// Convenience: one-shot parallel loop on a transient pool. Prefer a
/// long-lived ThreadPool when issuing many loops.
void parallel_for(int workers, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace ferrum
