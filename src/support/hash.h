// Deterministic content hashing for the campaign service's
// content-addressed result store. SHA-256 (FIPS 180-4) implemented from
// the specification: byte-oriented, endian-explicit, no compiler or
// platform dependence — the same bytes hash to the same digest on every
// build, which is what lets cache keys and stored artifacts survive
// across runs, worker counts and machines.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ferrum {

/// Incremental SHA-256. Feed bytes with update(), read the digest with
/// digest()/hex_digest(); finalisation is internal and idempotent, so the
/// digest can be read more than once (but update() after a digest read
/// throws std::logic_error — a hasher is single-use by design).
class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;

  Sha256();

  void update(const void* data, std::size_t size);
  void update(std::string_view text) { update(text.data(), text.size()); }

  std::array<std::uint8_t, kDigestBytes> digest();
  /// Lower-case hex rendering of digest() (64 characters).
  std::string hex_digest();

 private:
  void compress(const std::uint8_t* block);
  void finalize();

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: lower-case hex SHA-256 of `text`.
std::string sha256_hex(std::string_view text);

}  // namespace ferrum
