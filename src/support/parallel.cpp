#include "support/parallel.h"

#include <atomic>

namespace ferrum {

struct ThreadPool::Job {
  const std::function<void(int, std::size_t, std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> cursor{0};  // next unclaimed index
  int active = 0;                      // workers still inside run_chunks
  std::exception_ptr error;            // first exception, in claim order
};

int ThreadPool::hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int workers) {
  workers_ = workers <= 0 ? hardware_workers() : workers;
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::run_chunks(Job& job, int worker) {
  for (;;) {
    const std::size_t begin =
        job.cursor.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.count) return;
    const std::size_t end =
        begin + job.grain < job.count ? begin + job.grain : job.count;
    try {
      (*job.body)(worker, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
      // Stop claiming further chunks so the loop drains quickly; chunks
      // already claimed by other workers still run to completion.
      job.cursor.store(job.count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      if (job == nullptr) continue;  // job already drained and retired
      ++job->active;
    }
    run_chunks(*job, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->active;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_indexed(
    std::size_t count,
    const std::function<void(int, std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // Aim for ~8 chunks per worker: enough slack to absorb uneven chunk
    // cost without work stealing, few enough to keep claim traffic low.
    const std::size_t target =
        static_cast<std::size_t>(workers_) * 8;
    grain = (count + target - 1) / target;
    if (grain == 0) grain = 1;
  }

  if (workers_ == 1 || count <= grain) {
    // Inline fast path — also what a 1-worker pool always takes, so the
    // jobs=1 configuration never touches a mutex.
    Job job;
    job.body = &body;
    job.count = count;
    job.grain = grain;
    run_chunks(job, /*worker=*/0);
    if (job.error) std::rethrow_exception(job.error);
    return;
  }

  Job job;
  job.body = &body;
  job.count = count;
  job.grain = grain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks(job, /*worker=*/0);  // the caller is a worker too
  {
    // Retire the job, then wait for workers that joined it to leave.
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return job.active == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  parallel_for_indexed(
      count,
      [&body](int, std::size_t begin, std::size_t end) { body(begin, end); },
      grain);
}

void parallel_for(int workers, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool pool(workers);
  pool.parallel_for(count, body);
}

}  // namespace ferrum
