// Byte-stream transport for the campaign service: unix-domain stream
// sockets (ferrumd's listening endpoint) plus an anonymous socketpair for
// in-process daemon/client tests. Nothing here knows about framing — the
// service protocol (src/service/proto.h) layers its length-prefixed
// frames on top of read_exact/write_all.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace ferrum {

/// A connected byte stream (owns the fd; move-only).
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `size` bytes, retrying on EINTR / partial writes.
  /// Returns false on any unrecoverable error (the peer hung up, ...).
  bool write_all(const void* data, std::size_t size);
  /// Reads exactly `size` bytes. Returns false on EOF or error; a false
  /// return leaves the stream unusable for framing (partial read).
  bool read_exact(void* data, std::size_t size);

  void close();

  /// A connected pair of in-process streams (socketpair): .first and
  /// .second talk to each other. Both ends invalid on failure.
  static std::pair<Conn, Conn> pipe_pair();

 private:
  int fd_ = -1;
};

/// A bound + listening unix-domain socket. The path is unlinked on
/// close/destruction (the listener owns its filesystem name).
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { close(); }

  /// Binds and listens on `path` (an existing stale socket file is
  /// replaced). On failure returns an invalid Listener and, when `error`
  /// is non-null, a description. Paths longer than sockaddr_un allows
  /// fail cleanly — keep socket names short or relative.
  static Listener bind_unix(const std::string& path,
                            std::string* error = nullptr);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Blocks for the next connection; returns an invalid Conn once the
  /// listener was shut down (or on a non-transient accept error).
  Conn accept();

  /// Unblocks any accept() in progress and closes the socket; safe to
  /// call from another thread exactly once per listener.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening unix-domain socket. Invalid Conn on failure
/// (description in `error` when non-null).
Conn connect_unix(const std::string& path, std::string* error = nullptr);

}  // namespace ferrum
