// Small string utilities used across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ferrum {

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Renders a double compactly but round-trippably (shortest %.17g form).
std::string format_double(double value);

/// "12,345,678" style thousands grouping, for report tables.
std::string with_commas(std::uint64_t value);

}  // namespace ferrum
