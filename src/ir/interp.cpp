#include "ir/interp.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "support/str.h"

namespace ferrum::ir {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kTrapMemory: return "trap:memory";
    case RunStatus::kTrapDivide: return "trap:divide";
    case RunStatus::kTrapSteps: return "trap:steps";
    case RunStatus::kTrapCallDepth: return "trap:call-depth";
    case RunStatus::kTrapInvalid: return "trap:invalid";
  }
  return "?";
}

std::string RunResult::output_to_string() const {
  std::ostringstream os;
  for (std::uint64_t raw : output) os << raw << "\n";
  return os.str();
}

namespace {

struct Trap {
  RunStatus status;
};

std::int64_t sext_to_i64(std::uint64_t raw, TypeKind kind) {
  switch (kind) {
    case TypeKind::kI1:
      return static_cast<std::int64_t>(raw & 1);
    case TypeKind::kI8:
      return static_cast<std::int8_t>(raw & 0xff);
    case TypeKind::kI32:
      return static_cast<std::int32_t>(raw & 0xffffffffu);
    default:
      return static_cast<std::int64_t>(raw);
  }
}

class Interp {
 public:
  Interp(const Module& module, const InterpOptions& options)
      : module_(module), options_(options), memory_(options.memory_bytes) {}

  RunResult run() {
    RunResult result;
    try {
      layout_globals();
      stack_top_ = memory_.size();
      const Function* main = module_.find_function("main");
      if (main == nullptr || main->is_declaration()) {
        result.status = RunStatus::kTrapInvalid;
        return result;
      }
      std::uint64_t ret = call(*main, {});
      result.return_value = static_cast<std::int64_t>(ret);
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.output = std::move(output_);
    result.steps = steps_;
    return result;
  }

 private:
  void layout_globals() {
    std::size_t cursor = 0x1000;  // keep address 0 unmapped
    for (const auto& global : module_.globals()) {
      const int elem = scalar_size(global->element());
      cursor = (cursor + 15) & ~std::size_t{15};
      global_addr_[global.get()] = cursor;
      const std::size_t bytes =
          static_cast<std::size_t>(global->count()) *
          static_cast<std::size_t>(elem);
      if (cursor + bytes > memory_.size() / 2) throw Trap{RunStatus::kTrapMemory};
      for (std::size_t i = 0; i < global->init.size() &&
                              i < static_cast<std::size_t>(global->count());
           ++i) {
        store_raw(cursor + i * static_cast<std::size_t>(elem), elem,
                  global->init[i]);
      }
      cursor += bytes;
    }
    heap_end_ = cursor;
  }

  std::uint64_t load_raw(std::uint64_t addr, int size) {
    check_range(addr, size);
    std::uint64_t raw = 0;
    std::memcpy(&raw, memory_.data() + addr, static_cast<std::size_t>(size));
    return raw;
  }

  void store_raw(std::uint64_t addr, int size, std::uint64_t raw) {
    check_range(addr, size);
    std::memcpy(memory_.data() + addr, &raw, static_cast<std::size_t>(size));
  }

  void check_range(std::uint64_t addr, int size) {
    if (addr < 0x1000 ||
        addr + static_cast<std::uint64_t>(size) > memory_.size()) {
      throw Trap{RunStatus::kTrapMemory};
    }
  }

  std::uint64_t call(const Function& fn,
                     const std::vector<std::uint64_t>& args) {
    if (++depth_ > options_.max_call_depth) throw Trap{RunStatus::kTrapCallDepth};
    std::unordered_map<const Value*, std::uint64_t> env;
    for (std::size_t i = 0; i < fn.args().size(); ++i) {
      env[fn.args()[i].get()] = args[i];
    }
    const std::uint64_t saved_stack = stack_top_;

    const BasicBlock* block = fn.entry();
    std::uint64_t ret = 0;
    bool returning = false;
    while (!returning) {
      const BasicBlock* next = nullptr;
      for (std::size_t i = 0; i < block->size(); ++i) {
        const Instruction* inst = block->at(i);
        if (++steps_ > options_.max_steps) throw Trap{RunStatus::kTrapSteps};
        switch (inst->op()) {
          case Opcode::kRet:
            ret = inst->operands.empty() ? 0 : value_of(env, inst->operands[0]);
            returning = true;
            break;
          case Opcode::kBr:
            next = inst->targets[0];
            break;
          case Opcode::kCondBr:
            next = (value_of(env, inst->operands[0]) & 1) != 0
                       ? inst->targets[0]
                       : inst->targets[1];
            break;
          default:
            exec(env, *inst);
            break;
        }
        if (returning || next != nullptr) break;
      }
      if (returning) break;
      if (next == nullptr) throw Trap{RunStatus::kTrapInvalid};
      block = next;
    }
    stack_top_ = saved_stack;
    --depth_;
    return ret;
  }

  std::uint64_t value_of(
      const std::unordered_map<const Value*, std::uint64_t>& env,
      const Value* value) {
    switch (value->kind()) {
      case ValueKind::kConstant: {
        const auto* c = static_cast<const Constant*>(value);
        if (c->type().is_float()) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, &c->f, sizeof(raw));
          return raw;
        }
        return static_cast<std::uint64_t>(c->i);
      }
      case ValueKind::kGlobal: {
        auto it = global_addr_.find(static_cast<const GlobalVar*>(value));
        if (it == global_addr_.end()) throw Trap{RunStatus::kTrapInvalid};
        return it->second;
      }
      default: {
        auto it = env.find(value);
        if (it == env.end()) throw Trap{RunStatus::kTrapInvalid};
        return it->second;
      }
    }
  }

  double as_f64(std::uint64_t raw) {
    double value = 0.0;
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }

  std::uint64_t from_f64(double value) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(raw));
    return raw;
  }

  void exec(std::unordered_map<const Value*, std::uint64_t>& env,
            const Instruction& inst) {
    switch (inst.op()) {
      case Opcode::kAlloca: {
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(inst.alloca_count) *
            static_cast<std::uint64_t>(scalar_size(inst.alloca_elem));
        // 16-byte aligned downward bump allocation.
        std::uint64_t top = stack_top_ - bytes;
        top &= ~std::uint64_t{15};
        if (top <= heap_end_) throw Trap{RunStatus::kTrapMemory};
        stack_top_ = top;
        env[&inst] = top;
        break;
      }
      case Opcode::kLoad: {
        const std::uint64_t addr = value_of(env, inst.operands[0]);
        const int size = type_size(inst.type());
        std::uint64_t raw = load_raw(addr, size);
        if (inst.type().is_int()) {
          raw = static_cast<std::uint64_t>(sext_to_i64(raw, inst.type().kind));
        }
        env[&inst] = raw;
        break;
      }
      case Opcode::kStore: {
        const std::uint64_t value = value_of(env, inst.operands[0]);
        const std::uint64_t addr = value_of(env, inst.operands[1]);
        store_raw(addr, type_size(inst.operands[0]->type()), value);
        break;
      }
      case Opcode::kGep: {
        const std::uint64_t base = value_of(env, inst.operands[0]);
        const std::int64_t index =
            static_cast<std::int64_t>(value_of(env, inst.operands[1]));
        const int elem = scalar_size(inst.type().elem);
        env[&inst] = base + static_cast<std::uint64_t>(index * elem);
        break;
      }
      case Opcode::kICmp: {
        const std::int64_t l = sext_to_i64(value_of(env, inst.operands[0]),
                                           inst.operands[0]->type().kind);
        const std::int64_t r = sext_to_i64(value_of(env, inst.operands[1]),
                                           inst.operands[1]->type().kind);
        env[&inst] = eval_pred(inst.pred, l, r) ? 1 : 0;
        break;
      }
      case Opcode::kFCmp: {
        const double l = as_f64(value_of(env, inst.operands[0]));
        const double r = as_f64(value_of(env, inst.operands[1]));
        bool result = false;
        switch (inst.pred) {
          case CmpPred::kEq: result = l == r; break;
          case CmpPred::kNe: result = l != r; break;
          case CmpPred::kLt: result = l < r; break;
          case CmpPred::kLe: result = l <= r; break;
          case CmpPred::kGt: result = l > r; break;
          case CmpPred::kGe: result = l >= r; break;
        }
        env[&inst] = result ? 1 : 0;
        break;
      }
      case Opcode::kSext:
      case Opcode::kTrunc: {
        const std::int64_t value = sext_to_i64(
            value_of(env, inst.operands[0]), inst.operands[0]->type().kind);
        env[&inst] = static_cast<std::uint64_t>(
            sext_to_i64(static_cast<std::uint64_t>(value), inst.type().kind));
        break;
      }
      case Opcode::kZext: {
        std::uint64_t raw = value_of(env, inst.operands[0]);
        switch (inst.operands[0]->type().kind) {
          case TypeKind::kI1: raw &= 1; break;
          case TypeKind::kI8: raw &= 0xff; break;
          case TypeKind::kI32: raw &= 0xffffffffu; break;
          default: break;
        }
        env[&inst] = raw;
        break;
      }
      case Opcode::kSiToFp: {
        const std::int64_t value = sext_to_i64(
            value_of(env, inst.operands[0]), inst.operands[0]->type().kind);
        env[&inst] = from_f64(static_cast<double>(value));
        break;
      }
      case Opcode::kFpToSi: {
        const double value = as_f64(value_of(env, inst.operands[0]));
        if (!(value >= -9.3e18 && value <= 9.3e18)) {
          throw Trap{RunStatus::kTrapDivide};
        }
        const std::int64_t as_int = static_cast<std::int64_t>(value);
        env[&inst] = static_cast<std::uint64_t>(
            sext_to_i64(static_cast<std::uint64_t>(as_int), inst.type().kind));
        break;
      }
      case Opcode::kCall: {
        std::vector<std::uint64_t> args;
        args.reserve(inst.operands.size());
        for (const Value* operand : inst.operands) {
          args.push_back(value_of(env, operand));
        }
        std::uint64_t result = 0;
        if (inst.callee->is_builtin) {
          result = run_builtin(*inst.callee, args);
        } else if (inst.callee->is_declaration()) {
          throw Trap{RunStatus::kTrapInvalid};
        } else {
          result = call(*inst.callee, args);
        }
        if (!inst.type().is_void()) env[&inst] = result;
        break;
      }
      default:
        env[&inst] = eval_binary(env, inst);
        break;
    }
  }

  static bool eval_pred(CmpPred pred, std::int64_t l, std::int64_t r) {
    switch (pred) {
      case CmpPred::kEq: return l == r;
      case CmpPred::kNe: return l != r;
      case CmpPred::kLt: return l < r;
      case CmpPred::kLe: return l <= r;
      case CmpPred::kGt: return l > r;
      case CmpPred::kGe: return l >= r;
    }
    return false;
  }

  std::uint64_t eval_binary(
      std::unordered_map<const Value*, std::uint64_t>& env,
      const Instruction& inst) {
    const TypeKind kind = inst.type().kind;
    if (inst.type().is_float()) {
      const double l = as_f64(value_of(env, inst.operands[0]));
      const double r = as_f64(value_of(env, inst.operands[1]));
      switch (inst.op()) {
        case Opcode::kFAdd: return from_f64(l + r);
        case Opcode::kFSub: return from_f64(l - r);
        case Opcode::kFMul: return from_f64(l * r);
        case Opcode::kFDiv: return from_f64(l / r);
        default: throw Trap{RunStatus::kTrapInvalid};
      }
    }
    const std::int64_t l =
        sext_to_i64(value_of(env, inst.operands[0]), kind);
    const std::int64_t r =
        sext_to_i64(value_of(env, inst.operands[1]), kind);
    std::int64_t result = 0;
    switch (inst.op()) {
      case Opcode::kAdd:
        result = static_cast<std::int64_t>(static_cast<std::uint64_t>(l) +
                                           static_cast<std::uint64_t>(r));
        break;
      case Opcode::kSub:
        result = static_cast<std::int64_t>(static_cast<std::uint64_t>(l) -
                                           static_cast<std::uint64_t>(r));
        break;
      case Opcode::kMul:
        result = static_cast<std::int64_t>(static_cast<std::uint64_t>(l) *
                                           static_cast<std::uint64_t>(r));
        break;
      case Opcode::kSDiv:
        if (r == 0 || (l == INT64_MIN && r == -1)) {
          throw Trap{RunStatus::kTrapDivide};
        }
        result = l / r;
        break;
      case Opcode::kSRem:
        if (r == 0 || (l == INT64_MIN && r == -1)) {
          throw Trap{RunStatus::kTrapDivide};
        }
        result = l % r;
        break;
      case Opcode::kAnd: result = l & r; break;
      case Opcode::kOr: result = l | r; break;
      case Opcode::kXor: result = l ^ r; break;
      case Opcode::kShl:
        result = static_cast<std::int64_t>(static_cast<std::uint64_t>(l)
                                           << (r & 63));
        break;
      case Opcode::kAShr: result = l >> (r & 63); break;
      default: throw Trap{RunStatus::kTrapInvalid};
    }
    return static_cast<std::uint64_t>(
        sext_to_i64(static_cast<std::uint64_t>(result), kind));
  }

  std::uint64_t run_builtin(const Function& fn,
                            const std::vector<std::uint64_t>& args) {
    if (fn.name() == "print_int" || fn.name() == "print_f64") {
      output_.push_back(args[0]);
      return 0;
    }
    if (fn.name() == "sqrt") {
      return from_f64(std::sqrt(as_f64(args[0])));
    }
    throw Trap{RunStatus::kTrapInvalid};
  }

  const Module& module_;
  const InterpOptions& options_;
  std::vector<std::uint8_t> memory_;
  std::unordered_map<const GlobalVar*, std::uint64_t> global_addr_;
  std::uint64_t stack_top_ = 0;
  std::uint64_t heap_end_ = 0;
  std::uint64_t steps_ = 0;
  int depth_ = 0;
  std::vector<std::uint64_t> output_;
};

}  // namespace

RunResult interpret(const Module& module, const InterpOptions& options) {
  return Interp(module, options).run();
}

}  // namespace ferrum::ir
