#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "support/str.h"

namespace ferrum::ir {

namespace {

/// Cursor over one line of IR text.
class LineCursor {
 public:
  LineCursor(std::string_view text, int line, DiagEngine& diags)
      : text_(text), line_(line), diags_(diags) {}

  bool at_end() {
    skip_spaces();
    return pos_ >= text_.size();
  }
  void skip_spaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_spaces();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool accept(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool expect(char c) {
    if (accept(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }
  bool accept_word(std::string_view word) {
    skip_spaces();
    if (text_.substr(pos_, word.size()) != word) return false;
    const std::size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }
  std::string word() {
    skip_spaces();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }
  void fail(const std::string& message) {
    diags_.error({line_, static_cast<int>(pos_) + 1}, message);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
  DiagEngine& diags_;
};

class ModuleParser {
 public:
  ModuleParser(std::string_view text, DiagEngine& diags)
      : text_(text), diags_(diags) {}

  std::unique_ptr<Module> run() {
    module_ = std::make_unique<Module>();
    int line_number = 0;
    std::vector<std::pair<int, std::string_view>> lines;
    for (std::string_view line : split(text_, '\n')) {
      lines.emplace_back(++line_number, line);
    }

    // Pass 1: globals, function signatures (so calls resolve forward) and
    // the textual block-label order of each body (so forward branch
    // references do not scramble block order).
    std::string scanning_fn;
    for (auto& [number, line] : lines) {
      std::string_view trimmed = trim(line);
      if (starts_with(trimmed, "@")) parse_global(number, trimmed);
      if (starts_with(trimmed, "define") || starts_with(trimmed, "declare")) {
        scanning_fn = parse_signature(number, trimmed,
                                      starts_with(trimmed, "define"));
      } else if (trimmed == "}") {
        scanning_fn.clear();
      } else if (!scanning_fn.empty() && ends_with(trimmed, ":")) {
        labels_by_fn_[scanning_fn].emplace_back(
            trimmed.substr(0, trimmed.size() - 1));
      }
    }
    if (diags_.has_errors()) return nullptr;

    // Pass 2: function bodies.
    Function* fn = nullptr;
    for (auto& [number, line] : lines) {
      std::string_view trimmed = trim(line);
      if (trimmed.empty() || starts_with(trimmed, "@") ||
          starts_with(trimmed, "declare")) {
        continue;
      }
      if (starts_with(trimmed, "define")) {
        fn = begin_body(number, trimmed);
        continue;
      }
      if (trimmed == "}") {
        fn = nullptr;
        continue;
      }
      if (fn == nullptr) {
        diags_.error({number, 1}, "instruction outside a function");
        continue;
      }
      if (ends_with(trimmed, ":")) {
        const std::string label(trimmed.substr(0, trimmed.size() - 1));
        current_block_ = block_of(fn, label);
        continue;
      }
      if (current_block_ == nullptr) {
        diags_.error({number, 1}, "instruction before any label");
        continue;
      }
      parse_instruction(number, trimmed);
      if (diags_.error_count() > 20) return nullptr;
    }
    if (diags_.has_errors()) return nullptr;
    return std::move(module_);
  }

 private:
  // ---- pass 1 -----------------------------------------------------------

  void parse_global(int line, std::string_view text) {
    // @name = global i32 x 8 init [1, 2]
    LineCursor cursor(text, line, diags_);
    cursor.expect('@');
    const std::string name = cursor.word();
    cursor.expect('=');
    if (!cursor.accept_word("global")) {
      cursor.fail("expected 'global'");
      return;
    }
    Type elem;
    if (!parse_type(cursor, elem)) return;
    if (!cursor.accept_word("x")) {
      cursor.fail("expected 'x'");
      return;
    }
    const std::string count = cursor.word();
    GlobalVar* global = module_->add_global(
        elem.kind, std::atoll(count.c_str()), name);
    if (cursor.accept_word("init")) {
      cursor.expect('[');
      while (!cursor.accept(']')) {
        global->init.push_back(
            static_cast<std::uint64_t>(std::strtoull(
                cursor.word().c_str(), nullptr, 10)));
        cursor.accept(',');
      }
    }
  }

  std::string parse_signature(int line, std::string_view text,
                              bool is_define) {
    LineCursor cursor(text, line, diags_);
    cursor.accept_word(is_define ? "define" : "declare");
    Type ret;
    if (!parse_type(cursor, ret)) return std::string();
    cursor.expect('@');
    const std::string name = cursor.word();
    Function* fn = module_->add_function(name, ret);
    cursor.expect('(');
    while (!cursor.accept(')')) {
      Type param;
      if (!parse_type(cursor, param)) return std::string();
      std::string param_name;
      if (cursor.accept('%')) param_name = cursor.word();
      if (param_name.empty()) {
        param_name = "a" + std::to_string(fn->args().size());
      }
      fn->add_arg(param, param_name);
      cursor.accept(',');
    }
    if (!is_define) {
      // Builtins are recognised by name so the interpreter/VM handle them.
      fn->is_builtin = name == "print_int" || name == "print_f64" ||
                       name == "sqrt" || name == "__eddi_detect";
    }
    return is_define ? name : std::string();
  }

  // ---- pass 2 -----------------------------------------------------------

  Function* begin_body(int line, std::string_view text) {
    LineCursor cursor(text, line, diags_);
    cursor.accept_word("define");
    Type ret;
    parse_type(cursor, ret);
    cursor.expect('@');
    Function* fn = module_->find_function(cursor.word());
    values_.clear();
    blocks_.clear();
    current_block_ = nullptr;
    if (fn != nullptr) {
      for (const auto& arg : fn->args()) {
        values_["%" + arg->name()] = arg.get();
      }
      // Create the blocks in textual order so forward branch references
      // resolve without reordering the function.
      for (const std::string& label : labels_by_fn_[fn->name()]) {
        blocks_[label] = fn->add_block(label);
      }
    }
    return fn;
  }

  BasicBlock* block_of(Function* fn, const std::string& label) {
    auto it = blocks_.find(label);
    if (it != blocks_.end()) return it->second;
    BasicBlock* block = fn->add_block(label);
    blocks_[label] = block;
    return block;
  }

  bool parse_type(LineCursor& cursor, Type& out) {
    const std::string word = cursor.word();
    Type base;
    if (word == "void") base = Type::void_type();
    else if (word == "i1") base = Type::i1();
    else if (word == "i8") base = Type::i8();
    else if (word == "i32") base = Type::i32();
    else if (word == "i64") base = Type::i64();
    else if (word == "f64") base = Type::f64();
    else {
      cursor.fail("unknown type '" + word + "'");
      return false;
    }
    if (cursor.accept('*')) {
      out = Type::ptr(base.kind);
    } else {
      out = base;
    }
    return true;
  }

  /// Parses "TYPE VALUE" or just "VALUE" when the type is implied.
  Value* parse_value(LineCursor& cursor, int line, bool with_type,
                     Type implied = Type::i64()) {
    Type type = implied;
    if (with_type && !parse_type(cursor, type)) return nullptr;
    return parse_ref(cursor, line, type);
  }

  Value* parse_ref(LineCursor& cursor, int line, Type type) {
    if (cursor.accept('%')) {
      const std::string name = "%" + cursor.word();
      auto it = values_.find(name);
      if (it == values_.end()) {
        cursor.fail("unknown value " + name);
        return nullptr;
      }
      return it->second;
    }
    if (cursor.accept('@')) {
      const std::string name = cursor.word();
      GlobalVar* global = module_->find_global(name);
      if (global == nullptr) cursor.fail("unknown global @" + name);
      return global;
    }
    // Literal: integer or double depending on the expected type.
    const std::string word = cursor.word();
    if (word.empty()) {
      cursor.fail("expected a value");
      return nullptr;
    }
    (void)line;
    if (type.is_float()) {
      return module_->const_f64(std::strtod(word.c_str(), nullptr));
    }
    return module_->const_int(type, std::strtoll(word.c_str(), nullptr, 10));
  }

  BasicBlock* parse_label_ref(LineCursor& cursor) {
    if (!cursor.accept_word("label")) {
      cursor.fail("expected 'label'");
      return nullptr;
    }
    cursor.expect('%');
    return block_of(current_block_->parent, cursor.word());
  }

  CmpPred pred_of(const std::string& name) {
    if (name == "eq") return CmpPred::kEq;
    if (name == "ne") return CmpPred::kNe;
    if (name == "lt") return CmpPred::kLt;
    if (name == "le") return CmpPred::kLe;
    if (name == "gt") return CmpPred::kGt;
    return CmpPred::kGe;
  }

  void parse_instruction(int line, std::string_view text) {
    LineCursor cursor(text, line, diags_);
    std::string result_name;
    if (cursor.accept('%')) {
      result_name = "%" + cursor.word();
      cursor.expect('=');
    }
    const std::string op = cursor.word();
    Instruction* inst = nullptr;

    if (op == "alloca") {
      Type elem;
      if (!parse_type(cursor, elem)) return;
      std::int64_t count = 1;
      if (cursor.accept(',')) {
        count = std::atoll(cursor.word().c_str());
      }
      auto node = std::make_unique<Instruction>(Opcode::kAlloca,
                                                Type::ptr(elem.kind));
      node->alloca_elem = elem.kind;
      node->alloca_count = count;
      inst = current_block_->append(std::move(node));
    } else if (op == "load") {
      Type type;
      if (!parse_type(cursor, type)) return;
      cursor.expect(',');
      Value* ptr = parse_ref(cursor, line, Type::ptr(type.kind));
      if (ptr == nullptr) return;
      auto node = std::make_unique<Instruction>(Opcode::kLoad, type);
      node->operands = {ptr};
      inst = current_block_->append(std::move(node));
    } else if (op == "store") {
      Type type;
      if (!parse_type(cursor, type)) return;
      Value* value = parse_ref(cursor, line, type);
      cursor.expect(',');
      Value* ptr = parse_ref(cursor, line, Type::ptr(type.kind));
      if (value == nullptr || ptr == nullptr) return;
      auto node = std::make_unique<Instruction>(Opcode::kStore,
                                                Type::void_type());
      node->operands = {value, ptr};
      inst = current_block_->append(std::move(node));
    } else if (op == "gep") {
      Type type;
      if (!parse_type(cursor, type)) return;  // pointer type
      Value* base = parse_ref(cursor, line, type);
      cursor.expect(',');
      Value* index = parse_ref(cursor, line, Type::i64());
      if (base == nullptr || index == nullptr) return;
      auto node = std::make_unique<Instruction>(Opcode::kGep, type);
      node->operands = {base, index};
      inst = current_block_->append(std::move(node));
    } else if (op == "icmp" || op == "fcmp") {
      const CmpPred pred = pred_of(cursor.word());
      Type type;
      if (!parse_type(cursor, type)) return;
      Value* lhs = parse_ref(cursor, line, type);
      cursor.expect(',');
      Value* rhs = parse_ref(cursor, line, type);
      if (lhs == nullptr || rhs == nullptr) return;
      auto node = std::make_unique<Instruction>(
          op == "icmp" ? Opcode::kICmp : Opcode::kFCmp, Type::i1());
      node->pred = pred;
      node->operands = {lhs, rhs};
      inst = current_block_->append(std::move(node));
    } else if (op == "sext" || op == "zext" || op == "trunc" ||
               op == "sitofp" || op == "fptosi") {
      Type from;
      if (!parse_type(cursor, from)) return;
      Value* value = parse_ref(cursor, line, from);
      if (!cursor.accept_word("to")) {
        cursor.fail("expected 'to'");
        return;
      }
      Type to;
      if (!parse_type(cursor, to)) return;
      if (value == nullptr) return;
      Opcode opcode = Opcode::kSext;
      if (op == "zext") opcode = Opcode::kZext;
      if (op == "trunc") opcode = Opcode::kTrunc;
      if (op == "sitofp") opcode = Opcode::kSiToFp;
      if (op == "fptosi") opcode = Opcode::kFpToSi;
      auto node = std::make_unique<Instruction>(opcode, to);
      node->operands = {value};
      inst = current_block_->append(std::move(node));
    } else if (op == "call") {
      Type ret;
      if (!parse_type(cursor, ret)) return;
      cursor.expect('@');
      Function* callee = module_->find_function(cursor.word());
      if (callee == nullptr) {
        cursor.fail("unknown callee");
        return;
      }
      auto node = std::make_unique<Instruction>(Opcode::kCall, ret);
      node->callee = callee;
      cursor.expect('(');
      while (!cursor.accept(')')) {
        Type arg_type;
        if (!parse_type(cursor, arg_type)) return;
        Value* arg = parse_ref(cursor, line, arg_type);
        if (arg == nullptr) return;
        node->operands.push_back(arg);
        cursor.accept(',');
      }
      inst = current_block_->append(std::move(node));
    } else if (op == "br") {
      BasicBlock* target = parse_label_ref(cursor);
      if (target == nullptr) return;
      auto node = std::make_unique<Instruction>(Opcode::kBr,
                                                Type::void_type());
      node->targets[0] = target;
      inst = current_block_->append(std::move(node));
    } else if (op == "condbr") {
      Type type;
      if (!parse_type(cursor, type)) return;
      Value* cond = parse_ref(cursor, line, type);
      cursor.expect(',');
      BasicBlock* if_true = parse_label_ref(cursor);
      cursor.expect(',');
      BasicBlock* if_false = parse_label_ref(cursor);
      if (cond == nullptr || if_true == nullptr || if_false == nullptr) return;
      auto node = std::make_unique<Instruction>(Opcode::kCondBr,
                                                Type::void_type());
      node->operands = {cond};
      node->targets[0] = if_true;
      node->targets[1] = if_false;
      inst = current_block_->append(std::move(node));
    } else if (op == "ret") {
      auto node = std::make_unique<Instruction>(Opcode::kRet,
                                                Type::void_type());
      if (!cursor.accept_word("void")) {
        Type type;
        if (!parse_type(cursor, type)) return;
        Value* value = parse_ref(cursor, line, type);
        if (value == nullptr) return;
        node->operands = {value};
      }
      inst = current_block_->append(std::move(node));
    } else {
      // Binary arithmetic: op TYPE a, b
      static const std::unordered_map<std::string, Opcode> binary = {
          {"add", Opcode::kAdd}, {"sub", Opcode::kSub},
          {"mul", Opcode::kMul}, {"sdiv", Opcode::kSDiv},
          {"srem", Opcode::kSRem}, {"and", Opcode::kAnd},
          {"or", Opcode::kOr}, {"xor", Opcode::kXor},
          {"shl", Opcode::kShl}, {"ashr", Opcode::kAShr},
          {"fadd", Opcode::kFAdd}, {"fsub", Opcode::kFSub},
          {"fmul", Opcode::kFMul}, {"fdiv", Opcode::kFDiv}};
      auto it = binary.find(op);
      if (it == binary.end()) {
        cursor.fail("unknown instruction '" + op + "'");
        return;
      }
      Type type;
      if (!parse_type(cursor, type)) return;
      Value* lhs = parse_ref(cursor, line, type);
      cursor.expect(',');
      Value* rhs = parse_ref(cursor, line, type);
      if (lhs == nullptr || rhs == nullptr) return;
      auto node = std::make_unique<Instruction>(it->second, type);
      node->operands = {lhs, rhs};
      inst = current_block_->append(std::move(node));
    }

    if (!result_name.empty() && inst != nullptr) {
      values_[result_name] = inst;
    }
  }

  std::string_view text_;
  DiagEngine& diags_;
  std::unique_ptr<Module> module_;
  std::unordered_map<std::string, Value*> values_;
  std::unordered_map<std::string, BasicBlock*> blocks_;
  std::unordered_map<std::string, std::vector<std::string>> labels_by_fn_;
  BasicBlock* current_block_ = nullptr;
};

}  // namespace

std::unique_ptr<Module> parse_module(std::string_view text,
                                     DiagEngine& diags) {
  return ModuleParser(text, diags).run();
}

}  // namespace ferrum::ir
