#include "ir/builder.h"

namespace ferrum::ir {

Instruction* IRBuilder::emit(std::unique_ptr<Instruction> inst) {
  assert(block_ != nullptr && "no insertion point set");
  return block_->append(std::move(inst));
}

Instruction* IRBuilder::create_alloca(TypeKind elem, std::int64_t count) {
  auto inst = std::make_unique<Instruction>(Opcode::kAlloca, Type::ptr(elem));
  inst->alloca_elem = elem;
  inst->alloca_count = count;
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_load(Value* ptr) {
  assert(ptr->type().is_ptr() && "load requires a pointer operand");
  auto inst =
      std::make_unique<Instruction>(Opcode::kLoad, ptr->type().pointee());
  inst->operands = {ptr};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_store(Value* value, Value* ptr) {
  assert(ptr->type().is_ptr() && "store requires a pointer operand");
  assert(value->type() == ptr->type().pointee() && "store type mismatch");
  auto inst =
      std::make_unique<Instruction>(Opcode::kStore, Type::void_type());
  inst->operands = {value, ptr};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_gep(Value* ptr, Value* index) {
  assert(ptr->type().is_ptr() && "gep requires a pointer operand");
  assert(index->type() == Type::i64() && "gep index must be i64");
  auto inst = std::make_unique<Instruction>(Opcode::kGep, ptr->type());
  inst->operands = {ptr, index};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_binary(Opcode op, Value* lhs, Value* rhs) {
  assert(lhs->type() == rhs->type() && "binary operand type mismatch");
  const bool is_float_op = op == Opcode::kFAdd || op == Opcode::kFSub ||
                           op == Opcode::kFMul || op == Opcode::kFDiv;
  assert(is_float_op ? lhs->type().is_float() : lhs->type().is_int());
  (void)is_float_op;
  auto inst = std::make_unique<Instruction>(op, lhs->type());
  inst->operands = {lhs, rhs};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_icmp(CmpPred pred, Value* lhs, Value* rhs) {
  assert(lhs->type() == rhs->type() && "icmp operand type mismatch");
  assert(lhs->type().is_int() || lhs->type().is_ptr());
  auto inst = std::make_unique<Instruction>(Opcode::kICmp, Type::i1());
  inst->pred = pred;
  inst->operands = {lhs, rhs};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_fcmp(CmpPred pred, Value* lhs, Value* rhs) {
  assert(lhs->type().is_float() && rhs->type().is_float());
  auto inst = std::make_unique<Instruction>(Opcode::kFCmp, Type::i1());
  inst->pred = pred;
  inst->operands = {lhs, rhs};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_sext(Value* value, Type to) {
  assert(value->type().is_int() && to.is_int());
  assert(scalar_size(value->type().kind) <= scalar_size(to.kind));
  auto inst = std::make_unique<Instruction>(Opcode::kSext, to);
  inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_zext(Value* value, Type to) {
  assert(value->type().is_int() && to.is_int());
  auto inst = std::make_unique<Instruction>(Opcode::kZext, to);
  inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_trunc(Value* value, Type to) {
  assert(value->type().is_int() && to.is_int());
  assert(scalar_size(value->type().kind) >= scalar_size(to.kind));
  auto inst = std::make_unique<Instruction>(Opcode::kTrunc, to);
  inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_sitofp(Value* value) {
  assert(value->type().is_int());
  auto inst = std::make_unique<Instruction>(Opcode::kSiToFp, Type::f64());
  inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_fptosi(Value* value, Type to) {
  assert(value->type().is_float() && to.is_int());
  auto inst = std::make_unique<Instruction>(Opcode::kFpToSi, to);
  inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_call(Function* callee,
                                    std::vector<Value*> args) {
  assert(callee != nullptr);
  assert(args.size() == callee->args().size() && "call arity mismatch");
  auto inst =
      std::make_unique<Instruction>(Opcode::kCall, callee->return_type());
  inst->callee = callee;
  inst->operands = std::move(args);
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_br(BasicBlock* target) {
  auto inst = std::make_unique<Instruction>(Opcode::kBr, Type::void_type());
  inst->targets[0] = target;
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_cond_br(Value* cond, BasicBlock* if_true,
                                       BasicBlock* if_false) {
  assert(cond->type() == Type::i1() && "condbr condition must be i1");
  auto inst =
      std::make_unique<Instruction>(Opcode::kCondBr, Type::void_type());
  inst->operands = {cond};
  inst->targets[0] = if_true;
  inst->targets[1] = if_false;
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_ret(Value* value) {
  auto inst = std::make_unique<Instruction>(Opcode::kRet, Type::void_type());
  if (value != nullptr) inst->operands = {value};
  return emit(std::move(inst));
}

Instruction* IRBuilder::create_ret_void() { return create_ret(nullptr); }

}  // namespace ferrum::ir
