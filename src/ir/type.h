// MiniIR type system. Small fixed set of first-class types: void, i1, i8,
// i32, i64, f64 and typed pointers to scalar element types. This mirrors
// the subset of LLVM types the paper's pipeline exercises.
#pragma once

#include <cstdint>
#include <string>

namespace ferrum::ir {

enum class TypeKind : std::uint8_t {
  kVoid,
  kI1,
  kI8,
  kI32,
  kI64,
  kF64,
  kPtr,
};

/// Value type. Pointers carry their scalar element kind so that GEP and
/// load/store know the element size — MiniIR uses typed pointers, one
/// indirection level deep (arrays of scalars cover all eight workloads).
struct Type {
  TypeKind kind = TypeKind::kVoid;
  // Element kind when kind == kPtr; must itself be a scalar kind.
  TypeKind elem = TypeKind::kVoid;

  static Type void_type() { return {TypeKind::kVoid, TypeKind::kVoid}; }
  static Type i1() { return {TypeKind::kI1, TypeKind::kVoid}; }
  static Type i8() { return {TypeKind::kI8, TypeKind::kVoid}; }
  static Type i32() { return {TypeKind::kI32, TypeKind::kVoid}; }
  static Type i64() { return {TypeKind::kI64, TypeKind::kVoid}; }
  static Type f64() { return {TypeKind::kF64, TypeKind::kVoid}; }
  static Type ptr(TypeKind element) { return {TypeKind::kPtr, element}; }

  bool is_void() const { return kind == TypeKind::kVoid; }
  bool is_ptr() const { return kind == TypeKind::kPtr; }
  bool is_float() const { return kind == TypeKind::kF64; }
  bool is_int() const {
    return kind == TypeKind::kI1 || kind == TypeKind::kI8 ||
           kind == TypeKind::kI32 || kind == TypeKind::kI64;
  }
  bool is_scalar() const { return is_int() || is_float(); }

  /// Pointee type of a pointer.
  Type pointee() const { return {elem, TypeKind::kVoid}; }

  friend bool operator==(const Type& a, const Type& b) {
    return a.kind == b.kind && a.elem == b.elem;
  }
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

  std::string to_string() const;
};

/// Size in bytes of a scalar kind when stored in memory.
int scalar_size(TypeKind kind);

/// Size in bytes of any first-class type (pointers are 8).
int type_size(const Type& type);

}  // namespace ferrum::ir
