// Reference interpreter for MiniIR. This is the semantic oracle: the
// backend + VM pipeline must produce exactly the same output stream for
// every program, and the protection passes must preserve it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace ferrum::ir {

enum class RunStatus : std::uint8_t {
  kOk,
  kTrapMemory,     // out-of-bounds or misaligned access
  kTrapDivide,     // integer division by zero / overflow
  kTrapSteps,      // step budget exhausted (likely livelock)
  kTrapCallDepth,  // recursion too deep
  kTrapInvalid,    // malformed IR reached at runtime
};

const char* run_status_name(RunStatus status);

/// Result of executing a module's main().
struct RunResult {
  RunStatus status = RunStatus::kOk;
  /// Values emitted by print_int / print_f64, as raw 64-bit images in
  /// emission order. This stream is the program "output" that defines SDC.
  std::vector<std::uint64_t> output;
  std::int64_t return_value = 0;
  std::uint64_t steps = 0;

  bool ok() const { return status == RunStatus::kOk; }
  /// Human-readable rendering of the output stream.
  std::string output_to_string() const;
};

struct InterpOptions {
  std::uint64_t max_steps = 200'000'000;
  std::size_t memory_bytes = 1u << 24;
  int max_call_depth = 256;
};

/// Executes @main (no arguments, i64 or void return).
RunResult interpret(const Module& module, const InterpOptions& options = {});

}  // namespace ferrum::ir
