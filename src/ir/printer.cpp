#include "ir/printer.h"

#include <sstream>
#include <unordered_map>

#include "support/str.h"

namespace ferrum::ir {

namespace {

/// Assigns %N numbering to instruction results of one function at print
/// time, so the in-memory IR never has to maintain names.
class NamePool {
 public:
  explicit NamePool(const Function& function) {
    for (const auto& block : function.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (!inst->type().is_void()) {
          names_.emplace(inst.get(), "%" + std::to_string(next_++));
        }
      }
    }
  }

  std::string name_of(const Value* value) const {
    switch (value->kind()) {
      case ValueKind::kConstant: {
        const auto* c = static_cast<const Constant*>(value);
        if (c->type().is_float()) return format_double(c->f);
        return std::to_string(c->i);
      }
      case ValueKind::kArgument:
        return "%" + static_cast<const Argument*>(value)->name();
      case ValueKind::kGlobal:
        return "@" + static_cast<const GlobalVar*>(value)->name();
      case ValueKind::kInstruction: {
        auto it = names_.find(value);
        return it != names_.end() ? it->second : "%<void>";
      }
    }
    return "?";
  }

 private:
  std::unordered_map<const Value*, std::string> names_;
  int next_ = 0;
};

void print_instruction(std::ostringstream& os, const Instruction& inst,
                       const NamePool& names) {
  os << "  ";
  if (!inst.type().is_void()) os << names.name_of(&inst) << " = ";
  switch (inst.op()) {
    case Opcode::kAlloca:
      os << "alloca " << Type{inst.alloca_elem, TypeKind::kVoid}.to_string();
      if (inst.alloca_count != 1) os << ", " << inst.alloca_count;
      break;
    case Opcode::kLoad:
      os << "load " << inst.type().to_string() << ", "
         << names.name_of(inst.operands[0]);
      break;
    case Opcode::kStore:
      os << "store " << inst.operands[0]->type().to_string() << " "
         << names.name_of(inst.operands[0]) << ", "
         << names.name_of(inst.operands[1]);
      break;
    case Opcode::kICmp:
    case Opcode::kFCmp:
      os << opcode_name(inst.op()) << " " << pred_name(inst.pred) << " "
         << inst.operands[0]->type().to_string() << " "
         << names.name_of(inst.operands[0]) << ", "
         << names.name_of(inst.operands[1]);
      break;
    case Opcode::kSext:
    case Opcode::kZext:
    case Opcode::kTrunc:
    case Opcode::kSiToFp:
    case Opcode::kFpToSi:
      os << opcode_name(inst.op()) << " "
         << inst.operands[0]->type().to_string() << " "
         << names.name_of(inst.operands[0]) << " to "
         << inst.type().to_string();
      break;
    case Opcode::kGep:
      os << "gep " << inst.type().to_string() << " "
         << names.name_of(inst.operands[0]) << ", "
         << names.name_of(inst.operands[1]);
      break;
    case Opcode::kCall: {
      os << "call " << inst.callee->return_type().to_string() << " @"
         << inst.callee->name() << "(";
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        if (i != 0) os << ", ";
        os << inst.operands[i]->type().to_string() << " "
           << names.name_of(inst.operands[i]);
      }
      os << ")";
      break;
    }
    case Opcode::kBr:
      os << "br label %" << inst.targets[0]->name();
      break;
    case Opcode::kCondBr:
      os << "condbr i1 " << names.name_of(inst.operands[0]) << ", label %"
         << inst.targets[0]->name() << ", label %" << inst.targets[1]->name();
      break;
    case Opcode::kRet:
      if (inst.operands.empty()) {
        os << "ret void";
      } else {
        os << "ret " << inst.operands[0]->type().to_string() << " "
           << names.name_of(inst.operands[0]);
      }
      break;
    default:
      os << opcode_name(inst.op()) << " " << inst.type().to_string() << " "
         << names.name_of(inst.operands[0]) << ", "
         << names.name_of(inst.operands[1]);
      break;
  }
  os << "\n";
}

}  // namespace

std::string print(const Function& function) {
  std::ostringstream os;
  if (function.is_declaration()) {
    os << "declare " << function.return_type().to_string() << " @"
       << function.name() << "(";
    for (std::size_t i = 0; i < function.args().size(); ++i) {
      if (i != 0) os << ", ";
      os << function.args()[i]->type().to_string();
    }
    os << ")\n";
    return os.str();
  }
  NamePool names(function);
  os << "define " << function.return_type().to_string() << " @"
     << function.name() << "(";
  for (std::size_t i = 0; i < function.args().size(); ++i) {
    if (i != 0) os << ", ";
    os << function.args()[i]->type().to_string() << " %"
       << function.args()[i]->name();
  }
  os << ") {\n";
  for (const auto& block : function.blocks()) {
    os << block->name() << ":\n";
    for (const auto& inst : block->instructions()) {
      print_instruction(os, *inst, names);
    }
  }
  os << "}\n";
  return os.str();
}

std::string print(const Module& module) {
  std::ostringstream os;
  for (const auto& global : module.globals()) {
    os << "@" << global->name() << " = global "
       << Type{global->element(), TypeKind::kVoid}.to_string() << " x "
       << global->count();
    if (!global->init.empty()) {
      os << " init [";
      for (std::size_t i = 0; i < global->init.size(); ++i) {
        if (i != 0) os << ", ";
        os << global->init[i];
      }
      os << "]";
    }
    os << "\n";
  }
  if (!module.globals().empty()) os << "\n";
  for (const auto& function : module.functions()) {
    os << print(*function) << "\n";
  }
  return os.str();
}

}  // namespace ferrum::ir
