// Parser for the textual MiniIR form produced by ir::print. Lets tests
// round-trip modules and write IR fixtures directly.
//
// Restriction: a value must be defined textually before its first use
// (true of everything the printer emits, since passes only append
// continuation blocks after the defining code).
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.h"
#include "support/source_location.h"

namespace ferrum::ir {

/// Parses a whole module. Returns nullptr and reports to `diags` on error.
std::unique_ptr<Module> parse_module(std::string_view text,
                                     DiagEngine& diags);

}  // namespace ferrum::ir
