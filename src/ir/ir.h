// MiniIR: a compact load/store-form intermediate representation modelled on
// the clang -O0 flavour of LLVM IR that the paper's EDDI pipelines consume.
//
// Structural invariants (checked by the verifier in verifier.h):
//  * every basic block ends with exactly one terminator (br / condbr / ret);
//  * instruction results are consumed only inside their defining block
//    ("block-local SSA"); values that cross blocks travel through allocas,
//    exactly as in -O0 LLVM output — so there are no phi nodes;
//  * operand types match the opcode's signature.
//
// Ownership: Module owns Functions and GlobalVars and interns Constants;
// Function owns its BasicBlocks and Arguments; BasicBlock owns its
// Instructions. Raw Value* pointers are non-owning references into that
// tree and remain stable across instruction insertion.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/type.h"

namespace ferrum::ir {

class BasicBlock;
class Function;
class Module;

enum class ValueKind : std::uint8_t {
  kConstant,
  kArgument,
  kInstruction,
  kGlobal,
};

/// Base of everything that can appear as an operand.
class Value {
 public:
  Value(ValueKind kind, Type type) : kind_(kind), type_(type) {}
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const { return kind_; }
  const Type& type() const { return type_; }

 private:
  ValueKind kind_;
  Type type_;
};

/// Interned literal. Integer payload is stored sign-extended in `i`;
/// floating payload in `f`.
class Constant final : public Value {
 public:
  Constant(Type type, std::int64_t int_value)
      : Value(ValueKind::kConstant, type), i(int_value) {}
  Constant(Type type, double float_value)
      : Value(ValueKind::kConstant, type), f(float_value) {}

  std::int64_t i = 0;
  double f = 0.0;
};

/// Formal parameter of a function.
class Argument final : public Value {
 public:
  Argument(Type type, std::string name, int index)
      : Value(ValueKind::kArgument, type),
        name_(std::move(name)),
        index_(index) {}

  const std::string& name() const { return name_; }
  int index() const { return index_; }

 private:
  std::string name_;
  int index_;
};

/// Module-level variable backed by static storage: a scalar or an array of
/// scalars, zero-initialised unless `init` provides leading values.
class GlobalVar final : public Value {
 public:
  GlobalVar(TypeKind element, std::int64_t count, std::string name)
      : Value(ValueKind::kGlobal, Type::ptr(element)),
        element_(element),
        count_(count),
        name_(std::move(name)) {}

  TypeKind element() const { return element_; }
  std::int64_t count() const { return count_; }
  const std::string& name() const { return name_; }

  /// Optional explicit initialisers for the leading elements, stored as
  /// raw 64-bit images (sign-extended ints or double bit patterns).
  std::vector<std::uint64_t> init;

 private:
  TypeKind element_;
  std::int64_t count_;
  std::string name_;
};

enum class Opcode : std::uint8_t {
  // Memory.
  kAlloca,
  kLoad,
  kStore,
  // Integer arithmetic / bitwise.
  kAdd,
  kSub,
  kMul,
  kSDiv,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kAShr,
  // Floating point.
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  // Comparisons.
  kICmp,
  kFCmp,
  // Casts.
  kSext,
  kZext,
  kTrunc,
  kSiToFp,
  kFpToSi,
  // Address arithmetic: ptr + index * sizeof(elem).
  kGep,
  // Calls & intrinsics.
  kCall,
  // Terminators.
  kBr,
  kCondBr,
  kRet,
};

enum class CmpPred : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* opcode_name(Opcode op);
const char* pred_name(CmpPred pred);
bool is_terminator(Opcode op);
/// True for opcodes classic EDDI duplicates (produce a register value and
/// have no side effects): load, arithmetic, compares, casts, gep.
bool is_duplicable(Opcode op);

/// One IR instruction. A single concrete class covers every opcode; the
/// opcode-specific fields below are meaningful only for the opcodes noted
/// in their comments (the verifier enforces this). A class hierarchy was
/// considered and rejected: transformation passes (the point of this
/// project) iterate and rewrite instructions generically, and a flat
/// record keeps that code free of downcasts.
class Instruction final : public Value {
 public:
  Instruction(Opcode op, Type type) : Value(ValueKind::kInstruction, type), op_(op) {}

  Opcode op() const { return op_; }

  std::vector<Value*> operands;

  // kICmp / kFCmp.
  CmpPred pred = CmpPred::kEq;
  // kAlloca: element kind and static element count.
  TypeKind alloca_elem = TypeKind::kVoid;
  std::int64_t alloca_count = 1;
  // kBr: targets[0]; kCondBr: targets[0] = true successor, targets[1] =
  // false successor.
  BasicBlock* targets[2] = {nullptr, nullptr};
  // kCall.
  Function* callee = nullptr;

  /// Parent block; maintained by BasicBlock insertion helpers.
  BasicBlock* parent = nullptr;

 private:
  Opcode op_;
};

/// Straight-line sequence of instructions ending in one terminator.
class BasicBlock {
 public:
  explicit BasicBlock(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }

  /// Appends and returns the instruction.
  Instruction* append(std::unique_ptr<Instruction> inst);
  /// Inserts before position `index` and returns the instruction.
  Instruction* insert(std::size_t index, std::unique_ptr<Instruction> inst);
  /// Removes and returns all instructions (used by rewriting passes; the
  /// Instruction objects keep their identity as operand references).
  std::vector<std::unique_ptr<Instruction>> take_instructions();

  std::size_t size() const { return instructions_.size(); }
  Instruction* at(std::size_t index) const {
    return instructions_[index].get();
  }
  /// Terminator, or nullptr if the block is still open.
  Instruction* terminator() const;

  Function* parent = nullptr;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

/// Function: signature + list of blocks (entry first). A function with no
/// blocks is a declaration (used for runtime builtins such as print_int).
class Function {
 public:
  Function(std::string name, Type return_type) : name_(std::move(name)), return_type_(return_type) {}

  const std::string& name() const { return name_; }
  const Type& return_type() const { return return_type_; }

  Argument* add_arg(Type type, std::string name);
  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }

  BasicBlock* add_block(std::string name);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  bool is_declaration() const { return blocks_.empty(); }

  /// True for runtime builtins (print_int, print_f64, sqrt) that the
  /// interpreter and the VM implement natively.
  bool is_builtin = false;

  Module* parent = nullptr;

 private:
  std::string name_;
  Type return_type_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  int next_block_id_ = 0;

  friend class Module;
};

/// Top-level container: functions, globals, interned constants.
class Module {
 public:
  Module() = default;

  Function* add_function(std::string name, Type return_type);
  Function* find_function(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  GlobalVar* add_global(TypeKind element, std::int64_t count,
                        std::string name);
  GlobalVar* find_global(const std::string& name) const;
  const std::vector<std::unique_ptr<GlobalVar>>& globals() const {
    return globals_;
  }

  /// Interned integer constant of the given integer/pointer type.
  Constant* const_int(Type type, std::int64_t value);
  Constant* const_i32(std::int32_t value) {
    return const_int(Type::i32(), value);
  }
  Constant* const_i64(std::int64_t value) {
    return const_int(Type::i64(), value);
  }
  Constant* const_i1(bool value) { return const_int(Type::i1(), value); }
  /// Interned f64 constant.
  Constant* const_f64(double value);

  /// Declares (once) one of the runtime builtins; returns the declaration.
  Function* builtin_print_int();
  Function* builtin_print_f64();
  Function* builtin_sqrt();
  /// Error-detector entry point used by the EDDI passes; the backend
  /// lowers calls to it into the VM's DetectTrap pseudo-instruction.
  Function* builtin_detect();

 private:
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalVar>> globals_;
  std::vector<std::unique_ptr<Constant>> constants_;
  std::unordered_map<std::string, Constant*> constant_index_;
};

}  // namespace ferrum::ir
