#include "ir/verifier.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ferrum::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<std::string> run() {
    for (const auto& fn : module_.functions()) check_function(*fn);
    return std::move(problems_);
  }

 private:
  void problem(const Function& fn, const std::string& message) {
    problems_.push_back("@" + fn.name() + ": " + message);
  }

  void check_function(const Function& fn) {
    if (fn.is_declaration()) return;
    std::unordered_set<const BasicBlock*> own_blocks;
    for (const auto& block : fn.blocks()) own_blocks.insert(block.get());

    // Map from defined instruction to (block, index) for block-local SSA.
    std::unordered_map<const Value*, std::pair<const BasicBlock*, std::size_t>>
        defs;
    for (const auto& block : fn.blocks()) {
      for (std::size_t i = 0; i < block->size(); ++i) {
        const Instruction* inst = block->at(i);
        if (!inst->type().is_void()) defs[inst] = {block.get(), i};
      }
    }

    for (const auto& block : fn.blocks()) {
      if (block->size() == 0) {
        problem(fn, "block " + block->name() + " is empty");
        continue;
      }
      for (std::size_t i = 0; i < block->size(); ++i) {
        const Instruction* inst = block->at(i);
        const bool last = i + 1 == block->size();
        if (is_terminator(inst->op()) != last) {
          problem(fn, "block " + block->name() +
                          (last ? " does not end with a terminator"
                                : " has a terminator in the middle"));
        }
        check_instruction(fn, *block, i, *inst, own_blocks, defs);
      }
    }
  }

  void check_instruction(
      const Function& fn, const BasicBlock& block, std::size_t index,
      const Instruction& inst,
      const std::unordered_set<const BasicBlock*>& own_blocks,
      const std::unordered_map<const Value*,
                               std::pair<const BasicBlock*, std::size_t>>&
          defs) {
    // Operands that are instructions must belong to this function and,
    // when defined in the same block, must be defined before use. Uses in
    // *other* blocks are legal: the frontend only produces block-local
    // values, but protection passes split blocks, and the backend routes
    // such escaping values through frame slots. Allocas denote static
    // frame addresses and are usable anywhere.
    for (const Value* operand : inst.operands) {
      if (operand->kind() != ValueKind::kInstruction) continue;
      auto it = defs.find(operand);
      if (it == defs.end()) {
        problem(fn, "operand refers to an instruction outside the function");
        continue;
      }
      if (static_cast<const Instruction*>(operand)->op() == Opcode::kAlloca) {
        continue;
      }
      if (it->second.first == &block && it->second.second >= index) {
        problem(fn, "block " + block.name() + ": use before definition");
      }
    }

    auto expect_operands = [&](std::size_t count) {
      if (inst.operands.size() != count) {
        std::ostringstream os;
        os << opcode_name(inst.op()) << " expects " << count
           << " operands, got " << inst.operands.size();
        problem(fn, os.str());
        return false;
      }
      return true;
    };

    switch (inst.op()) {
      case Opcode::kAlloca:
        if (inst.alloca_count < 1) problem(fn, "alloca count must be >= 1");
        if (scalar_size(inst.alloca_elem) == 0) {
          problem(fn, "alloca of void element");
        }
        break;
      case Opcode::kLoad:
        if (expect_operands(1)) {
          if (!inst.operands[0]->type().is_ptr()) {
            problem(fn, "load from non-pointer");
          } else if (inst.operands[0]->type().pointee() != inst.type()) {
            problem(fn, "load result type mismatch");
          }
        }
        break;
      case Opcode::kStore:
        if (expect_operands(2)) {
          if (!inst.operands[1]->type().is_ptr()) {
            problem(fn, "store to non-pointer");
          } else if (inst.operands[1]->type().pointee() !=
                     inst.operands[0]->type()) {
            problem(fn, "store value type mismatch");
          }
        }
        break;
      case Opcode::kGep:
        if (expect_operands(2)) {
          if (!inst.operands[0]->type().is_ptr()) {
            problem(fn, "gep base must be a pointer");
          }
          if (inst.operands[1]->type() != Type::i64()) {
            problem(fn, "gep index must be i64");
          }
          if (inst.type() != inst.operands[0]->type()) {
            problem(fn, "gep result type mismatch");
          }
        }
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kSDiv:
      case Opcode::kSRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kAShr:
        if (expect_operands(2)) {
          if (!(inst.operands[0]->type().is_int() &&
                inst.operands[0]->type() == inst.operands[1]->type() &&
                inst.type() == inst.operands[0]->type())) {
            problem(fn, std::string(opcode_name(inst.op())) +
                            ": integer operand/result type mismatch");
          }
        }
        break;
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kFMul:
      case Opcode::kFDiv:
        if (expect_operands(2)) {
          if (!(inst.operands[0]->type().is_float() &&
                inst.operands[1]->type().is_float() &&
                inst.type().is_float())) {
            problem(fn, std::string(opcode_name(inst.op())) +
                            ": float operand/result type mismatch");
          }
        }
        break;
      case Opcode::kICmp:
        if (expect_operands(2)) {
          if (inst.operands[0]->type() != inst.operands[1]->type() ||
              inst.type() != Type::i1()) {
            problem(fn, "icmp type mismatch");
          }
        }
        break;
      case Opcode::kFCmp:
        if (expect_operands(2)) {
          if (!inst.operands[0]->type().is_float() ||
              !inst.operands[1]->type().is_float() ||
              inst.type() != Type::i1()) {
            problem(fn, "fcmp type mismatch");
          }
        }
        break;
      case Opcode::kSext:
      case Opcode::kZext:
      case Opcode::kTrunc:
        if (expect_operands(1)) {
          if (!inst.operands[0]->type().is_int() || !inst.type().is_int()) {
            problem(fn, "int cast on non-integer");
          }
        }
        break;
      case Opcode::kSiToFp:
        if (expect_operands(1)) {
          if (!inst.operands[0]->type().is_int() || !inst.type().is_float()) {
            problem(fn, "sitofp type mismatch");
          }
        }
        break;
      case Opcode::kFpToSi:
        if (expect_operands(1)) {
          if (!inst.operands[0]->type().is_float() || !inst.type().is_int()) {
            problem(fn, "fptosi type mismatch");
          }
        }
        break;
      case Opcode::kCall: {
        if (inst.callee == nullptr) {
          problem(fn, "call without callee");
          break;
        }
        const auto& params = inst.callee->args();
        if (params.size() != inst.operands.size()) {
          problem(fn, "call arity mismatch for @" + inst.callee->name());
          break;
        }
        for (std::size_t i = 0; i < params.size(); ++i) {
          if (params[i]->type() != inst.operands[i]->type()) {
            problem(fn,
                    "call argument type mismatch for @" + inst.callee->name());
            break;
          }
        }
        if (inst.type() != inst.callee->return_type()) {
          problem(fn, "call result type mismatch for @" + inst.callee->name());
        }
        break;
      }
      case Opcode::kBr:
        if (inst.targets[0] == nullptr ||
            own_blocks.count(inst.targets[0]) == 0) {
          problem(fn, "br to foreign or null block");
        }
        break;
      case Opcode::kCondBr:
        if (expect_operands(1)) {
          if (inst.operands[0]->type() != Type::i1()) {
            problem(fn, "condbr condition must be i1");
          }
        }
        for (const BasicBlock* target : inst.targets) {
          if (target == nullptr || own_blocks.count(target) == 0) {
            problem(fn, "condbr to foreign or null block");
          }
        }
        break;
      case Opcode::kRet:
        if (fn.return_type().is_void()) {
          if (!inst.operands.empty()) problem(fn, "ret value in void function");
        } else if (inst.operands.size() != 1 ||
                   inst.operands[0]->type() != fn.return_type()) {
          problem(fn, "ret type mismatch");
        }
        break;
    }
  }

  const Module& module_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify(const Module& module) {
  return Verifier(module).run();
}

std::string verify_to_string(const Module& module) {
  std::ostringstream os;
  for (const auto& problem : verify(module)) os << problem << "\n";
  return os.str();
}

}  // namespace ferrum::ir
