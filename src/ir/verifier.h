// Structural well-formedness checks for MiniIR. Run after the frontend and
// after every IR-level protection pass.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace ferrum::ir {

/// Verifies the module invariants documented in ir.h:
///  * every reachable function body has an entry block;
///  * every block ends with exactly one terminator, and terminators appear
///    only at block ends;
///  * operand/result types match each opcode's signature;
///  * instruction results are used only within their defining block and
///    only after their definition (block-local SSA);
///  * branch targets belong to the same function; call arity and argument
///    types match the callee.
/// Returns a list of human-readable violations; empty means valid.
std::vector<std::string> verify(const Module& module);

/// Convenience: verify and render violations joined by newlines.
std::string verify_to_string(const Module& module);

}  // namespace ferrum::ir
