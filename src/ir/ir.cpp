#include "ir/ir.h"

#include <cstring>

namespace ferrum::ir {

std::string Type::to_string() const {
  switch (kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kI1:
      return "i1";
    case TypeKind::kI8:
      return "i8";
    case TypeKind::kI32:
      return "i32";
    case TypeKind::kI64:
      return "i64";
    case TypeKind::kF64:
      return "f64";
    case TypeKind::kPtr:
      return Type{elem, TypeKind::kVoid}.to_string() + "*";
  }
  return "?";
}

int scalar_size(TypeKind kind) {
  switch (kind) {
    case TypeKind::kI1:
    case TypeKind::kI8:
      return 1;
    case TypeKind::kI32:
      return 4;
    case TypeKind::kI64:
    case TypeKind::kF64:
    case TypeKind::kPtr:
      return 8;
    case TypeKind::kVoid:
      return 0;
  }
  return 0;
}

int type_size(const Type& type) {
  return type.is_ptr() ? 8 : scalar_size(type.kind);
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAlloca: return "alloca";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kSDiv: return "sdiv";
    case Opcode::kSRem: return "srem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kAShr: return "ashr";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kICmp: return "icmp";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kSext: return "sext";
    case Opcode::kZext: return "zext";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kSiToFp: return "sitofp";
    case Opcode::kFpToSi: return "fptosi";
    case Opcode::kGep: return "gep";
    case Opcode::kCall: return "call";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

const char* pred_name(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kLt: return "lt";
    case CmpPred::kLe: return "le";
    case CmpPred::kGt: return "gt";
    case CmpPred::kGe: return "ge";
  }
  return "?";
}

bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

bool is_duplicable(Opcode op) {
  switch (op) {
    case Opcode::kLoad:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kSDiv:
    case Opcode::kSRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kAShr:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kICmp:
    case Opcode::kFCmp:
    case Opcode::kSext:
    case Opcode::kZext:
    case Opcode::kTrunc:
    case Opcode::kSiToFp:
    case Opcode::kFpToSi:
    case Opcode::kGep:
      return true;
    default:
      return false;
  }
}

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->parent = this;
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::insert(std::size_t index,
                                std::unique_ptr<Instruction> inst) {
  assert(index <= instructions_.size());
  inst->parent = this;
  auto it = instructions_.begin() + static_cast<std::ptrdiff_t>(index);
  return instructions_.insert(it, std::move(inst))->get();
}

std::vector<std::unique_ptr<Instruction>> BasicBlock::take_instructions() {
  return std::move(instructions_);
}

Instruction* BasicBlock::terminator() const {
  if (instructions_.empty()) return nullptr;
  Instruction* last = instructions_.back().get();
  return is_terminator(last->op()) ? last : nullptr;
}

Argument* Function::add_arg(Type type, std::string name) {
  args_.push_back(std::make_unique<Argument>(type, std::move(name),
                                             static_cast<int>(args_.size())));
  return args_.back().get();
}

BasicBlock* Function::add_block(std::string name) {
  if (name.empty()) name = "bb";
  // Uniquify: labels must be distinct within a function or the lowered
  // assembly's jump targets would collide.
  for (const auto& block : blocks_) {
    if (block->name() == name) {
      name += "." + std::to_string(next_block_id_);
      break;
    }
  }
  ++next_block_id_;
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name)));
  blocks_.back()->parent = this;
  return blocks_.back().get();
}

Function* Module::add_function(std::string name, Type return_type) {
  functions_.push_back(
      std::make_unique<Function>(std::move(name), return_type));
  functions_.back()->parent = this;
  return functions_.back().get();
}

Function* Module::find_function(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

GlobalVar* Module::add_global(TypeKind element, std::int64_t count,
                              std::string name) {
  globals_.push_back(
      std::make_unique<GlobalVar>(element, count, std::move(name)));
  return globals_.back().get();
}

GlobalVar* Module::find_global(const std::string& name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

Constant* Module::const_int(Type type, std::int64_t value) {
  std::string key = type.to_string() + "#" + std::to_string(value);
  auto it = constant_index_.find(key);
  if (it != constant_index_.end()) return it->second;
  constants_.push_back(std::make_unique<Constant>(type, value));
  Constant* c = constants_.back().get();
  constant_index_.emplace(std::move(key), c);
  return c;
}

Constant* Module::const_f64(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  std::string key = "f64#" + std::to_string(bits);
  auto it = constant_index_.find(key);
  if (it != constant_index_.end()) return it->second;
  constants_.push_back(std::make_unique<Constant>(Type::f64(), value));
  Constant* c = constants_.back().get();
  constant_index_.emplace(std::move(key), c);
  return c;
}

namespace {
Function* find_or_declare(Module& module, const char* name, Type ret,
                          std::initializer_list<Type> params) {
  if (Function* existing = module.find_function(name)) return existing;
  Function* fn = module.add_function(name, ret);
  fn->is_builtin = true;
  int index = 0;
  for (Type t : params) fn->add_arg(t, "a" + std::to_string(index++));
  return fn;
}
}  // namespace

Function* Module::builtin_print_int() {
  return find_or_declare(*this, "print_int", Type::void_type(),
                         {Type::i64()});
}

Function* Module::builtin_print_f64() {
  return find_or_declare(*this, "print_f64", Type::void_type(),
                         {Type::f64()});
}

Function* Module::builtin_sqrt() {
  return find_or_declare(*this, "sqrt", Type::f64(), {Type::f64()});
}

Function* Module::builtin_detect() {
  return find_or_declare(*this, "__eddi_detect", Type::void_type(), {});
}

}  // namespace ferrum::ir
