// Convenience construction API for MiniIR, in the spirit of LLVM's
// IRBuilder: keeps an insertion point and type-checks as it builds.
#pragma once

#include <memory>
#include <vector>

#include "ir/ir.h"

namespace ferrum::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() { return module_; }

  /// Subsequent create_* calls append to `block`.
  void set_insert_point(BasicBlock* block) { block_ = block; }
  BasicBlock* insert_block() const { return block_; }

  // Memory.
  Instruction* create_alloca(TypeKind elem, std::int64_t count = 1);
  Instruction* create_load(Value* ptr);
  Instruction* create_store(Value* value, Value* ptr);
  Instruction* create_gep(Value* ptr, Value* index);

  // Arithmetic. Integer ops require matching integer operand types;
  // f* ops require f64 operands.
  Instruction* create_binary(Opcode op, Value* lhs, Value* rhs);
  Instruction* create_add(Value* l, Value* r) { return create_binary(Opcode::kAdd, l, r); }
  Instruction* create_sub(Value* l, Value* r) { return create_binary(Opcode::kSub, l, r); }
  Instruction* create_mul(Value* l, Value* r) { return create_binary(Opcode::kMul, l, r); }
  Instruction* create_sdiv(Value* l, Value* r) { return create_binary(Opcode::kSDiv, l, r); }
  Instruction* create_srem(Value* l, Value* r) { return create_binary(Opcode::kSRem, l, r); }
  Instruction* create_fadd(Value* l, Value* r) { return create_binary(Opcode::kFAdd, l, r); }
  Instruction* create_fsub(Value* l, Value* r) { return create_binary(Opcode::kFSub, l, r); }
  Instruction* create_fmul(Value* l, Value* r) { return create_binary(Opcode::kFMul, l, r); }
  Instruction* create_fdiv(Value* l, Value* r) { return create_binary(Opcode::kFDiv, l, r); }

  // Comparisons produce i1.
  Instruction* create_icmp(CmpPred pred, Value* lhs, Value* rhs);
  Instruction* create_fcmp(CmpPred pred, Value* lhs, Value* rhs);

  // Casts.
  Instruction* create_sext(Value* value, Type to);
  Instruction* create_zext(Value* value, Type to);
  Instruction* create_trunc(Value* value, Type to);
  Instruction* create_sitofp(Value* value);
  Instruction* create_fptosi(Value* value, Type to);

  Instruction* create_call(Function* callee, std::vector<Value*> args);

  // Terminators.
  Instruction* create_br(BasicBlock* target);
  Instruction* create_cond_br(Value* cond, BasicBlock* if_true,
                              BasicBlock* if_false);
  Instruction* create_ret(Value* value);
  Instruction* create_ret_void();

 private:
  Instruction* emit(std::unique_ptr<Instruction> inst);

  Module& module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace ferrum::ir
