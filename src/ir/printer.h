// Textual rendering of MiniIR, LLVM-flavoured. Used for debugging, golden
// tests and the transformation-inspection example.
#pragma once

#include <string>

#include "ir/ir.h"

namespace ferrum::ir {

std::string print(const Module& module);
std::string print(const Function& function);

}  // namespace ferrum::ir
