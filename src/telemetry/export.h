// JSON views of the stack's telemetry structs. Each converter splits the
// world the same way the bench artifacts do: `to_json` returns only
// deterministic data (a pure function of program + seed, byte-identical
// for any FERRUM_JOBS), while `wallclock_json` carries the
// scheduling-dependent observability (timers, per-worker counts) that is
// excluded from determinism comparisons.
#pragma once

#include <array>
#include <cstdint>

#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/compose.h"
#include "telemetry/json.h"
#include "vm/profile.h"
#include "vm/timing.h"

namespace ferrum::telemetry {

/// Instruction mix (non-zero opcodes only), origin mix, fault-site
/// tallies and hot blocks. `by_op` keys are mnemonics, `by_origin` keys
/// are masm::origin_name strings.
Json to_json(const vm::VmProfile& profile);

/// Per-port-class issue/latency attribution split by InstOrigin, busy
/// cycles, and the stall breakdown (dependence / port / issue-width).
Json to_json(const vm::TimingStats& stats);

/// Deterministic campaign results: trials, outcome counters, SDC rate,
/// detection-latency summary + log2 histogram, SDC breakdown, and a
/// "prune" section (pilot/dead/replay accounting) when the campaign ran
/// in prune mode.
Json to_json(const fault::CampaignResult& result);

/// Scheduling-dependent campaign observability: per-worker trial counts
/// and wall-clock seconds. Never byte-compare this across runs.
Json wallclock_json(const fault::CampaignResult& result);

/// Snapshot of a campaign in flight (outcome counts of the runs finished
/// so far, plus their live Wilson half-widths). Taken mid-campaign it is
/// scheduling-dependent like every wallclock section — the campaign
/// service streams it in status replies, quarantined from the
/// deterministic result bytes.
Json progress_json(const fault::CampaignProgress& progress);

/// Live Wilson half-widths of the four outcome rates over a mid-flight
/// outcome-count snapshot (keys benign/sdc/detected/crash). Wall-clock-
/// quarantined: the snapshot depends on scheduling.
Json outcome_half_widths_json(const std::array<std::uint64_t, 4>& counts);

/// Deterministic audit results: site/injection/outcome counters and the
/// escape list, plus a "prune" section (class/pilot/dead accounting)
/// when the audit ran in prune mode.
Json to_json(const fault::AuditReport& report);

/// Scheduling-dependent audit observability.
Json wallclock_json(const fault::AuditReport& report);

/// Deterministic compositional-campaign results: whole-program composed
/// counts plus the per-section summaries (id, code SHA-256, cache key,
/// site/occurrence counts, outcome counts). Cache-state observability
/// (warm/cold split, trials actually executed) is excluded so warm and
/// cold runs export byte-identical JSON.
Json to_json(const fault::ComposeReport& report);

/// Scheduling- and cache-state-dependent compose observability.
Json wallclock_json(const fault::ComposeReport& report);

}  // namespace ferrum::telemetry
