// Dependency-free JSON value tree with a *deterministic* writer: object
// keys are stored sorted (std::map), doubles use the shortest
// round-trippable form (support/str.h format_double), and the layout is
// fixed — so two runs that compute the same values emit byte-identical
// text. Every experiment artifact (BENCH_<name>.json, ferrumc --stats)
// goes through this writer, which is what makes telemetry diffable across
// PRs and byte-comparable across FERRUM_JOBS values.
//
// A minimal strict parser is included so artifacts can be validated
// (bench_smoke) and round-tripped in tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ferrum::telemetry {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject,
  };

  Json() = default;  // null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(int value) : kind_(Kind::kInt), int_(value) {}
  Json(long long value) : kind_(Kind::kInt), int_(value) {}
  Json(unsigned long long value) : kind_(Kind::kUint), uint_(value) {}
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
  Json(std::uint64_t value) : kind_(Kind::kUint), uint_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(const char* value) : kind_(Kind::kString), str_(value) {}
  Json(std::string value) : kind_(Kind::kString), str_(std::move(value)) {}

  static Json array() { Json v; v.kind_ = Kind::kArray; return v; }
  static Json object() { Json v; v.kind_ = Kind::kObject; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return str_; }

  /// Object field access; creates the field (and coerces a null value to
  /// an object) like a std::map. Use find() for non-mutating lookup.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;

  /// Array append; coerces a null value to an array.
  void push_back(Json value);

  std::size_t size() const;
  const std::vector<Json>& items() const { return items_; }
  const std::map<std::string, Json>& fields() const { return fields_; }

  /// Deterministic serialisation: sorted keys, 2-space indentation,
  /// shortest round-trippable doubles, "\uXXXX" escapes for control
  /// characters. Non-finite doubles (not representable in JSON) render
  /// as null.
  std::string dump() const;

  /// Strict parser for the subset dump() emits plus ordinary JSON
  /// (arbitrary whitespace, any key order). Returns nullopt on any
  /// syntax error or trailing garbage. Integers that fit int64/uint64
  /// parse as kInt/kUint, everything else numeric as kDouble.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

}  // namespace ferrum::telemetry
