#include "telemetry/metrics.h"

#include <bit>
#include <stdexcept>

#include "support/str.h"

namespace ferrum::telemetry {

void Histogram::observe(std::uint64_t value) noexcept {
  const int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // CAS loops for min/max: contended only when a new extreme arrives.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX && count() == 0 ? 0 : value;
}

Json Histogram::to_json() const {
  Json out = Json::object();
  out["count"] = Json(count());
  out["sum"] = Json(sum());
  out["min"] = Json(min());
  out["max"] = Json(max());
  out["mean"] = Json(mean());
  Json buckets = Json::array();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket(i);
    if (n == 0) continue;
    // Upper bound of the bucket: 0 for bucket 0, 2^i - 1 otherwise.
    const std::uint64_t bound =
        i == 0 ? 0
               : (i == 64 ? UINT64_MAX : (std::uint64_t{1} << i) - 1);
    Json pair = Json::array();
    pair.push_back(Json(bound));
    pair.push_back(Json(n));
    buckets.push_back(std::move(pair));
  }
  out["buckets"] = std::move(buckets);
  return out;
}

Registry::Metric& Registry::find_or_create(const std::string& name,
                                           MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(name);
  Metric& metric = it->second;
  if (inserted) {
    metric.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        metric.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        metric.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        metric.histogram = std::make_unique<Histogram>();
        break;
      case MetricKind::kTimer:
        metric.timer = std::make_unique<Timer>();
        break;
    }
  } else if (metric.kind != kind) {
    throw std::logic_error("telemetry metric '" + name +
                           "' requested as two different kinds");
  }
  return metric;
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_create(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_create(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *find_or_create(name, MetricKind::kHistogram).histogram;
}

Timer& Registry::timer(const std::string& name) {
  return *find_or_create(name, MetricKind::kTimer).timer;
}

Json Registry::to_json(bool include_timers) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json root = Json::object();
  for (const auto& [name, metric] : metrics_) {
    if (metric.kind == MetricKind::kTimer && !include_timers) continue;
    // Walk the '/'-separated path, creating nested objects.
    Json* node = &root;
    std::string_view rest = name;
    for (std::string_view piece : split(rest, '/')) {
      node = &(*node)[std::string(piece)];
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        *node = Json(metric.counter->value());
        break;
      case MetricKind::kGauge:
        *node = Json(metric.gauge->value());
        break;
      case MetricKind::kHistogram:
        *node = metric.histogram->to_json();
        break;
      case MetricKind::kTimer: {
        Json entry = Json::object();
        entry["seconds"] = Json(metric.timer->seconds());
        entry["count"] = Json(metric.timer->count());
        *node = std::move(entry);
        break;
      }
    }
  }
  return root;
}

}  // namespace ferrum::telemetry
