#include "telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/str.h"

namespace ferrum::telemetry {

std::int64_t Json::as_int() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: return static_cast<std::int64_t>(double_);
    default: return 0;
  }
}

std::uint64_t Json::as_uint() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<std::uint64_t>(int_);
    case Kind::kUint: return uint_;
    case Kind::kDouble: return static_cast<std::uint64_t>(double_);
    default: return 0;
  }
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: return 0.0;
  }
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  return fields_[key];
}

const Json* Json::find(const std::string& key) const {
  auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return items_.size();
    case Kind::kObject: return fields_.size();
    default: return 0;
  }
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

/// format_double, made JSON-safe: a rendering with no '.', 'e' gets a
/// trailing ".0" so the value reads back as a double, not an integer.
std::string json_double(double value) {
  std::string text = format_double(value);
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

}  // namespace

void Json::dump_to(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      out += std::to_string(int_);
      return;
    case Kind::kUint:
      out += std::to_string(uint_);
      return;
    case Kind::kDouble:
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no inf/nan
      } else {
        out += json_double(double_);
      }
      return;
    case Kind::kString:
      append_escaped(out, str_);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('\n');
        append_indent(out, depth + 1);
        item.dump_to(out, depth + 1);
      }
      out.push_back('\n');
      append_indent(out, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : fields_) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('\n');
        append_indent(out, depth + 1);
        append_escaped(out, key);
        out += ": ";
        value.dump_to(out, depth + 1);
      }
      out.push_back('\n');
      append_indent(out, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

// ------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    std::optional<Json> value = parse_value();
    if (!value.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return consume_word("null") ? std::optional<Json>(Json())
                                            : std::nullopt;
      case 't': return consume_word("true") ? std::optional<Json>(Json(true))
                                            : std::nullopt;
      case 'f': return consume_word("false") ? std::optional<Json>(Json(false))
                                             : std::nullopt;
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Only the escapes the writer emits (< 0x20) are mapped back
          // exactly; other code points are UTF-8 encoded.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!is_double) {
      if (token[0] == '-') {
        const long long value = std::strtoll(token.c_str(), &end, 10);
        if (end != token.c_str() + token.size()) return std::nullopt;
        return Json(static_cast<std::int64_t>(value));
      }
      const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size()) return std::nullopt;
      if (value <= static_cast<unsigned long long>(INT64_MAX)) {
        return Json(static_cast<std::int64_t>(value));
      }
      return Json(static_cast<std::uint64_t>(value));
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      std::optional<Json> item = parse_value();
      if (!item.has_value()) return std::nullopt;
      out.push_back(std::move(*item));
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      std::optional<Json> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      std::optional<Json> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      out[key->as_string()] = std::move(*value);
      if (consume(',')) continue;
      if (consume('}')) return out;
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ferrum::telemetry
