// Thread-safe, dependency-free metrics layer: counters, gauges, log2
// histograms, wall-clock timers, and a hierarchical registry that renders
// to deterministic JSON (telemetry/json.h).
//
// Concurrency model: metric handles returned by the registry are stable
// for the registry's lifetime (node-based storage) and every mutation is
// a relaxed atomic — many workers may hammer the same counter while
// another thread snapshots it. The registry lock is only taken on
// lookup/creation and on snapshot.
//
// Determinism contract: counters, gauges and histograms must hold
// identical values for identical inputs regardless of thread count —
// campaign code guarantees this by its ordered reduction. Timers measure
// wall-clock and are inherently nondeterministic; to_json(false) drops
// them so artifacts can be byte-compared across runs and FERRUM_JOBS
// values.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "telemetry/json.h"

namespace ferrum::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram of unsigned values. Bucket index is
/// bit_width(value): bucket 0 holds the value 0, bucket i (i >= 1) holds
/// values in [2^(i-1), 2^i - 1]. Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Minimum observed value; 0 when empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// {"count","sum","min","max","mean","buckets":[[upper_bound,count]...]}
  /// with only non-empty buckets listed.
  Json to_json() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Accumulates wall-clock time (nanoseconds) across scopes. Timers are
/// the one nondeterministic metric kind; Registry::to_json(false)
/// excludes them.
class Timer {
 public:
  void add_nanos(std::uint64_t nanos) noexcept {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const noexcept {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII scope that adds its lifetime to a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->add_nanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Hierarchical metric registry. Names are '/'-separated paths
/// ("vm/inst/alu"); each path segment becomes a nested JSON object in the
/// snapshot. Re-requesting a name returns the same metric; requesting an
/// existing name as a different kind throws std::logic_error.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Timer& timer(const std::string& name);

  /// Times a scope against timer(name).
  ScopedTimer scope(const std::string& name) {
    return ScopedTimer(timer(name));
  }

  /// Snapshot as a nested JSON object. `include_timers = false` drops
  /// every Timer — the deterministic view used for byte-comparison.
  Json to_json(bool include_timers = true) const;

 private:
  enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kTimer };
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Timer> timer;
  };

  Metric& find_or_create(const std::string& name, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace ferrum::telemetry
