#include "telemetry/export.h"

#include <cstdint>
#include <limits>

namespace ferrum::telemetry {

namespace {

// Upper bound of log2 bucket `i` (the convention of metrics.h Histogram
// and fault::CampaignResult::latency_histogram): bucket 0 holds value 0,
// bucket i holds [2^(i-1), 2^i).
std::uint64_t log2_bucket_upper(int i) {
  if (i == 0) return 0;
  if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

// Checkpoint/fast-forward accounting shared by the campaign and audit
// wallclock views. Deterministic for a fixed FERRUM_CKPT_STRIDE but not
// across strides, so it lives with the observability data to keep the
// metrics sections byte-identical for every stride.
Json ckpt_json(const vm::CheckpointTelemetry& ckpt) {
  Json json = Json::object();
  json["stride"] = ckpt.stride;
  json["checkpoints"] = ckpt.checkpoints;
  json["snapshot_bytes"] = ckpt.snapshot_bytes;
  json["trials"] = ckpt.ff.trials;
  json["restores"] = ckpt.ff.restores;
  json["steps_skipped"] = ckpt.ff.steps_skipped;
  json["steps_executed"] = ckpt.ff.steps_executed;
  json["fast_forward_ratio"] = ckpt.ff.ratio();
  // Lockstep batching accounting (zero when FERRUM_BATCH <= 1): batches
  // dispatched, lanes carried, and shared prefix-walk steps that scalar
  // execution would have re-run once per lane.
  json["batches"] = ckpt.ff.batches;
  json["lanes"] = ckpt.ff.lanes;
  json["walk_steps"] = ckpt.ff.walk_steps;
  // Trials whose golden-identical tail was elided by the rejoin
  // comparison (the elided steps count under steps_skipped).
  json["rejoins"] = ckpt.ff.rejoins;
  return json;
}

}  // namespace

Json to_json(const vm::VmProfile& profile) {
  Json json = Json::object();
  json["total"] = profile.total();

  Json by_op = Json::object();
  for (int i = 0; i < masm::kOpCount; ++i) {
    if (profile.op_counts[static_cast<std::size_t>(i)] == 0) continue;
    by_op[masm::op_mnemonic(static_cast<masm::Op>(i))] =
        profile.op_counts[static_cast<std::size_t>(i)];
  }
  json["by_op"] = by_op;

  Json by_origin = Json::object();
  for (int i = 0; i < masm::kInstOriginCount; ++i) {
    by_origin[masm::origin_name(static_cast<masm::InstOrigin>(i))] =
        profile.origin_counts[static_cast<std::size_t>(i)];
  }
  json["by_origin"] = by_origin;

  Json sites = Json::object();
  for (std::size_t i = 0; i < profile.site_counts.size(); ++i) {
    sites[vm::fault_kind_name(static_cast<vm::FaultKind>(i))] =
        profile.site_counts[i];
  }
  json["fi_sites_by_kind"] = sites;

  Json hot = Json::array();
  for (const vm::VmProfile::BlockCount& block : profile.hot_blocks) {
    Json entry = Json::object();
    entry["function"] = block.function;
    entry["label"] = block.label;
    entry["instructions"] = block.instructions;
    hot.push_back(entry);
  }
  json["hot_blocks"] = hot;
  return json;
}

Json to_json(const vm::TimingStats& stats) {
  Json json = Json::object();
  json["instructions"] = stats.instructions;

  Json ports = Json::object();
  for (int p = 0; p < vm::kPortClassCount; ++p) {
    Json port = Json::object();
    Json issues = Json::object();
    Json latency = Json::object();
    std::uint64_t port_issues = 0;
    for (int o = 0; o < masm::kInstOriginCount; ++o) {
      const char* origin = masm::origin_name(static_cast<masm::InstOrigin>(o));
      issues[origin] = stats.issues[p][o];
      latency[origin] = stats.latency_cycles[p][o];
      port_issues += stats.issues[p][o];
    }
    port["issues"] = issues;
    port["latency_cycles"] = latency;
    port["total_issues"] = port_issues;
    port["busy_cycles"] = stats.busy_cycles[p];
    ports[vm::port_class_name(static_cast<vm::PortClass>(p))] = port;
  }
  json["ports"] = ports;

  Json stalls = Json::object();
  stalls["dependence"] = stats.stall_dependence;
  stalls["port"] = stats.stall_port;
  stalls["issue_width"] = stats.stall_issue_width;
  json["stalls"] = stalls;
  return json;
}

Json to_json(const fault::CampaignResult& result) {
  Json json = Json::object();
  json["trials"] = result.trials();
  json["total_sites"] = result.total_sites;
  json["golden_steps"] = result.golden_steps;

  Json outcomes = Json::object();
  outcomes["benign"] = result.count(fault::Outcome::kBenign);
  outcomes["sdc"] = result.count(fault::Outcome::kSdc);
  outcomes["detected"] = result.count(fault::Outcome::kDetected);
  outcomes["crash"] = result.count(fault::Outcome::kCrash);
  json["outcomes"] = outcomes;
  json["sdc_rate"] = result.sdc_rate();

  Json latency = Json::object();
  latency["samples"] = result.latency_samples;
  latency["sum"] = result.latency_sum;
  latency["max"] = result.latency_max;
  latency["mean"] = result.mean_detection_latency();
  Json histogram = Json::array();
  for (int i = 0; i < fault::CampaignResult::kLatencyBuckets; ++i) {
    const std::uint64_t count =
        result.latency_histogram[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    Json bucket = Json::array();
    bucket.push_back(log2_bucket_upper(i));
    bucket.push_back(count);
    histogram.push_back(bucket);
  }
  latency["histogram"] = histogram;
  json["latency"] = latency;

  Json breakdown = Json::object();
  for (const auto& [key, count] : result.sdc_breakdown) breakdown[key] = count;
  json["sdc_breakdown"] = breakdown;

  if (result.prune.enabled) {
    Json prune = Json::object();
    prune["pilot_runs"] = result.prune.pilot_runs;
    prune["replayed_trials"] = result.prune.replayed_trials;
    prune["dead_trials"] = result.prune.dead_trials;
    prune["unmatched_trials"] = result.prune.unmatched_trials;
    prune["dead_fraction_static"] = result.prune.dead_fraction_static;
    prune["reduction"] = result.prune.reduction;
    json["prune"] = prune;
  }

  if (result.adaptive.enabled) {
    // Deterministic like the rest of the metrics section: the stop
    // boundary and the half-widths at it are functions of the canonical
    // trial prefix, never of scheduling.
    Json adaptive = Json::object();
    adaptive["target_half_width"] = result.adaptive.target_half_width;
    adaptive["planned_trials"] = result.adaptive.planned_trials;
    adaptive["executed_trials"] = result.adaptive.executed_trials;
    adaptive["stopped_early"] = result.adaptive.stopped_early;
    Json half_widths = Json::object();
    half_widths["benign"] = result.adaptive.half_widths[0];
    half_widths["sdc"] = result.adaptive.half_widths[1];
    half_widths["detected"] = result.adaptive.half_widths[2];
    half_widths["crash"] = result.adaptive.half_widths[3];
    adaptive["half_widths"] = half_widths;
    adaptive["reduction"] = result.adaptive.reduction();
    json["adaptive"] = adaptive;
  }
  return json;
}

Json wallclock_json(const fault::CampaignResult& result) {
  Json json = Json::object();
  Json per_worker = Json::array();
  for (std::uint64_t count : result.trials_per_worker)
    per_worker.push_back(count);
  json["trials_per_worker"] = per_worker;
  json["wall_seconds"] = result.wall_seconds;
  const int trials = result.trials();
  json["trials_per_second"] =
      result.wall_seconds > 0.0 ? trials / result.wall_seconds : 0.0;
  json["ckpt"] = ckpt_json(result.ckpt);
  return json;
}

Json progress_json(const fault::CampaignProgress& progress) {
  Json json = Json::object();
  Json outcomes = Json::object();
  std::array<std::uint64_t, 4> counts{};
  counts[0] = progress.count(fault::Outcome::kBenign);
  counts[1] = progress.count(fault::Outcome::kSdc);
  counts[2] = progress.count(fault::Outcome::kDetected);
  counts[3] = progress.count(fault::Outcome::kCrash);
  outcomes["benign"] = counts[0];
  outcomes["sdc"] = counts[1];
  outcomes["detected"] = counts[2];
  outcomes["crash"] = counts[3];
  json["outcomes_so_far"] = outcomes;
  json["runs_executed"] = progress.executed();
  json["half_widths"] = outcome_half_widths_json(counts);
  return json;
}

Json outcome_half_widths_json(const std::array<std::uint64_t, 4>& counts) {
  // Live Wilson half-widths over a mid-flight outcome snapshot. The
  // snapshot itself is scheduling-dependent (wall-clock-quarantined,
  // like every "so far" field), so these are for progress displays only
  // — the deterministic intervals live in the result's adaptive section.
  const std::uint64_t total = counts[0] + counts[1] + counts[2] + counts[3];
  const int trials = static_cast<int>(total);
  Json json = Json::object();
  static constexpr const char* kNames[] = {"benign", "sdc", "detected",
                                           "crash"};
  for (int i = 0; i < 4; ++i) {
    json[kNames[i]] = fault::wilson_half_width(
        static_cast<int>(counts[static_cast<std::size_t>(i)]), trials);
  }
  return json;
}

Json to_json(const fault::AuditReport& report) {
  Json json = Json::object();
  json["sites"] = report.sites;
  json["injections"] = report.injections;
  json["detected"] = report.detected;
  json["benign"] = report.benign;
  json["crashed"] = report.crashed;
  json["fully_covered"] = report.fully_covered();
  Json escapes = Json::array();
  for (const fault::AuditEscape& escape : report.escapes) {
    Json entry = Json::object();
    entry["site"] = escape.site;
    entry["bit"] = escape.bit;
    entry["kind"] = vm::fault_kind_name(escape.kind);
    entry["origin"] = masm::origin_name(escape.origin);
    entry["op"] = masm::op_mnemonic(escape.op);
    entry["function"] = escape.function;
    entry["block"] = escape.block;
    entry["inst"] = escape.inst;
    escapes.push_back(entry);
  }
  json["escapes"] = escapes;

  if (report.prune.enabled) {
    Json prune = Json::object();
    prune["static_sites"] = report.prune.static_sites;
    prune["classes"] = report.prune.classes;
    prune["pilot_keys"] = report.prune.pilot_keys;
    prune["pilot_injections"] = report.prune.pilot_injections;
    prune["dead_probes"] = report.prune.dead_probes;
    prune["extrapolated_probes"] = report.prune.extrapolated_probes;
    prune["unmatched_probes"] = report.prune.unmatched_probes;
    prune["dead_fraction_static"] = report.prune.dead_fraction_static;
    prune["reduction"] = report.prune.reduction;
    json["prune"] = prune;
  }
  return json;
}

Json to_json(const fault::ComposeReport& report) {
  Json json = Json::object();
  json["sites"] = report.sites;
  json["golden_steps"] = report.golden_steps;
  json["injections"] = report.injections;
  json["detected"] = report.detected;
  json["benign"] = report.benign;
  json["crashed"] = report.crashed;
  json["sdc"] = report.sdc;
  Json sections = Json::array();
  for (const fault::SectionSummary& summary : report.sections) {
    Json entry = Json::object();
    entry["section"] = summary.section;
    entry["sha256"] = summary.code_sha256;
    if (!summary.key.empty()) entry["key"] = summary.key;
    entry["dynamic_sites"] = summary.dynamic_sites;
    entry["occurrences"] = summary.occurrences;
    entry["trials"] = summary.trials;
    // Gated on the stop rule so the (pinned) non-adaptive compose JSON
    // stays byte-identical to what it was before adaptive stopping.
    if (report.adaptive.enabled) {
      entry["planned"] = summary.planned;
      entry["stopped_early"] = summary.stopped_early;
    }
    Json outcomes = Json::object();
    outcomes["detected"] = summary.detected;
    outcomes["benign"] = summary.benign;
    outcomes["crashed"] = summary.crashed;
    outcomes["sdc"] = summary.sdc;
    entry["outcomes"] = outcomes;
    sections.push_back(entry);
  }
  json["sections"] = sections;
  if (report.adaptive.enabled) {
    Json adaptive = Json::object();
    adaptive["target_half_width"] = report.adaptive.target_half_width;
    adaptive["planned_trials"] = report.adaptive.planned_trials;
    adaptive["executed_trials"] = report.adaptive.executed_trials;
    adaptive["stopped_early"] = report.adaptive.stopped_early;
    Json half_widths = Json::object();
    half_widths["benign"] = report.adaptive.half_widths[0];
    half_widths["sdc"] = report.adaptive.half_widths[1];
    half_widths["detected"] = report.adaptive.half_widths[2];
    half_widths["crash"] = report.adaptive.half_widths[3];
    adaptive["half_widths"] = half_widths;
    adaptive["reduction"] = report.adaptive.reduction();
    json["adaptive"] = adaptive;
  }
  return json;
}

Json wallclock_json(const fault::ComposeReport& report) {
  Json json = Json::object();
  json["trials_executed"] = report.trials_executed;
  json["warm_sections"] = report.warm_sections;
  json["cold_sections"] = report.cold_sections;
  json["wall_seconds"] = report.wall_seconds;
  json["ckpt"] = ckpt_json(report.ckpt);
  return json;
}

Json wallclock_json(const fault::AuditReport& report) {
  Json json = Json::object();
  Json per_worker = Json::array();
  for (std::uint64_t count : report.sites_per_worker)
    per_worker.push_back(count);
  json["sites_per_worker"] = per_worker;
  json["wall_seconds"] = report.wall_seconds;
  json["ckpt"] = ckpt_json(report.ckpt);
  return json;
}

}  // namespace ferrum::telemetry
