// Assembly-level EDDI engine. This is the paper's contribution (FERRUM)
// plus, with SIMD and branch protection disabled, the plain
// HYBRID-ASSEMBLY-LEVEL-EDDI baseline's assembly stage.
//
// Protection mechanisms (paper Sec III-B):
//  * GENERAL-INSTRUCTIONS (read-modify-write ALU ops, FP ops): seed a
//    scratch register with the old destination, re-execute, xor-compare,
//    jne detect (Fig 4).
//  * SIMD-ENABLED-INSTRUCTIONS (non-RMW register writes: loads, moves,
//    movsx/movzx, lea, setcc, cvttsd2si, pop): capture original and
//    duplicate results into XMM lanes; every 4 sites, shift into YMM and
//    compare with one vpxor+vptest+jne (Fig 6). Disabled -> immediate
//    xor-compare per site.
//  * Comparison/branch clusters (cmp/test/ucomisd + jcc): duplicate the
//    flag producer, capture both conditions with setcc (deferred
//    detection, Fig 5), split both outgoing edges and assert the captured
//    conditions against the statically known edge value.
//  * Stores: load-back compare against the (already protected) source.
//  * Pops and register restores: compare against the stack copy that is
//    still in memory.
//  * Register scarcity: spare registers are discovered by a whole-function
//    usage scan (Fig 3 step 1); when none are spare, registers are
//    requisitioned around each protection site with verified push/pop
//    (Fig 7), and condition captures fall back to protection frame slots.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "masm/masm.h"

namespace ferrum::eddi {

/// One protectable site as offered to the selection machinery: ordinal is
/// a program-wide counter advanced in deterministic program order
/// (functions, blocks, instructions), so it is stable across runs and
/// identical between enumerate_protectable_sites and the protecting run.
/// `inst` is the site's first original instruction (the flag producer for
/// materialised-compare and branch clusters).
struct ProtectSiteRef {
  int ordinal = 0;
  int function = 0;
  int block = 0;
  int inst = 0;
  /// Materialised-compare or terminator branch cluster (two+ original
  /// instructions guarded by one selection decision).
  bool cluster = false;
};

/// Per-site selection callback: return true to protect the site. Called
/// exactly once per protectable site, in ordinal order.
using ProtectSelector = std::function<bool(const ProtectSiteRef&)>;

struct AsmProtectOptions {
  /// Batch duplicate/original results in XMM/YMM registers (FERRUM).
  /// Off = immediate xor+jne per site (HYBRID's AS_1 style).
  bool use_simd = true;
  /// Protect compare+branch clusters at assembly level (FERRUM). HYBRID
  /// turns this off because its IR stage already protects them.
  bool protect_branches = true;
  /// Sites accumulated per SIMD check flush (1, 2 or 4). 4 uses the
  /// YMM-combining sequence of the paper's Fig 6.
  int simd_batch = 4;
  /// Fraction of protectable sites actually protected, in [0, 1].
  /// 1.0 = full FERRUM; lower values trade coverage for overhead
  /// (selective-protection literature, e.g. SDCTune). Sites are selected
  /// deterministically by an error-diffusion counter, so the choice is
  /// stable across runs.
  double coverage_ratio = 1.0;
  /// Ignore the whole-function spare-register scan and force the
  /// scarce-register fallbacks everywhere: condition captures go to
  /// protection-frame slots and duplicates use dead/requisitioned
  /// registers (paper Sec III-B4). For the ablation of that design.
  bool force_stack_redundancy = false;
  /// Verify stored data by load-back comparison. The paper's fault model
  /// never corrupts store data (stores have no destination register), so
  /// this is off by default; pair with VmOptions::fault_store_data for
  /// the extended-model ablation.
  bool protect_store_data = false;
  /// When set, overrides coverage_ratio: consulted once per protectable
  /// site in ordinal order. Drives analysis-guided selective protection
  /// (pipeline::plan_selective); must be deterministic for reproducible
  /// builds.
  ProtectSelector selector;
};

struct AsmProtectStats {
  std::uint64_t skipped_sites = 0;    // left unprotected by coverage_ratio
  std::uint64_t simd_sites = 0;       // sites captured into XMM lanes
  std::uint64_t general_sites = 0;    // immediate xor-checked sites
  std::uint64_t store_checks = 0;
  std::uint64_t compare_clusters = 0; // protected cmp/jcc clusters
  std::uint64_t edge_blocks = 0;
  std::uint64_t flushes = 0;
  std::uint64_t requisitions = 0;     // push/pop register borrowings
  std::uint64_t functions_with_spare_gprs = 0;
  std::uint64_t functions_with_spare_xmms = 0;
  std::uint64_t functions_total = 0;
  std::uint64_t unprotected_sites = 0;  // should stay 0; audited by tests
  /// Wall-clock seconds spent inside the pass.
  double pass_seconds = 0.0;
};

/// Applies the protection in place. The program must follow the backend's
/// structural conventions (explicit terminator clusters, flags never live
/// across blocks).
AsmProtectStats protect_asm(masm::AsmProgram& program,
                            const AsmProtectOptions& options = {});

/// Enumerates the protectable sites protect_asm would offer to the
/// selector under `options`, in ordinal order, without modifying
/// `program` (runs the pass on a scratch copy with a recording selector;
/// ordinal assignment is independent of selection outcomes).
std::vector<ProtectSiteRef> enumerate_protectable_sites(
    const masm::AsmProgram& program, const AsmProtectOptions& options = {});

}  // namespace ferrum::eddi
