#include "eddi/ir_eddi.h"

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ferrum::eddi {

namespace {

using ir::BasicBlock;
using ir::CmpPred;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

bool is_sync_point(Opcode op) {
  return op == Opcode::kStore || op == Opcode::kCall ||
         op == Opcode::kCondBr || op == Opcode::kRet;
}

class IrEddiPass {
 public:
  IrEddiPass(Module& module, IrEddiMode mode) : module_(module), mode_(mode) {}

  IrEddiStats run() {
    // Declare the detector up front: creating it lazily while iterating
    // would invalidate the function list.
    module_.builtin_detect();
    std::vector<Function*> functions;
    for (const auto& fn : module_.functions()) {
      if (!fn->is_declaration()) functions.push_back(fn.get());
    }
    for (Function* fn : functions) protect_function(*fn);
    return stats_;
  }

 private:
  void protect_function(Function& fn) {
    shadow_.clear();
    detect_block_ = nullptr;
    fn_ = &fn;

    // Snapshot the block list: the pass appends continuation blocks.
    std::vector<BasicBlock*> original_blocks;
    for (const auto& block : fn.blocks()) original_blocks.push_back(block.get());

    for (BasicBlock* block : original_blocks) {
      if (mode_ == IrEddiMode::kClassic) {
        protect_block_classic(block);
      } else {
        protect_block_signature(block);
      }
    }
  }

  BasicBlock* detect_block() {
    if (detect_block_ == nullptr) {
      detect_block_ = fn_->add_block("eddi.detect");
      auto call =
          std::make_unique<Instruction>(Opcode::kCall, Type::void_type());
      call->callee = module_.builtin_detect();
      detect_block_->append(std::move(call));
      emit_default_return(detect_block_);
    }
    return detect_block_;
  }

  void emit_default_return(BasicBlock* block) {
    auto ret = std::make_unique<Instruction>(Opcode::kRet, Type::void_type());
    if (!fn_->return_type().is_void()) {
      if (fn_->return_type().is_float()) {
        ret->operands = {module_.const_f64(0.0)};
      } else {
        ret->operands = {module_.const_int(fn_->return_type(), 0)};
      }
    }
    block->append(std::move(ret));
  }

  /// Clones a duplicable instruction, routing operands through the shadow
  /// dataflow where a shadow exists.
  std::unique_ptr<Instruction> clone_with_shadows(const Instruction& inst) {
    auto dup = std::make_unique<Instruction>(inst.op(), inst.type());
    dup->pred = inst.pred;
    dup->alloca_elem = inst.alloca_elem;
    dup->alloca_count = inst.alloca_count;
    dup->callee = inst.callee;
    for (Value* operand : inst.operands) {
      auto it = shadow_.find(operand);
      dup->operands.push_back(it != shadow_.end() ? it->second : operand);
    }
    return dup;
  }

  /// Emits `ok = (a == b); condbr ok, cont, detect` at the end of `block`
  /// and returns the continuation block.
  BasicBlock* emit_check(BasicBlock* block, Value* a, Value* b) {
    auto cmp = std::make_unique<Instruction>(
        a->type().is_float() ? Opcode::kFCmp : Opcode::kICmp, Type::i1());
    cmp->pred = CmpPred::kEq;
    cmp->operands = {a, b};
    Instruction* ok = block->append(std::move(cmp));

    BasicBlock* cont = fn_->add_block(block->name() + ".cont");
    auto br = std::make_unique<Instruction>(Opcode::kCondBr, Type::void_type());
    br->operands = {ok};
    br->targets[0] = cont;
    br->targets[1] = detect_block();
    block->append(std::move(br));
    ++stats_.checks;
    return cont;
  }

  void protect_block_classic(BasicBlock* block) {
    std::vector<std::unique_ptr<Instruction>> originals =
        block->take_instructions();
    BasicBlock* cur = block;
    for (auto& inst_ptr : originals) {
      Instruction* inst = inst_ptr.get();
      if (is_sync_point(inst->op())) {
        // Check every shadowed operand before the value escapes.
        for (Value* operand : inst->operands) {
          auto it = shadow_.find(operand);
          if (it == shadow_.end()) continue;
          cur = emit_check(cur, operand, it->second);
        }
        cur->append(std::move(inst_ptr));
        continue;
      }
      cur->append(std::move(inst_ptr));
      if (ir::is_duplicable(inst->op())) {
        Instruction* dup = cur->append(clone_with_shadows(*inst));
        shadow_[inst] = dup;
        ++stats_.duplicated;
      }
    }
  }

  void protect_block_signature(BasicBlock* block) {
    std::vector<std::unique_ptr<Instruction>> originals =
        block->take_instructions();

    // Does the block end with [icmp/fcmp, condbr-on-it]? Then the compare
    // is branch-feeding and gets edge assertions instead of a value check.
    const std::size_t count = originals.size();
    bool fused_tail = false;
    Instruction* tail_cmp = nullptr;
    if (count >= 2) {
      Instruction* last = originals[count - 1].get();
      Instruction* prev = originals[count - 2].get();
      if (last->op() == Opcode::kCondBr && !last->operands.empty() &&
          last->operands[0] == prev &&
          (prev->op() == Opcode::kICmp || prev->op() == Opcode::kFCmp)) {
        fused_tail = true;
        tail_cmp = prev;
      }
    }

    BasicBlock* cur = block;
    for (std::size_t i = 0; i < count; ++i) {
      Instruction* inst = originals[i].get();
      const bool is_tail_cmp = fused_tail && i == count - 2;
      const bool is_tail_br = fused_tail && i == count - 1;

      if (is_tail_br) {
        // Rewrite the branch through per-edge assertion blocks.
        Value* shadow = shadow_[tail_cmp];
        BasicBlock* true_tramp =
            make_edge_assertion(shadow, true, inst->targets[0]);
        BasicBlock* false_tramp =
            make_edge_assertion(shadow, false, inst->targets[1]);
        inst->targets[0] = true_tramp;
        inst->targets[1] = false_tramp;
        cur->append(std::move(originals[i]));
        continue;
      }

      cur->append(std::move(originals[i]));
      if (inst->op() == Opcode::kICmp || inst->op() == Opcode::kFCmp) {
        Instruction* dup = cur->append(clone_with_shadows(*inst));
        shadow_[inst] = dup;
        ++stats_.duplicated;
        if (!is_tail_cmp) {
          // Standalone (materialised) comparison: immediate value check.
          cur = emit_check(cur, inst, dup);
        }
      }
    }
  }

  /// Builds `tramp: ok = (shadow == expected); condbr ok, target, detect`.
  BasicBlock* make_edge_assertion(Value* shadow, bool expected,
                                  BasicBlock* target) {
    BasicBlock* tramp = fn_->add_block("edge.assert");
    auto cmp = std::make_unique<Instruction>(Opcode::kICmp, Type::i1());
    cmp->pred = CmpPred::kEq;
    cmp->operands = {shadow, module_.const_i1(expected)};
    Instruction* ok = tramp->append(std::move(cmp));
    auto br = std::make_unique<Instruction>(Opcode::kCondBr, Type::void_type());
    br->operands = {ok};
    br->targets[0] = target;
    br->targets[1] = detect_block();
    tramp->append(std::move(br));
    ++stats_.edge_assertions;
    return tramp;
  }

  Module& module_;
  IrEddiMode mode_;
  Function* fn_ = nullptr;
  BasicBlock* detect_block_ = nullptr;
  std::unordered_map<Value*, Value*> shadow_;
  IrEddiStats stats_;
};

}  // namespace

IrEddiStats apply_ir_eddi(ir::Module& module, IrEddiMode mode) {
  const auto start = std::chrono::steady_clock::now();
  IrEddiStats stats = IrEddiPass(module, mode).run();
  stats.pass_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace ferrum::eddi
