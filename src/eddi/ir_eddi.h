// IR-level instruction duplication (the paper's IR-LEVEL-EDDI baseline)
// and the signature/edge-assertion variant the HYBRID baseline uses for
// comparisons and branches.
#pragma once

#include <cstdint>

#include "ir/ir.h"

namespace ferrum::eddi {

enum class IrEddiMode : std::uint8_t {
  /// Classic EDDI (Oh et al. / SWIFT-style): duplicate every duplicable
  /// instruction into a shadow dataflow; before each synchronisation point
  /// (store, conditional branch, call, return) compare the shadowed
  /// operands and branch to the detector on mismatch. Branch *direction*
  /// and backend-materialised instructions remain unprotected — this is
  /// the coverage gap the paper measures (Fig 10).
  kClassic,
  /// Signature-style protection of comparisons and branches only [13]:
  /// every icmp/fcmp is duplicated; compares feeding a conditional branch
  /// get per-edge assertion blocks (the duplicated condition is checked
  /// against the statically known edge value on both outgoing edges);
  /// standalone compares get an immediate value check. Used as the IR
  /// stage of HYBRID-ASSEMBLY-LEVEL-EDDI.
  kSignatureOnly,
};

struct IrEddiStats {
  std::uint64_t duplicated = 0;
  std::uint64_t checks = 0;
  std::uint64_t edge_assertions = 0;
  /// Wall-clock seconds spent inside the pass.
  double pass_seconds = 0.0;
};

/// Applies the pass in place. The module stays verifier-clean and
/// semantics-preserving (checks never fire without a fault).
IrEddiStats apply_ir_eddi(ir::Module& module, IrEddiMode mode);

}  // namespace ferrum::eddi
