#include "eddi/ferrum.h"

#include <chrono>

namespace ferrum::eddi {

FerrumReport apply_ferrum(masm::AsmProgram& program,
                          const FerrumOptions& options) {
  FerrumReport report;
  report.static_instructions_before = program.inst_count();
  const auto start = std::chrono::steady_clock::now();
  report.stats = protect_asm(program, options.asm_options);
  const auto end = std::chrono::steady_clock::now();
  report.seconds = std::chrono::duration<double>(end - start).count();
  report.static_instructions_after = program.inst_count();
  return report;
}

}  // namespace ferrum::eddi
