// FERRUM public entry point: assembly-level EDDI with SIMD-batched
// checking, deferred flag detection and stack-level register requisition
// (the paper's contribution, Sec III).
#pragma once

#include <cstddef>

#include "eddi/asm_protect.h"
#include "masm/masm.h"

namespace ferrum::eddi {

struct FerrumOptions {
  AsmProtectOptions asm_options;  // defaults are the full FERRUM config
};

struct FerrumReport {
  AsmProtectStats stats;
  /// Wall-clock time the transformation took (paper Sec IV-B3).
  double seconds = 0.0;
  std::size_t static_instructions_before = 0;
  std::size_t static_instructions_after = 0;
};

/// Protects the program in place and reports transformation statistics.
FerrumReport apply_ferrum(masm::AsmProgram& program,
                          const FerrumOptions& options = {});

}  // namespace ferrum::eddi
