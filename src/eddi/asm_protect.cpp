#include "eddi/asm_protect.h"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "masm/cfg.h"

namespace ferrum::eddi {

namespace {

using masm::AsmBlock;
using masm::AsmFunction;
using masm::AsmInst;
using masm::AsmProgram;
using masm::Cond;
using masm::Gpr;
using masm::InstOrigin;
using masm::LiveSet;
using masm::MemRef;
using masm::Op;
using masm::Operand;

constexpr const char* kDetectLabel = "ferrum.detect";

bool is_flag_producer(Op op) {
  return op == Op::kCmp || op == Op::kTest || op == Op::kUcomisd;
}

class FunctionProtector {
 public:
  FunctionProtector(AsmFunction& fn, int fidx,
                    const AsmProtectOptions& options, AsmProtectStats& stats,
                    int& ordinal)
      : fn_(fn), fidx_(fidx), options_(options), stats_(stats),
        ordinal_(ordinal) {}

  void run() {
    ++stats_.functions_total;
    analyze();
    const std::size_t original_blocks = fn_.blocks.size();
    for (std::size_t b = 0; b < original_blocks; ++b) rewrite_block(b);
    // Detector block + edge trampolines are appended by the rewrites; add
    // the detector last if any check referenced it.
    if (needs_detect_) {
      AsmBlock detect;
      detect.label = kDetectLabel;
      detect.insts.push_back(prot({Op::kDetectTrap, {}}));
      fn_.blocks.push_back(std::move(detect));
    }
    patch_frame();
  }

 private:
  [[noreturn]] static void bug(const std::string& message) {
    throw std::runtime_error("asm_protect: " + message);
  }

  static AsmInst prot(AsmInst inst) {
    inst.origin = InstOrigin::kProtection;
    return inst;
  }

  // ------------------------------------------------------------ analysis --

  void analyze() {
    // Per-instruction live-after sets, computed on the unmodified code.
    masm::Liveness liveness(fn_);
    lives_.resize(fn_.blocks.size());
    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      const AsmBlock& block = fn_.blocks[b];
      lives_[b].resize(block.insts.size());
      LiveSet live = liveness.live_out(static_cast<int>(b));
      for (int i = static_cast<int>(block.insts.size()) - 1; i >= 0; --i) {
        lives_[b][static_cast<std::size_t>(i)] = live;
        const masm::UseDef ud = masm::use_def_of(block.insts[i]);
        live = (live & ~ud.def) | ud.use;
      }
    }

    // Whole-function register scan (paper Fig 3, step 1). ABI clobber
    // effects of `call` are excluded: a register only a call clobbers is
    // still spare for protection values that never live across a call
    // (condition captures stay within one terminator cluster; SIMD
    // batches are flushed before every call).
    LiveSet used = 0;
    for (const AsmBlock& block : fn_.blocks) {
      for (const AsmInst& inst : block.insts) {
        if (inst.op == Op::kCall) continue;
        const masm::UseDef ud = masm::use_def_of(inst);
        used |= ud.use | ud.def;
      }
    }
    // Note: `ret` reads the callee-saved registers and the return value,
    // so callee-saved registers this function does not itself save can
    // never be spare — exactly the guarantee the protection needs.
    std::vector<Gpr> spare_gprs;
    for (int i = masm::kGprCount - 1; i >= 0; --i) {
      const Gpr reg = static_cast<Gpr>(i);
      if (reg == Gpr::kRsp || reg == Gpr::kRbp) continue;
      if (!masm::has_gpr(used, reg)) spare_gprs.push_back(reg);
    }
    std::vector<int> spare_xmms;
    for (int i = masm::kXmmCount - 1; i >= 0; --i) {
      if (!masm::has_xmm(used, i)) spare_xmms.push_back(i);
    }

    if (options_.force_stack_redundancy) {
      spare_gprs.clear();
      spare_xmms.clear();
    }
    // Condition-capture locations: two spare byte registers, else two
    // protection-frame slots.
    if (spare_gprs.size() >= 2) {
      flag_regs_spare_ = true;
      flag_reg_[0] = spare_gprs[0];
      flag_reg_[1] = spare_gprs[1];
      ++stats_.functions_with_spare_gprs;
    } else {
      flag_regs_spare_ = false;
      flag_slot_[0] = alloc_prot_slot();
      flag_slot_[1] = alloc_prot_slot();
    }
    // Scratch register for duplicates, when a third spare exists; sites
    // fall back to liveness-dead registers, then to requisition.
    dup_reg_ = spare_gprs.size() >= 3 ? spare_gprs[2] : Gpr::kNone;

    // SIMD batch registers (4 spare XMMs, paper Sec III-B1).
    simd_on_ = options_.use_simd && spare_xmms.size() >= 4;
    if (simd_on_) {
      for (int i = 0; i < 4; ++i) batch_xmm_[i] = spare_xmms[i];
      ++stats_.functions_with_spare_xmms;
    }
    // Optional 5th spare XMM for FP duplication.
    fp_dup_xmm_ = spare_xmms.size() >= 5 ? spare_xmms[4]
                  : (!simd_on_ && !spare_xmms.empty() ? spare_xmms[0] : -1);
  }

  /// Allocates one 8-byte protection-frame slot (rbp-relative), extending
  /// the function frame; the prologue's `sub` is patched in patch_frame().
  std::int64_t alloc_prot_slot() {
    if (!frame_found_) {
      // Find the prologue frame sub: `sub $imm, %rsp` in block 0.
      for (AsmInst& inst : fn_.blocks[0].insts) {
        if (inst.op == Op::kSub && inst.ops[1].is_reg() &&
            inst.ops[1].reg == Gpr::kRsp && inst.ops[0].is_imm()) {
          orig_frame_ = inst.ops[0].imm;
          frame_found_ = true;
          break;
        }
      }
      if (!frame_found_) bug("prologue frame sub not found");
    }
    prot_slots_ += 1;
    return -(orig_frame_ + 8 * prot_slots_);
  }

  void patch_frame() {
    if (prot_slots_ == 0) return;
    // Patch every frame sub in the prologue: the protection pass itself
    // duplicates the original `sub $imm, %rsp` (it is an RMW ALU site),
    // and both copies must agree on the extended frame size.
    bool patched = false;
    for (AsmInst& inst : fn_.blocks[0].insts) {
      // The duplicate of the frame sub targets the scratch register, so
      // match on the opcode + original immediate rather than on %rsp.
      if (inst.op == Op::kSub && inst.ops[0].is_imm() &&
          inst.ops[0].imm == orig_frame_ && inst.ops[1].is_reg()) {
        const std::int64_t total = orig_frame_ + 8 * prot_slots_;
        inst.ops[0].imm = (total + 15) & ~std::int64_t{15};
        patched = true;
      }
    }
    if (!patched) bug("prologue frame sub disappeared");
  }

  Operand rbp_slot(std::int64_t disp, int width) const {
    MemRef mem;
    mem.base = Gpr::kRbp;
    mem.disp = disp;
    return Operand::make_mem(mem, width);
  }

  // --------------------------------------------------- scratch registers --

  /// A GPR that is architecturally dead around original instruction
  /// (block, index) and disjoint from that instruction's operands, the
  /// frame registers, the condition-capture registers and `exclude`.
  Gpr pick_dead_gpr(std::size_t block, std::size_t index,
                    LiveSet exclude) const {
    LiveSet busy = lives_[block][index] | exclude;
    busy |= masm::gpr_bit(Gpr::kRsp) | masm::gpr_bit(Gpr::kRbp);
    if (flag_regs_spare_) {
      busy |= masm::gpr_bit(flag_reg_[0]) | masm::gpr_bit(flag_reg_[1]);
    }
    // Prefer high registers, matching the paper's examples (r10, r11, ...).
    static constexpr Gpr kOrder[] = {
        Gpr::kR15, Gpr::kR14, Gpr::kR13, Gpr::kR12, Gpr::kR11, Gpr::kR10,
        Gpr::kR9,  Gpr::kR8,  Gpr::kRbx, Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
        Gpr::kRcx, Gpr::kRax};
    for (Gpr reg : kOrder) {
      if (!masm::has_gpr(busy, reg)) return reg;
    }
    return Gpr::kNone;
  }

  int pick_dead_xmm(std::size_t block, std::size_t index,
                    LiveSet exclude) const {
    LiveSet busy = lives_[block][index] | exclude;
    if (simd_on_) {
      for (int reg : batch_xmm_) busy |= masm::xmm_bit(reg);
    }
    for (int reg = masm::kXmmCount - 1; reg >= 0; --reg) {
      if (!masm::has_xmm(busy, reg)) return reg;
    }
    return -1;
  }

  static LiveSet operand_regs(const AsmInst& inst) {
    const masm::UseDef ud = masm::use_def_of(inst);
    return ud.use | ud.def;
  }

  // ------------------------------------------------------------- helpers --

  void emit(std::vector<AsmInst>& out, AsmInst inst) {
    out.push_back(prot(std::move(inst)));
  }

  /// Per-site protection decision, consulted once per protectable site in
  /// program order. The ordinal advances unconditionally, so site
  /// identities are independent of what any selector decides. Without a
  /// selector, deterministic error-diffusion on coverage_ratio protects
  /// the requested fraction of sites, spread evenly.
  bool select_site(std::size_t bidx, std::size_t i, bool cluster) {
    ProtectSiteRef ref;
    ref.ordinal = ordinal_++;
    ref.function = fidx_;
    ref.block = static_cast<int>(bidx);
    ref.inst = static_cast<int>(i);
    ref.cluster = cluster;
    bool keep = true;
    if (options_.selector) {
      keep = options_.selector(ref);
    } else if (options_.coverage_ratio < 1.0) {
      selection_accum_ += options_.coverage_ratio;
      keep = selection_accum_ >= 1.0;
      if (keep) selection_accum_ -= 1.0;
    }
    if (!keep) ++stats_.skipped_sites;
    return keep;
  }

  void emit_jne_detect(std::vector<AsmInst>& out) {
    needs_detect_ = true;
    emit(out, {AsmInst(Op::kJcc, Cond::kNe,
                       {Operand::make_label(kDetectLabel)})});
  }

  /// Requisitions `victim` around a protection window: push with verified
  /// store (paper Fig 7, hardened so the push/pop themselves are covered).
  void requisition_begin(std::vector<AsmInst>& out, Gpr victim) {
    emit(out, {Op::kPush, {Operand::make_reg(victim)}});
    if (options_.protect_store_data) {
      MemRef top;
      top.base = Gpr::kRsp;
      emit(out, {Op::kCmp, {Operand::make_reg(victim),
                            Operand::make_mem(top, 8)}});
      emit_jne_detect(out);
    }
    ++stats_.requisitions;
  }

  void requisition_end(std::vector<AsmInst>& out, Gpr victim) {
    emit(out, {Op::kPop, {Operand::make_reg(victim)}});
    MemRef below;
    below.base = Gpr::kRsp;
    below.disp = -8;
    emit(out, {Op::kCmp, {Operand::make_reg(victim),
                          Operand::make_mem(below, 8)}});
    emit_jne_detect(out);
  }

  struct Scratch {
    Gpr reg = Gpr::kNone;
    bool requisitioned = false;
  };

  /// Obtains a scratch GPR at a site: function-spare, else liveness-dead,
  /// else requisitioned (caller must call release_scratch).
  Scratch acquire_scratch(std::vector<AsmInst>& out, std::size_t block,
                          std::size_t index, LiveSet exclude) {
    if (dup_reg_ != Gpr::kNone && !masm::has_gpr(exclude, dup_reg_)) {
      return {dup_reg_, false};
    }
    const Gpr dead = pick_dead_gpr(block, index, exclude);
    if (dead != Gpr::kNone) return {dead, false};
    // Requisition a victim not touched by the instruction.
    for (Gpr victim : {Gpr::kR15, Gpr::kR14, Gpr::kR13, Gpr::kR12,
                       Gpr::kRbx, Gpr::kRax}) {
      if (!masm::has_gpr(exclude, victim)) {
        requisition_begin(out, victim);
        return {victim, true};
      }
    }
    bug("no requisitionable register");
  }

  void release_scratch(std::vector<AsmInst>& out, const Scratch& scratch) {
    if (scratch.requisitioned) requisition_end(out, scratch.reg);
  }

  // ------------------------------------------------------- SIMD batching --

  /// Captures (original value, duplicate value) as the next batch lane.
  /// `orig` and `dup` must be 64-bit-readable GPR operands.
  void capture_pair(std::vector<AsmInst>& out, const Operand& orig,
                    const Operand& dup) {
    const int pair = batch_count_ < 2 ? 0 : 2;  // A1/B1 vs A2/B2
    const int lane = batch_count_ % 2;
    const int xa = batch_xmm_[pair];
    const int xb = batch_xmm_[pair + 1];
    if (lane == 0) {
      emit(out, {Op::kMovq, {orig, Operand::make_xmm(xa)}});
      emit(out, {Op::kMovq, {dup, Operand::make_xmm(xb)}});
    } else {
      emit(out, {Op::kPinsrq, {Operand::make_imm(1, 1), orig,
                               Operand::make_xmm(xa)}});
      emit(out, {Op::kPinsrq, {Operand::make_imm(1, 1), dup,
                               Operand::make_xmm(xb)}});
    }
    ++batch_count_;
    ++stats_.simd_sites;
    if (batch_count_ >= options_.simd_batch || batch_count_ >= 4) {
      flush_batch(out);
    }
  }

  /// Emits the batched comparison (paper Fig 6) and resets the batch.
  void flush_batch(std::vector<AsmInst>& out) {
    if (batch_count_ == 0) return;
    const int xa1 = batch_xmm_[0], xb1 = batch_xmm_[1];
    const int xa2 = batch_xmm_[2], xb2 = batch_xmm_[3];
    if (batch_count_ > 2) {
      emit(out, {Op::kVinserti128, {Operand::make_imm(1, 1),
                                    Operand::make_xmm(xa2),
                                    Operand::make_ymm(xa1)}});
      emit(out, {Op::kVinserti128, {Operand::make_imm(1, 1),
                                    Operand::make_xmm(xb2),
                                    Operand::make_ymm(xb1)}});
      emit(out, {Op::kVpxor, {Operand::make_ymm(xa1), Operand::make_ymm(xb1),
                              Operand::make_ymm(xb1)}});
      emit(out, {Op::kVptest, {Operand::make_ymm(xb1),
                               Operand::make_ymm(xb1)}});
    } else {
      emit(out, {Op::kVpxor, {Operand::make_xmm(xa1), Operand::make_xmm(xb1),
                              Operand::make_xmm(xb1)}});
      emit(out, {Op::kVptest, {Operand::make_xmm(xb1),
                               Operand::make_xmm(xb1)}});
    }
    emit_jne_detect(out);
    batch_count_ = 0;
    ++stats_.flushes;
  }

  // ------------------------------------------------------------ rewrites --

  void rewrite_block(std::size_t bidx) {
    // Build into a local vector: protection may append trampoline blocks,
    // which reallocates fn_.blocks and would invalidate references into it.
    std::vector<AsmInst> orig = std::move(fn_.blocks[bidx].insts);
    std::vector<AsmInst> out;
    out.reserve(orig.size() * 3);
    batch_count_ = 0;

    // Locate the terminator cluster: trailing jmp/ret/jcc run, plus the
    // flag producer feeding a jcc.
    std::size_t cluster = orig.size();
    while (cluster > 0) {
      const Op op = orig[cluster - 1].op;
      if (op == Op::kJmp || op == Op::kRet || op == Op::kJcc) {
        --cluster;
      } else {
        break;
      }
    }
    if (cluster < orig.size() && orig[cluster].op == Op::kJcc &&
        cluster > 0 && is_flag_producer(orig[cluster - 1].op)) {
      --cluster;
    }

    for (std::size_t i = 0; i < cluster; ++i) {
      // Materialised comparison: flag producer + setcc pair.
      if (is_flag_producer(orig[i].op) && i + 1 < cluster &&
          orig[i + 1].op == Op::kSetcc) {
        if (select_site(bidx, i, /*cluster=*/true)) {
          protect_materialized_compare(out, orig, bidx, i);
        } else {
          out.push_back(orig[i]);
          out.push_back(orig[i + 1]);
        }
        ++i;  // consumed the setcc as well
        continue;
      }
      if (protectable_body_site(orig[i]) &&
          !select_site(bidx, i, /*cluster=*/false)) {
        out.push_back(orig[i]);
        continue;
      }
      protect_body_inst(out, orig, bidx, i);
    }
    flush_batch(out);

    // Terminator cluster.
    if (cluster < orig.size() && is_flag_producer(orig[cluster].op) &&
        cluster + 1 < orig.size() && orig[cluster + 1].op == Op::kJcc &&
        options_.protect_branches &&
        select_site(bidx, cluster, /*cluster=*/true)) {
      protect_branch_cluster(out, orig, bidx, cluster);
    } else {
      for (std::size_t i = cluster; i < orig.size(); ++i) {
        out.push_back(orig[i]);
      }
    }
    fn_.blocks[bidx].insts = std::move(out);
  }

  /// cmp/test/ucomisd + setcc: duplicate both, compare the two captured
  /// bytes (flags are dead immediately after a materialised compare).
  void protect_materialized_compare(std::vector<AsmInst>& out,
                                    const std::vector<AsmInst>& orig,
                                    std::size_t bidx, std::size_t i) {
    const AsmInst& producer = orig[i];
    const AsmInst& setcc = orig[i + 1];
    out.push_back(producer);
    out.push_back(setcc);
    if (!options_.protect_branches) {
      // HYBRID: the IR stage already duplicated this comparison.
      return;
    }
    const LiveSet exclude =
        operand_regs(producer) | operand_regs(setcc);
    Scratch scratch = acquire_scratch(out, bidx, i + 1, exclude);
    emit(out, producer);  // duplicate flag computation
    emit(out, {AsmInst(Op::kSetcc, setcc.cc,
                       {Operand::make_reg(scratch.reg, 1)})});
    // scratch ^= original captured byte; mismatch -> detect.
    emit(out, {Op::kXor, {Operand::make_reg(setcc.ops[0].reg, 1),
                          Operand::make_reg(scratch.reg, 1)}});
    emit_jne_detect(out);
    release_scratch(out, scratch);
    ++stats_.general_sites;
  }

  void protect_body_inst(std::vector<AsmInst>& out,
                         const std::vector<AsmInst>& orig, std::size_t bidx,
                         std::size_t i) {
    const AsmInst& inst = orig[i];
    switch (inst.op) {
      case Op::kCall:
      case Op::kDetectTrap:
        flush_batch(out);  // spare XMM batch registers are caller-saved
        out.push_back(inst);
        return;
      case Op::kJmp:
      case Op::kRet:
      case Op::kJcc:
        // Stray control flow in the body (should not happen).
        out.push_back(inst);
        ++stats_.unprotected_sites;
        return;
      case Op::kPush:
        out.push_back(inst);
        if (options_.protect_store_data) {
          protect_store_check(out, inst.ops[0], rsp_mem(0, 8));
        }
        return;
      case Op::kPop: {
        out.push_back(inst);
        // The popped value still sits below the stack pointer: verify the
        // register write against that copy (a GPR-write site, so this is
        // active regardless of the store-data option).
        emit(out, {Op::kCmp, {inst.ops[0], rsp_mem(-8, 8)}});
        emit_jne_detect(out);
        ++stats_.general_sites;
        return;
      }
      case Op::kMov:
      case Op::kMovsx:
      case Op::kMovzx:
      case Op::kLea:
        if (inst.ops[1].is_mem()) {
          out.push_back(inst);
          if (options_.protect_store_data) {
            protect_store_check(out, inst.ops[0],
                                Operand::make_mem(inst.ops[1].mem,
                                                  inst.ops[1].width));
          }
          return;
        }
        protect_gpr_write(out, orig, bidx, i);
        return;
      case Op::kCvttsd2si:
        protect_gpr_write(out, orig, bidx, i);
        return;
      case Op::kAdd: case Op::kSub: case Op::kImul: case Op::kAnd:
      case Op::kOr: case Op::kXor: case Op::kShl: case Op::kSar:
      case Op::kIdiv: case Op::kIrem:
        protect_rmw_alu(out, orig, bidx, i);
        return;
      case Op::kMovsd:
      case Op::kMovq:
        protect_sse_move(out, orig, bidx, i);
        return;
      case Op::kAddsd: case Op::kSubsd: case Op::kMulsd: case Op::kDivsd:
        protect_fp_rmw(out, orig, bidx, i);
        return;
      case Op::kSqrtsd:
      case Op::kCvtsi2sd:
        protect_fp_nonrmw(out, orig, bidx, i);
        return;
      case Op::kCmp:
      case Op::kTest:
      case Op::kUcomisd:
        // Flag producer not followed by setcc or jcc: flags are dead, the
        // instruction has no architectural effect worth protecting.
        out.push_back(inst);
        return;
      case Op::kSetcc:
        // setcc without its producer immediately before it (not emitted by
        // our backend); leave unprotected but visible in the audit.
        out.push_back(inst);
        ++stats_.unprotected_sites;
        return;
      default:
        out.push_back(inst);
        ++stats_.unprotected_sites;
        return;
    }
  }

  /// True for body instructions protect_body_inst would wrap with checks
  /// (the sites coverage_ratio selection applies to).
  static bool protectable_body_site(const AsmInst& inst) {
    switch (inst.op) {
      case Op::kCall:
      case Op::kDetectTrap:
      case Op::kJmp:
      case Op::kRet:
      case Op::kJcc:
      case Op::kCmp:
      case Op::kTest:
      case Op::kUcomisd:
        return false;  // handled structurally, not per-site
      default:
        return true;
    }
  }

  static Operand rsp_mem(std::int64_t disp, int width) {
    MemRef mem;
    mem.base = Gpr::kRsp;
    mem.disp = disp;
    return Operand::make_mem(mem, width);
  }

  /// Store verification: compare the written cell against the source.
  void protect_store_check(std::vector<AsmInst>& out, const Operand& src,
                           const Operand& cell) {
    emit(out, {Op::kCmp, {src, cell}});
    emit_jne_detect(out);
    ++stats_.store_checks;
  }

  /// Non-RMW GPR write: duplicate into a scratch (loads duplicate straight
  /// from memory), then SIMD-capture or xor-check.
  void protect_gpr_write(std::vector<AsmInst>& out,
                         const std::vector<AsmInst>& orig, std::size_t bidx,
                         std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& dst = inst.ops[1];
    const int dst_width = dst.width;

    // Fast path (paper Fig 6): a 64-bit load whose duplicate can execute
    // directly into the XMM lane.
    if (simd_on_ && inst.op == Op::kMov && inst.ops[0].is_mem() &&
        inst.ops[0].width == 8) {
      out.push_back(inst);
      capture_load_direct(out, inst.ops[0], dst);
      return;
    }

    out.push_back(inst);
    const LiveSet exclude = operand_regs(inst);
    Scratch scratch = acquire_scratch(out, bidx, i, exclude);
    // Re-execute with the scratch register as destination.
    AsmInst dup = inst;
    dup.ops[1].reg = scratch.reg;
    emit(out, dup);
    finish_value_check(out, Operand::make_reg(dst.reg, 8),
                       Operand::make_reg(scratch.reg, 8), dst_width);
    release_scratch(out, scratch);
  }

  /// Fig 6 pattern: duplicate load goes straight into the duplicate lane;
  /// the original result is captured from its register.
  void capture_load_direct(std::vector<AsmInst>& out, const Operand& mem,
                           const Operand& dst) {
    const int pair = batch_count_ < 2 ? 0 : 2;
    const int lane = batch_count_ % 2;
    const int xa = batch_xmm_[pair];
    const int xb = batch_xmm_[pair + 1];
    const Operand orig_reg = Operand::make_reg(dst.reg, 8);
    if (lane == 0) {
      emit(out, {Op::kMovq, {mem, Operand::make_xmm(xb)}});
      emit(out, {Op::kMovq, {orig_reg, Operand::make_xmm(xa)}});
    } else {
      emit(out, {Op::kPinsrq, {Operand::make_imm(1, 1), mem,
                               Operand::make_xmm(xb)}});
      emit(out, {Op::kPinsrq, {Operand::make_imm(1, 1), orig_reg,
                               Operand::make_xmm(xa)}});
    }
    ++batch_count_;
    ++stats_.simd_sites;
    if (batch_count_ >= options_.simd_batch || batch_count_ >= 4) {
      flush_batch(out);
    }
  }

  /// Compares a duplicated 64-bit value with the original: SIMD capture in
  /// FERRUM mode, immediate xor+jne otherwise. Sub-64-bit results are
  /// compared at full width — 32-bit writes zero-extend and 8-bit
  /// duplicates merge into scratch just like the original merged, so the
  /// comparison widths line up only for 4/8-byte results; byte results are
  /// xor-checked at byte width.
  void finish_value_check(std::vector<AsmInst>& out, const Operand& orig_reg,
                          const Operand& dup_reg, int width) {
    if (width == 1) {
      // Byte result (setcc-like): immediate byte xor.
      emit(out, {Op::kXor, {Operand::make_reg(orig_reg.reg, 1),
                            Operand::make_reg(dup_reg.reg, 1)}});
      emit_jne_detect(out);
      ++stats_.general_sites;
      return;
    }
    // 32/64-bit results compare at full width (32-bit writes zero-extend
    // identically in the original and the duplicate).
    if (simd_on_) {
      capture_pair(out, orig_reg, dup_reg);
    } else {
      emit(out, {Op::kXor, {orig_reg, dup_reg}});
      emit_jne_detect(out);
      ++stats_.general_sites;
    }
  }

  /// RMW integer op (Fig 4 flavour): seed scratch with the old
  /// destination, re-execute onto the scratch, immediate xor check.
  void protect_rmw_alu(std::vector<AsmInst>& out,
                       const std::vector<AsmInst>& orig, std::size_t bidx,
                       std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& dst = inst.ops[1];
    if (!dst.is_reg()) {  // ALU to memory is never emitted by the backend
      out.push_back(inst);
      ++stats_.unprotected_sites;
      return;
    }
    const LiveSet exclude = operand_regs(inst);
    Scratch scratch = acquire_scratch(out, bidx, i, exclude);
    const int width = dst.width;
    // Seed with the pre-instruction destination value.
    emit(out, {Op::kMov, {Operand::make_reg(dst.reg, width),
                          Operand::make_reg(scratch.reg, width)}});
    out.push_back(inst);
    AsmInst dup = inst;
    dup.ops[1].reg = scratch.reg;
    emit(out, dup);
    emit(out, {Op::kXor, {Operand::make_reg(dst.reg, width),
                          Operand::make_reg(scratch.reg, width)}});
    emit_jne_detect(out);
    release_scratch(out, scratch);
    ++stats_.general_sites;
  }

  /// movsd / movq with at least one XMM side.
  void protect_sse_move(std::vector<AsmInst>& out,
                        const std::vector<AsmInst>& orig, std::size_t bidx,
                        std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& src = inst.ops[0];
    const Operand& dst = inst.ops[1];

    if (dst.is_mem()) {
      // FP store: load-back compare through a scratch GPR.
      out.push_back(inst);
      if (options_.protect_store_data) {
        const LiveSet exclude = operand_regs(inst);
        Scratch scratch = acquire_scratch(out, bidx, i, exclude);
        emit(out, {Op::kMovq, {Operand::make_xmm(src.xmm),
                               Operand::make_reg(scratch.reg, 8)}});
        protect_store_check(out, Operand::make_reg(scratch.reg, 8),
                            Operand::make_mem(dst.mem, 8));
        release_scratch(out, scratch);
      }
      return;
    }
    if (dst.is_reg()) {
      // movq xmm -> gpr: plain non-RMW GPR write.
      protect_gpr_write(out, orig, bidx, i);
      return;
    }
    // Destination is XMM: duplicate bits through scratch GPRs.
    out.push_back(inst);
    const LiveSet exclude = operand_regs(inst);
    Scratch s1 = acquire_scratch(out, bidx, i, exclude);
    Scratch s2 = acquire_scratch(out, bidx, i,
                                 exclude | masm::gpr_bit(s1.reg));
    // Duplicate of the source value.
    if (src.is_mem()) {
      emit(out, {Op::kMov, {Operand::make_mem(src.mem, 8),
                            Operand::make_reg(s1.reg, 8)}});
    } else if (src.is_xmm()) {
      emit(out, {Op::kMovq, {Operand::make_xmm(src.xmm),
                             Operand::make_reg(s1.reg, 8)}});
    } else {
      emit(out, {Op::kMov, {src, Operand::make_reg(s1.reg, 8)}});
    }
    // Original result bits.
    emit(out, {Op::kMovq, {Operand::make_xmm(dst.xmm),
                           Operand::make_reg(s2.reg, 8)}});
    emit(out, {Op::kXor, {Operand::make_reg(s1.reg, 8),
                          Operand::make_reg(s2.reg, 8)}});
    emit_jne_detect(out);
    release_scratch(out, s2);
    release_scratch(out, s1);
    ++stats_.general_sites;
  }

  /// addsd-family: seed an XMM scratch with the old destination,
  /// re-execute, compare bit patterns through GPRs.
  void protect_fp_rmw(std::vector<AsmInst>& out,
                      const std::vector<AsmInst>& orig, std::size_t bidx,
                      std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& dst = inst.ops[1];
    const LiveSet exclude = operand_regs(inst);

    int fp_scratch = fp_dup_xmm_;
    std::int64_t save_slot = 0;
    bool saved = false;
    if (fp_scratch < 0 || masm::has_xmm(exclude, fp_scratch)) {
      fp_scratch = pick_dead_xmm(bidx, i, exclude);
    }
    if (fp_scratch < 0) {
      // Requisition an XMM: save lane 0 to a protection slot.
      fp_scratch = dst.xmm == 15 ? 14 : 15;
      save_slot = alloc_prot_slot();
      emit(out, {Op::kMovsd, {Operand::make_xmm(fp_scratch),
                              rbp_slot(save_slot, 8)}});
      saved = true;
      ++stats_.requisitions;
    }

    emit(out, {Op::kMovsd, {Operand::make_xmm(dst.xmm),
                            Operand::make_xmm(fp_scratch)}});  // seed
    out.push_back(inst);
    AsmInst dup = inst;
    dup.ops[1] = Operand::make_xmm(fp_scratch);
    emit(out, dup);
    compare_xmm_bits(out, bidx, i, dst.xmm, fp_scratch,
                     exclude | masm::xmm_bit(fp_scratch));

    if (saved) {
      emit(out, {Op::kMovsd, {rbp_slot(save_slot, 8),
                              Operand::make_xmm(fp_scratch)}});
      // Verify the restore against the memory copy.
      Scratch s = acquire_scratch(out, bidx, i, exclude);
      emit(out, {Op::kMovq, {Operand::make_xmm(fp_scratch),
                             Operand::make_reg(s.reg, 8)}});
      protect_store_check(out, Operand::make_reg(s.reg, 8),
                          rbp_slot(save_slot, 8));
      release_scratch(out, s);
    }
    ++stats_.general_sites;
  }

  /// sqrtsd / cvtsi2sd: duplicate into an XMM scratch, bit compare.
  void protect_fp_nonrmw(std::vector<AsmInst>& out,
                         const std::vector<AsmInst>& orig, std::size_t bidx,
                         std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& dst = inst.ops[1];
    const LiveSet exclude = operand_regs(inst);
    out.push_back(inst);

    int fp_scratch = fp_dup_xmm_;
    if (fp_scratch < 0 || masm::has_xmm(exclude, fp_scratch)) {
      fp_scratch = pick_dead_xmm(bidx, i, exclude);
    }
    if (fp_scratch < 0) {
      // No XMM available: fall back to comparing against a re-execution
      // through the destination is impossible; requisition like FP RMW.
      protect_fp_rmw_style_requisitioned(out, orig, bidx, i);
      return;
    }
    AsmInst dup = inst;
    dup.ops[1] = Operand::make_xmm(fp_scratch);
    emit(out, dup);
    compare_xmm_bits(out, bidx, i, dst.xmm, fp_scratch,
                     exclude | masm::xmm_bit(fp_scratch));
    ++stats_.general_sites;
  }

  void protect_fp_rmw_style_requisitioned(std::vector<AsmInst>& out,
                                          const std::vector<AsmInst>& orig,
                                          std::size_t bidx, std::size_t i) {
    const AsmInst& inst = orig[i];
    const Operand& dst = inst.ops[1];
    const LiveSet exclude = operand_regs(inst);
    const int fp_scratch = dst.xmm == 15 ? 14 : 15;
    const std::int64_t save_slot = alloc_prot_slot();
    emit(out, {Op::kMovsd, {Operand::make_xmm(fp_scratch),
                            rbp_slot(save_slot, 8)}});
    ++stats_.requisitions;
    AsmInst dup = inst;
    dup.ops[1] = Operand::make_xmm(fp_scratch);
    emit(out, dup);
    compare_xmm_bits(out, bidx, i, dst.xmm, fp_scratch,
                     exclude | masm::xmm_bit(fp_scratch));
    emit(out, {Op::kMovsd, {rbp_slot(save_slot, 8),
                            Operand::make_xmm(fp_scratch)}});
    Scratch s = acquire_scratch(out, bidx, i, exclude);
    emit(out, {Op::kMovq, {Operand::make_xmm(fp_scratch),
                           Operand::make_reg(s.reg, 8)}});
    protect_store_check(out, Operand::make_reg(s.reg, 8),
                        rbp_slot(save_slot, 8));
    release_scratch(out, s);
    ++stats_.general_sites;
  }

  /// Compares lane 0 of two XMM registers bit-exactly through GPR
  /// scratches with an immediate xor+jne check.
  void compare_xmm_bits(std::vector<AsmInst>& out, std::size_t bidx,
                        std::size_t i, int xmm_a, int xmm_b,
                        LiveSet exclude) {
    Scratch s1 = acquire_scratch(out, bidx, i, exclude);
    Scratch s2 =
        acquire_scratch(out, bidx, i, exclude | masm::gpr_bit(s1.reg));
    emit(out, {Op::kMovq, {Operand::make_xmm(xmm_a),
                           Operand::make_reg(s1.reg, 8)}});
    emit(out, {Op::kMovq, {Operand::make_xmm(xmm_b),
                           Operand::make_reg(s2.reg, 8)}});
    // Measured: batching FP pairs through the SIMD path costs more than
    // it saves (the gpr->xmm transfer traffic saturates the vector
    // ports), so FP sites keep the immediate check.
    emit(out, {Op::kXor, {Operand::make_reg(s1.reg, 8),
                          Operand::make_reg(s2.reg, 8)}});
    emit_jne_detect(out);
    release_scratch(out, s2);
    release_scratch(out, s1);
  }

  // ----------------------------------------------------- branch clusters --

  /// Protects [flag-producer, jcc T, (jmp F)]: duplicated producer,
  /// deferred condition captures (Fig 5) and per-edge assertions.
  void protect_branch_cluster(std::vector<AsmInst>& out,
                              const std::vector<AsmInst>& orig,
                              std::size_t bidx, std::size_t cluster) {
    (void)bidx;
    const AsmInst& producer = orig[cluster];
    const AsmInst& jcc = orig[cluster + 1];
    const bool has_jmp =
        cluster + 2 < orig.size() && orig[cluster + 2].op == Op::kJmp;

    out.push_back(producer);
    emit_flag_capture(out, jcc.cc, 0);
    emit(out, producer);  // duplicated comparison
    emit_flag_capture(out, jcc.cc, 1);

    // Split both edges through assertion trampolines.
    const std::string taken_tramp = make_edge_block(jcc.ops[0].label, true);
    AsmInst new_jcc = jcc;
    new_jcc.ops[0] = Operand::make_label(taken_tramp);
    out.push_back(new_jcc);
    if (has_jmp) {
      const std::string fall_tramp =
          make_edge_block(orig[cluster + 2].ops[0].label, false);
      AsmInst new_jmp = orig[cluster + 2];
      new_jmp.ops[0] = Operand::make_label(fall_tramp);
      out.push_back(new_jmp);
      // Copy anything after the jmp (should not exist).
      for (std::size_t i = cluster + 3; i < orig.size(); ++i) {
        out.push_back(orig[i]);
      }
    } else {
      // jcc with fall-through: not emitted by the backend; keep the
      // fall-through unsplit but assert on the taken edge only.
      for (std::size_t i = cluster + 2; i < orig.size(); ++i) {
        out.push_back(orig[i]);
      }
    }
    ++stats_.compare_clusters;
  }

  void emit_flag_capture(std::vector<AsmInst>& out, Cond cc, int which) {
    if (flag_regs_spare_) {
      emit(out, {AsmInst(Op::kSetcc, cc,
                         {Operand::make_reg(flag_reg_[which], 1)})});
    } else {
      emit(out, {AsmInst(Op::kSetcc, cc, {rbp_slot(flag_slot_[which], 1)})});
    }
  }

  /// Builds the assertion trampoline for one edge and returns its label.
  std::string make_edge_block(const std::string& target, bool expected) {
    AsmBlock tramp;
    tramp.label = "edge." + std::to_string(edge_counter_++);
    std::vector<AsmInst>& out = tramp.insts;
    const std::int64_t want = expected ? 1 : 0;
    if (flag_regs_spare_) {
      for (int which = 0; which < 2; ++which) {
        emit(out, {Op::kCmp, {Operand::make_imm(want, 1),
                              Operand::make_reg(flag_reg_[which], 1)}});
        emit_jne_detect(out);
      }
    } else {
      // Captures live in protection slots: requisition RAX to read them.
      requisition_begin(out, Gpr::kRax);
      for (int which = 0; which < 2; ++which) {
        emit(out, {Op::kMov, {rbp_slot(flag_slot_[which], 1),
                              Operand::make_reg(Gpr::kRax, 1)}});
        emit(out, {Op::kCmp, {Operand::make_imm(want, 1),
                              Operand::make_reg(Gpr::kRax, 1)}});
        emit_jne_detect(out);
      }
      requisition_end(out, Gpr::kRax);
    }
    emit(out, {Op::kJmp, {Operand::make_label(target)}});
    ++stats_.edge_blocks;
    fn_.blocks.push_back(std::move(tramp));
    return fn_.blocks.back().label;
  }

  AsmFunction& fn_;
  int fidx_ = 0;
  const AsmProtectOptions& options_;
  AsmProtectStats& stats_;
  /// Program-wide protectable-site counter, shared across functions.
  int& ordinal_;

  std::vector<std::vector<LiveSet>> lives_;
  bool flag_regs_spare_ = false;
  Gpr flag_reg_[2] = {Gpr::kNone, Gpr::kNone};
  std::int64_t flag_slot_[2] = {0, 0};
  Gpr dup_reg_ = Gpr::kNone;
  bool simd_on_ = false;
  int batch_xmm_[4] = {-1, -1, -1, -1};
  int fp_dup_xmm_ = -1;
  int batch_count_ = 0;
  std::int64_t orig_frame_ = 0;
  bool frame_found_ = false;
  int prot_slots_ = 0;
  int edge_counter_ = 0;
  bool needs_detect_ = false;
  double selection_accum_ = 0.0;
};

}  // namespace

AsmProtectStats protect_asm(masm::AsmProgram& program,
                            const AsmProtectOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  AsmProtectStats stats;
  int ordinal = 0;
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    FunctionProtector protector(program.functions[f], static_cast<int>(f),
                                options, stats, ordinal);
    protector.run();
  }
  stats.pass_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  return stats;
}

std::vector<ProtectSiteRef> enumerate_protectable_sites(
    const masm::AsmProgram& program, const AsmProtectOptions& options) {
  // The call sequence to the selector depends only on the input program
  // shape and options, never on selection outcomes, so a skip-everything
  // recording run over a scratch copy yields the exact site universe.
  masm::AsmProgram scratch = program;
  std::vector<ProtectSiteRef> sites;
  AsmProtectOptions probe = options;
  probe.selector = [&sites](const ProtectSiteRef& ref) {
    sites.push_back(ref);
    return false;
  };
  protect_asm(scratch, probe);
  return sites;
}

}  // namespace ferrum::eddi
