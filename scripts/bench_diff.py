#!/usr/bin/env python3
"""Warn-only throughput regression table for the bench artifacts.

Compares the BENCH_<name>.json artifacts a bench_smoke run leaves in the
build tree against the committed baselines in bench/baselines.json and
prints a table. Throughput lives in the artifacts' `wallclock` sections,
which are scheduling- and machine-dependent by design — so this is a
tripwire, not a gate: the exit status is always 0 and ci.sh treats the
output as informational. A metric only earns a SLOWER flag when it falls
below baseline * (1 - tolerance); the default tolerance is generous
because the smoke knobs (FERRUM_TRIALS=4) time very short runs.

Usage:
  scripts/bench_diff.py [--bench-dir DIR] [--baselines FILE]
  scripts/bench_diff.py --update   # rewrite baseline values from DIR

Baseline schema (bench/baselines.json):
  {
    "tolerance": 0.5,
    "metrics": [
      {"bench": "bench_vm",
       "path": "wallclock/campaign_throughput/ferrum/ckpt_trials_per_second",
       "value": 600.0},
      ...
    ]
  }
"""

import argparse
import json
import os
import sys


def lookup(doc, path):
    node = doc
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) and not isinstance(
        node, bool) else None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir",
                        default="build/bench/bench_smoke_out",
                        help="directory holding BENCH_<name>.json artifacts")
    parser.add_argument("--baselines", default="bench/baselines.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the artifacts")
    args = parser.parse_args()

    try:
        with open(args.baselines) as fh:
            baselines = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_diff: cannot read {args.baselines}: {err}")
        return 0

    tolerance = float(baselines.get("tolerance", 0.5))
    artifacts = {}

    def artifact(name):
        if name not in artifacts:
            path = os.path.join(args.bench_dir, f"BENCH_{name}.json")
            try:
                with open(path) as fh:
                    artifacts[name] = json.load(fh)
            except (OSError, ValueError):
                artifacts[name] = None
        return artifacts[name]

    rows = []
    slower = 0
    for metric in baselines.get("metrics", []):
        bench, path = metric["bench"], metric["path"]
        doc = artifact(bench)
        current = lookup(doc, path) if doc is not None else None
        base = metric.get("value")
        if args.update:
            if current is not None:
                metric["value"] = current
            continue
        if current is None:
            rows.append((bench, path, base, None, "missing"))
            continue
        if base is None or base <= 0:
            rows.append((bench, path, base, current, "no-base"))
            continue
        ratio = current / base
        if ratio < 1.0 - tolerance:
            status = "SLOWER"
            slower += 1
        elif ratio > 1.0 + tolerance:
            status = "faster"
        else:
            status = "ok"
        rows.append((bench, path, base, current, status))

    if args.update:
        with open(args.baselines, "w") as fh:
            json.dump(baselines, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench_diff: baselines rewritten from {args.bench_dir}")
        return 0

    print(f"bench throughput vs baselines (tolerance {tolerance:.0%}, "
          "warn-only):")
    print(f"{'bench':<18} {'metric':<52} {'baseline':>10} {'current':>10} "
          f"{'status':>8}")
    for bench, path, base, current, status in rows:
        metric = path.split("/", 1)[-1]
        base_s = f"{base:.1f}" if isinstance(base, (int, float)) else "-"
        cur_s = f"{current:.1f}" if isinstance(current,
                                               (int, float)) else "-"
        print(f"{bench:<18} {metric:<52} {base_s:>10} {cur_s:>10} "
              f"{status:>8}")
    if slower:
        print(f"bench_diff: {slower} metric(s) slower than baseline "
              "(warn-only; rebaseline with --update if intentional)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
