#!/usr/bin/env bash
# ci.sh — run the three ROADMAP verification presets end to end and
# print a pass/fail table. Exit status is non-zero if any preset fails.
#
#   tier-1      full ctest suite, default toolchain flags
#   tsan        ThreadSanitizer build; the parallel/service/sections
#               harnesses plus the smoke benches
#   asan-ubsan  combined ASan+UBSan build; checker and engine tests
#
# Usage: scripts/ci.sh [preset ...]     (default: all three)
# Environment: FERRUM_CI_JOBS overrides the build/test parallelism.
set -u

cd "$(dirname "$0")/.."
JOBS="${FERRUM_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# Preset table: name | build dir | extra cmake args | ctest args.
# The regexes mirror ROADMAP.md verbatim — update both together.
TSAN_TESTS='bench_smoke|check_smoke|prune_smoke|test_parallel|test_sections|service_smoke'
ASAN_TESTS='test_check|test_engine|test_prune'

preset_cmake_args() {
  case "$1" in
    # tier-1 exports compile_commands.json for the clang-tidy stage.
    tier-1) echo "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" ;;
    tsan) echo "-DFERRUM_SANITIZE=thread" ;;
    asan-ubsan) echo "-DFERRUM_SANITIZE=address" ;;
  esac
}

preset_build_dir() {
  case "$1" in
    tier-1) echo "build" ;;
    tsan) echo "build-tsan" ;;
    asan-ubsan) echo "build-asan" ;;
  esac
}

preset_ctest_args() {
  case "$1" in
    tier-1) echo "" ;;
    tsan) echo "-R $TSAN_TESTS" ;;
    asan-ubsan) echo "-R $ASAN_TESTS" ;;
  esac
}

run_preset() {
  local name="$1"
  local dir log args
  dir="$(preset_build_dir "$name")"
  args="$(preset_cmake_args "$name")"
  log="$dir/ci-$name.log"
  echo "==> preset $name (build dir: $dir)"
  # shellcheck disable=SC2086 — args is a deliberate word list
  if ! cmake -B "$dir" -S . $args >"$log" 2>&1; then
    echo "    configure FAILED (see $log)"
    return 1
  fi
  if ! cmake --build "$dir" -j "$JOBS" >>"$log" 2>&1; then
    echo "    build FAILED (see $log)"
    return 1
  fi
  # shellcheck disable=SC2086
  if ! ctest --test-dir "$dir" $(preset_ctest_args "$name") \
       --output-on-failure -j "$JOBS" >>"$log" 2>&1; then
    echo "    tests FAILED (see $log)"
    return 1
  fi
  return 0
}

PRESETS=("$@")
[ ${#PRESETS[@]} -eq 0 ] && PRESETS=(tier-1 tsan asan-ubsan)

declare -A STATUS SECONDS_BY
overall=0
for preset in "${PRESETS[@]}"; do
  if [ -z "$(preset_build_dir "$preset")" ]; then
    echo "unknown preset '$preset' (want: tier-1 tsan asan-ubsan)" >&2
    exit 2
  fi
  start=$(date +%s)
  if run_preset "$preset"; then
    STATUS[$preset]=PASS
  else
    STATUS[$preset]=FAIL
    overall=1
  fi
  SECONDS_BY[$preset]=$(( $(date +%s) - start ))
done

# Warn-only clang-tidy stage: bugprone-* / performance-* /
# concurrency-* over the sources, driven by the compile_commands.json
# the tier-1 configure exports and the committed .clang-tidy profile
# (check list and suppressions live there). Informational like the
# bench tripwire below — findings print but never affect the exit
# status, and the stage is skipped when clang-tidy is not installed.
for preset in "${PRESETS[@]}"; do
  if [ "$preset" = tier-1 ] && [ "${STATUS[$preset]}" = PASS ]; then
    if command -v clang-tidy >/dev/null 2>&1 \
       && [ -f "$(preset_build_dir tier-1)/compile_commands.json" ]; then
      echo
      echo "==> clang-tidy (warn-only; profile: .clang-tidy)"
      find src bench tests examples -name '*.cpp' -print0 \
        | xargs -0 -P "$JOBS" -n 8 clang-tidy \
            -p "$(preset_build_dir tier-1)" --quiet 2>/dev/null || true
    else
      echo
      echo "==> clang-tidy not installed; skipping the warn-only lint stage"
    fi
  fi
done

# Warn-only throughput tripwire: diff the bench artifacts the tier-1
# bench_smoke run left in the build tree against the committed
# baselines. Never affects the exit status — wallclock numbers are
# machine-dependent by design (see scripts/bench_diff.py).
for preset in "${PRESETS[@]}"; do
  if [ "$preset" = tier-1 ] && [ "${STATUS[$preset]}" = PASS ] \
     && command -v python3 >/dev/null 2>&1; then
    echo
    python3 scripts/bench_diff.py \
      --bench-dir "$(preset_build_dir tier-1)/bench/bench_smoke_out" || true
  fi
done

echo
printf '%-12s %-6s %8s\n' preset result seconds
printf '%-12s %-6s %8s\n' ------------ ------ --------
for preset in "${PRESETS[@]}"; do
  printf '%-12s %-6s %8s\n' "$preset" "${STATUS[$preset]}" \
    "${SECONDS_BY[$preset]}"
done
exit "$overall"
