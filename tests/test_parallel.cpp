#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/prune.h"
#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "support/parallel.h"

namespace ferrum {
namespace {

TEST(ThreadPoolTest, HardwareWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1);
}

TEST(ThreadPoolTest, DefaultsToHardwareWorkers) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), ThreadPool::hardware_workers());
  ThreadPool negative(-3);
  EXPECT_EQ(negative.workers(), ThreadPool::hardware_workers());
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1337;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MoreChunksThanWorkers) {
  // grain 1 over 100 indices with 3 workers: 100 chunks for 3 claimants.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(
      100,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t, std::size_t) {
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          1000,
          [&](std::size_t begin, std::size_t) {
            if (begin >= 500) throw std::runtime_error("boom");
          },
          /*grain=*/10),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSingleWorker) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t, std::size_t) {
                                   throw std::runtime_error("inline boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, UsableAgainAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t, std::size_t) {
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ManySequentialJobsOnOnePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> total{0};
    pool.parallel_for(round, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(total.load(), round);
  }
}

TEST(ThreadPoolTest, CheckpointedCampaignSharesSnapshotsAcrossWorkers) {
  // TSan-preset coverage for the fast-forward engine: the CheckpointSet
  // is captured once on the calling thread and then read concurrently by
  // every worker's Engine; a missing happens-before edge or a hidden
  // write to the shared snapshots shows up here under
  // -DFERRUM_SANITIZE=thread. A tight stride maximises concurrent
  // restores from the same pages.
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 12; i++) s += i * i;
      print_int(s);
      return 0;
    })", pipeline::Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 96;
  options.ckpt_stride = 4;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  options.jobs = 8;
  const auto parallel = fault::run_campaign(build.program, options);
  EXPECT_EQ(serial.counts, parallel.counts);
  EXPECT_EQ(serial.sdc_breakdown, parallel.sdc_breakdown);
  EXPECT_GT(parallel.ckpt.ff.restores, 0u);
}

TEST(ThreadPoolTest, BatchedCampaignIsBatchAndJobsInvariant) {
  // TSan-preset coverage for the lockstep batch walk and golden rejoin:
  // each worker's Engine hands batches of lanes to run_batch while
  // reading the shared CheckpointSet (including its GoldenSummary for
  // rejoin comparisons) concurrently with every other worker. The
  // batched multi-worker campaign must reproduce the scalar
  // single-worker result exactly.
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 12; i++) s += i * i;
      print_int(s);
      return 0;
    })", pipeline::Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 96;
  options.ckpt_stride = 4;
  options.batch = 1;
  options.vm.golden_rejoin = false;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  options.batch = 8;
  options.vm.golden_rejoin = true;
  options.jobs = 8;
  const auto batched = fault::run_campaign(build.program, options);
  EXPECT_EQ(serial.counts, batched.counts);
  EXPECT_EQ(serial.sdc_breakdown, batched.sdc_breakdown);
  EXPECT_EQ(serial.latency_sum, batched.latency_sum);
  EXPECT_GT(batched.ckpt.ff.batches, 0u);
  EXPECT_GT(batched.ckpt.ff.lanes, batched.ckpt.ff.batches);
}

TEST(ThreadPoolTest, PrunedCampaignIsJobsInvariant) {
  // TSan-preset coverage for prune mode: the shared PruneReport and the
  // golden-run CheckpointSet are read concurrently by every worker while
  // pilot runs execute; the serial pre-draw plus trial-order reduction
  // must keep the extrapolated result bit-identical to the single-worker
  // run (counts, breakdown, latency, and the prune accounting itself).
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 12; i++) s += i * i;
      print_int(s);
      return 0;
    })", pipeline::Technique::kFerrum);
  const check::prune::PruneReport prune =
      check::prune::prune_program(build.program);
  fault::CampaignOptions options;
  options.trials = 96;
  options.ckpt_stride = 4;
  options.prune = &prune;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  options.jobs = 8;
  const auto parallel = fault::run_campaign(build.program, options);
  EXPECT_EQ(serial.counts, parallel.counts);
  EXPECT_EQ(serial.sdc_breakdown, parallel.sdc_breakdown);
  EXPECT_EQ(serial.latency_sum, parallel.latency_sum);
  EXPECT_EQ(serial.prune.pilot_runs, parallel.prune.pilot_runs);
  EXPECT_EQ(serial.prune.dead_trials, parallel.prune.dead_trials);
  EXPECT_EQ(serial.prune.replayed_trials, parallel.prune.replayed_trials);
  EXPECT_TRUE(parallel.prune.enabled);
  EXPECT_LT(parallel.prune.pilot_runs, 96u);  // pruning actually pruned
}

TEST(ThreadPoolTest, AdaptiveCampaignIsJobsAndBatchInvariant) {
  // TSan-preset coverage for the adaptive stop rule: the boundary loop
  // joins the pool after every block, then reads each trial's outcome
  // slot from the calling thread — the determinism contract (and the
  // happens-before edge behind it) is that the stopped count and every
  // counter agree across workers and lockstep widths. A shared
  // PreparedCampaign rides along, read concurrently by all workers, to
  // mirror the service's cross-cell reuse under the race detector.
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 12; i++) s += i * i;
      print_int(s);
      return 0;
    })", pipeline::Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 2048;
  options.max_half_width = 0.05;
  options.ckpt_stride = 4;
  options.jobs = 1;
  options.batch = 1;
  const auto serial = fault::run_campaign(build.program, options);
  ASSERT_TRUE(serial.adaptive.stopped_early);
  const fault::PreparedCampaign prepared(build.program, options.vm,
                                         /*ckpt_stride=*/4);
  for (const int jobs : {2, 8}) {
    options.jobs = jobs;
    options.batch = 8;
    options.prepared = &prepared;
    const auto parallel = fault::run_campaign(build.program, options);
    EXPECT_EQ(serial.adaptive.executed_trials,
              parallel.adaptive.executed_trials);
    EXPECT_EQ(serial.counts, parallel.counts);
    EXPECT_EQ(serial.sdc_breakdown, parallel.sdc_breakdown);
    EXPECT_EQ(serial.latency_sum, parallel.latency_sum);
  }
}

TEST(ThreadPoolTest, FreeFunctionCoversRange) {
  std::vector<std::atomic<int>> hits(256);
  parallel_for(4, 256, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace ferrum
