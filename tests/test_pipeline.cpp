#include <gtest/gtest.h>

#include "pipeline/pipeline.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using pipeline::Technique;

constexpr Technique kAll[] = {Technique::kNone, Technique::kIrEddi,
                              Technique::kHybrid, Technique::kFerrum};

constexpr const char* kPrograms[] = {
    "int main() { print_int(123); return 0; }",
    R"(int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main() { print_int(fib(11)); return 0; })",
    R"(int g[12];
       int main() {
         for (int i = 0; i < 12; i++) g[i] = (i * 37 + 11) % 19;
         int best = -1;
         for (int i = 0; i < 12; i++) if (g[i] > best) best = g[i];
         print_int(best);
         return 0;
       })",
    R"(double m[9] = {4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0};
       int main() {
         double trace = 0.0;
         for (int i = 0; i < 3; i++) trace += m[i * 3 + i];
         print_f64(trace);
         double norm = 0.0;
         for (int i = 0; i < 9; i++) norm += m[i] * m[i];
         print_f64(sqrt(norm));
         return 0;
       })",
    R"(int main() {
         long acc = 1L;
         for (int i = 1; i <= 15; i++) {
           acc = acc * (long)i % 1000003L;
           if (acc % 2L == 0L && i % 3 == 0) acc += 7L;
         }
         print_int(acc);
         return 0;
       })",
};

class PipelineTechniqueTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(PipelineTechniqueTest, OutputMatchesUnprotected) {
  const char* source = std::get<0>(GetParam());
  const Technique technique = kAll[std::get<1>(GetParam())];

  auto baseline = pipeline::build(source, Technique::kNone);
  const vm::VmResult golden = vm::run(baseline.program);
  ASSERT_TRUE(golden.ok());

  auto build = pipeline::build(source, technique);
  const vm::VmResult result = vm::run(build.program);
  ASSERT_TRUE(result.ok()) << vm::exit_status_name(result.status);
  EXPECT_EQ(result.output, golden.output);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, PipelineTechniqueTest,
    ::testing::Combine(::testing::ValuesIn(kPrograms),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Pipeline, TechniqueNames) {
  EXPECT_STREQ(pipeline::technique_name(Technique::kNone), "none");
  EXPECT_STREQ(pipeline::technique_name(Technique::kIrEddi), "ir-level-eddi");
  EXPECT_STREQ(pipeline::technique_name(Technique::kHybrid),
               "hybrid-assembly-level-eddi");
  EXPECT_STREQ(pipeline::technique_name(Technique::kFerrum), "ferrum");
}

TEST(Pipeline, StatsReflectTechnique) {
  const char* source = kPrograms[1];
  auto none = pipeline::build(source, Technique::kNone);
  EXPECT_EQ(none.ir_stats.duplicated, 0u);
  EXPECT_EQ(none.asm_stats.general_sites + none.asm_stats.simd_sites, 0u);

  auto ir_eddi = pipeline::build(source, Technique::kIrEddi);
  EXPECT_GT(ir_eddi.ir_stats.duplicated, 0u);
  EXPECT_EQ(ir_eddi.asm_stats.general_sites + ir_eddi.asm_stats.simd_sites,
            0u);

  auto hybrid = pipeline::build(source, Technique::kHybrid);
  EXPECT_GT(hybrid.ir_stats.duplicated, 0u);  // signature stage
  EXPECT_GT(hybrid.asm_stats.general_sites, 0u);
  EXPECT_EQ(hybrid.asm_stats.simd_sites, 0u);

  auto ferrum = pipeline::build(source, Technique::kFerrum);
  EXPECT_EQ(ferrum.ir_stats.duplicated, 0u);  // pure assembly level
  EXPECT_GT(ferrum.asm_stats.simd_sites, 0u);
  EXPECT_GT(ferrum.protect_seconds, 0.0);
}

TEST(Pipeline, ProtectedProgramsAreLarger) {
  const char* source = kPrograms[2];
  const std::size_t raw =
      pipeline::build(source, Technique::kNone).program.inst_count();
  for (Technique technique :
       {Technique::kIrEddi, Technique::kHybrid, Technique::kFerrum}) {
    const std::size_t protected_size =
        pipeline::build(source, technique).program.inst_count();
    EXPECT_GT(protected_size, raw)
        << pipeline::technique_name(technique);
  }
}

TEST(Pipeline, FrontendErrorsThrow) {
  EXPECT_THROW(pipeline::build("int main( { return 0; }", Technique::kNone),
               std::runtime_error);
  EXPECT_THROW(pipeline::build("int main() { return missing; }",
                               Technique::kFerrum),
               std::runtime_error);
}

TEST(Pipeline, BackendOptionsArePlumbedThrough) {
  pipeline::BuildOptions options;
  options.backend.max_scratch_gprs = 5;
  auto tight = pipeline::build(kPrograms[4], Technique::kFerrum, options);
  auto result = vm::run(tight.program);
  EXPECT_TRUE(result.ok());
}

TEST(Pipeline, FerrumOptionsArePlumbedThrough) {
  pipeline::BuildOptions options;
  options.ferrum.simd_batch = 2;
  auto build = pipeline::build(kPrograms[2], Technique::kFerrum, options);
  auto result = vm::run(build.program);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(build.asm_stats.flushes, 0u);
}

}  // namespace
}  // namespace ferrum
