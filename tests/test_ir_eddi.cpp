#include <gtest/gtest.h>

#include "eddi/ir_eddi.h"
#include "frontend/codegen.h"
#include "ir/interp.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/source_location.h"

namespace ferrum {
namespace {

std::unique_ptr<ir::Module> compile_ok(const std::string& source) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  EXPECT_NE(module, nullptr) << diags.render();
  return module;
}

/// Applies the pass and checks the module still verifies and computes the
/// same output as before.
void expect_semantics_preserved(const std::string& source,
                                eddi::IrEddiMode mode) {
  auto module = compile_ok(source);
  ASSERT_NE(module, nullptr);
  const ir::RunResult before = ir::interpret(*module);
  ASSERT_TRUE(before.ok());
  eddi::apply_ir_eddi(*module, mode);
  EXPECT_TRUE(ir::verify(*module).empty()) << ir::verify_to_string(*module);
  const ir::RunResult after = ir::interpret(*module);
  ASSERT_TRUE(after.ok()) << ir::run_status_name(after.status);
  EXPECT_EQ(after.output, before.output);
  EXPECT_EQ(after.return_value, before.return_value);
}

constexpr const char* kPrograms[] = {
    "int main() { print_int(1 + 2 * 3); return 0; }",
    R"(int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main() { print_int(fib(12)); return 0; })",
    R"(int g[16];
       int main() {
         for (int i = 0; i < 16; i++) g[i] = i * i;
         long s = 0L;
         for (int i = 0; i < 16; i++) s += g[i];
         print_int(s);
         return 0;
       })",
    R"(double w[4] = {1.5, 2.5, 3.5, 4.5};
       int main() {
         double acc = 0.0;
         for (int i = 0; i < 4; i++) acc += w[i] * w[i];
         print_f64(sqrt(acc));
         return 0;
       })",
    R"(int main() {
         int i = 0;
         int s = 0;
         while (i < 20 && (s < 40 || i % 3 == 0)) { s += i; i++; }
         print_int(s);
         print_int(i);
         return 0;
       })",
};

class IrEddiSemanticsTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(IrEddiSemanticsTest, OutputUnchanged) {
  const auto mode = std::get<1>(GetParam()) == 0
                        ? eddi::IrEddiMode::kClassic
                        : eddi::IrEddiMode::kSignatureOnly;
  expect_semantics_preserved(std::get<0>(GetParam()), mode);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IrEddiSemanticsTest,
    ::testing::Combine(::testing::ValuesIn(kPrograms),
                       ::testing::Values(0, 1)));

TEST(IrEddiClassic, DuplicatesComputationInstructions) {
  auto module = compile_ok(
      "int main() { int a = 3; int b = 4; print_int(a * b + 1); return 0; }");
  const auto stats = eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.checks, 0u);
  const std::string text = ir::print(*module);
  EXPECT_NE(text.find("eddi.detect"), std::string::npos);
  EXPECT_NE(text.find("@__eddi_detect"), std::string::npos);
}

TEST(IrEddiClassic, LoadsAreDuplicated) {
  auto module = compile_ok(
      "int main() { int a = 3; print_int(a); return 0; }");
  std::size_t loads_before = 0;
  for (const auto& fn : module->functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : block->instructions()) {
        loads_before += inst->op() == ir::Opcode::kLoad;
      }
    }
  }
  eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  std::size_t loads_after = 0;
  for (const auto& fn : module->functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : block->instructions()) {
        loads_after += inst->op() == ir::Opcode::kLoad;
      }
    }
  }
  EXPECT_EQ(loads_after, loads_before * 2);
}

TEST(IrEddiClassic, ChecksGuardSyncPoints) {
  auto module = compile_ok(
      "int main() { int a = 2; int b = a + 1; print_int(b); return 0; }");
  eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  // Every store of a duplicated value is preceded (in its block chain) by
  // an icmp eq + condbr to the detect block. Count checker condbrs.
  const ir::Function* main_fn = module->find_function("main");
  int checker_branches = 0;
  for (const auto& block : main_fn->blocks()) {
    const ir::Instruction* term = block->terminator();
    if (term != nullptr && term->op() == ir::Opcode::kCondBr &&
        term->targets[1] != nullptr &&
        term->targets[1]->name() == "eddi.detect") {
      ++checker_branches;
    }
  }
  EXPECT_GT(checker_branches, 0);
}

TEST(IrEddiClassic, DetectorFiresOnCorruptedDuplicate) {
  // Manually corrupt one duplicated instruction to prove the checker works:
  // change the duplicate's operand so the two copies disagree.
  auto module = compile_ok(
      "int main() { int a = 5; print_int(a + 1); return 0; }");
  eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  ir::Function* main_fn = module->find_function("main");
  // Find the duplicated add (the second add in the entry chain) and skew it.
  bool skewed = false;
  for (const auto& block : main_fn->blocks()) {
    int adds_seen = 0;
    for (const auto& inst : block->instructions()) {
      if (inst->op() == ir::Opcode::kAdd) {
        ++adds_seen;
        if (adds_seen == 2) {
          inst->operands[1] = module->const_i32(999);
          skewed = true;
          break;
        }
      }
    }
    if (skewed) break;
  }
  ASSERT_TRUE(skewed);
  const ir::RunResult result = ir::interpret(*module);
  // The checker sees the mismatch and routes to the detector, which
  // returns early: output is empty.
  EXPECT_TRUE(result.output.empty());
}

TEST(IrEddiSignature, OnlyComparisonsDuplicated) {
  auto module = compile_ok(R"(
    int main() {
      int a = 3;
      int b = a * 2 + 1;
      if (b > 5) print_int(b);
      return 0;
    })");
  const auto stats =
      eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kSignatureOnly);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.edge_assertions, 0u);
  // Arithmetic is NOT duplicated in signature mode: count muls.
  int muls = 0;
  for (const auto& fn : module->functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : block->instructions()) {
        muls += inst->op() == ir::Opcode::kMul;
      }
    }
  }
  EXPECT_EQ(muls, 1);
}

TEST(IrEddiSignature, EdgeAssertionsOnBothEdges) {
  auto module = compile_ok(R"(
    int main() {
      int a = 3;
      if (a > 1) print_int(1); else print_int(2);
      return 0;
    })");
  const auto stats =
      eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kSignatureOnly);
  EXPECT_EQ(stats.edge_assertions, 2u);
  int assertion_blocks = 0;
  for (const auto& block : module->find_function("main")->blocks()) {
    if (block->name().rfind("edge.assert", 0) == 0) ++assertion_blocks;
  }
  EXPECT_EQ(assertion_blocks, 2);
}

TEST(IrEddiSignature, MaterialisedCompareGetsValueCheck) {
  auto module = compile_ok(R"(
    int main() {
      int a = 3;
      int flag = a < 10;   // standalone comparison
      print_int(flag);
      return 0;
    })");
  const auto stats =
      eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kSignatureOnly);
  EXPECT_GE(stats.checks, 1u);
}

TEST(IrEddi, IdempotentVerification) {
  // Applying to an already-protected module is not meaningful, but the
  // pass must keep producing verifier-clean IR on all workload shapes.
  auto module = compile_ok(R"(
    void helper(int* p, int n) { for (int i = 0; i < n; i++) p[i] = i; }
    int buf[8];
    int main() {
      helper(buf, 8);
      print_int(buf[5]);
      return 0;
    })");
  eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  EXPECT_TRUE(ir::verify(*module).empty()) << ir::verify_to_string(*module);
}

}  // namespace
}  // namespace ferrum
