// Campaign service tests: the SHA-256 primitive (pinned FIPS vectors),
// the cache-key contract (pinned golden material + hash, key-affecting
// vs key-invariant knobs), the wire protocol (frame round trips over a
// socketpair, strict cell JSON), the content-addressed store, and the
// daemon itself — cold/warm byte-identity with zero new engine trials,
// determinism across worker counts and submission orders, and the full
// client conversation over a real unix socket.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "fault/campaign.h"
#include "fault/cell.h"
#include "pipeline/pipeline.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/proto.h"
#include "service/service.h"
#include "support/hash.h"
#include "support/transport.h"
#include "telemetry/export.h"
#include "telemetry/json.h"

namespace ferrum {
namespace {

using fault::CampaignCell;

// ---------------------------------------------------------------------
// SHA-256: pinned FIPS 180-4 vectors. The cache keys and stored-result
// addresses are only stable across runs/platforms if these never move.

TEST(Sha256, PinnedShortVectors) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, PinnedTwoBlockVector) {
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, PinnedMillionA) {
  const std::string million(1000000, 'a');
  EXPECT_EQ(
      sha256_hex(million),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text =
      "the quick brown fox jumps over the lazy dog, repeatedly, until the "
      "buffer spans more than one 64-byte block boundary";
  // Feed in deliberately awkward chunk sizes (1, 2, 3, ... bytes).
  Sha256 hasher;
  std::size_t offset = 0, chunk = 1;
  while (offset < text.size()) {
    const std::size_t take = std::min(chunk++, text.size() - offset);
    hasher.update(text.data() + offset, take);
    offset += take;
  }
  EXPECT_EQ(hasher.hex_digest(), sha256_hex(text));
}

TEST(Sha256, DigestIsIdempotentAndSealsTheHasher) {
  Sha256 hasher;
  hasher.update("abc");
  const std::string first = hasher.hex_digest();
  EXPECT_EQ(first, hasher.hex_digest());
  EXPECT_THROW(hasher.update("more"), std::logic_error);
}

// ---------------------------------------------------------------------
// Cache-key contract.

constexpr const char* kEmptySha =
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";

TEST(CellKey, PinnedGoldenMaterialAndKey) {
  // The default cell against the empty-program hash. If this golden
  // moves, every existing store entry is orphaned — bump the material
  // version ("ferrum-cell-v2") instead of silently changing the layout.
  const CampaignCell cell;
  const std::string material = fault::cell_key_material(cell, kEmptySha);
  EXPECT_EQ(material,
            "ferrum-cell-v2\n"
            "program_sha256=" +
                std::string(kEmptySha) +
                "\n"
                "technique=ferrum\n"
                "trials=1000\n"
                "seed=65092\n"
                "faults_per_run=1\n"
                "burst=1\n"
                "store_data=0\n"
                "prune=0\n"
                "max_half_width=0\n");
  EXPECT_EQ(
      sha256_hex(material),
      "5628bc5caf4d00cd631cdf4fe83b8653a5dc1bd93651962dbcd1a083bc1c9894");
}

TEST(CellKey, ResultAffectingKnobsChangeTheKey) {
  const CampaignCell base;
  const std::string base_key =
      sha256_hex(fault::cell_key_material(base, kEmptySha));
  auto key_of = [&](auto mutate) {
    CampaignCell cell = base;
    mutate(cell);
    return sha256_hex(fault::cell_key_material(cell, kEmptySha));
  };
  EXPECT_NE(key_of([](CampaignCell& c) { c.technique = "none"; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.trials = 999; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.seed = 65093; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.faults_per_run = 2; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.burst = 2; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.store_data = true; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.prune = true; }), base_key);
  EXPECT_NE(key_of([](CampaignCell& c) { c.max_half_width = 0.02; }),
            base_key);
  // And a different program hash is a different cell.
  EXPECT_NE(sha256_hex(fault::cell_key_material(base, sha256_hex("x"))),
            base_key);
}

TEST(CellKey, EngineKnobsAreNotKeyMaterial) {
  // jobs / ckpt_stride / batch / dispatch are proven result-invariant
  // (tests/test_engine.cpp byte-compares campaign JSON across them), so
  // a warm query with different engine knobs must still hit the store.
  const CampaignCell base;
  const std::string base_material = fault::cell_key_material(base, kEmptySha);
  CampaignCell cell = base;
  cell.jobs = 8;
  cell.ckpt_stride = 0;
  cell.batch = 1;
  cell.dispatch = "switch";
  EXPECT_EQ(fault::cell_key_material(cell, kEmptySha), base_material);
}

TEST(CellKey, ProgramHashTracksTechnique) {
  const char* source = "int main() { print_int(7); return 0; }";
  const auto plain = pipeline::build(source, pipeline::Technique::kNone);
  const auto hardened =
      pipeline::build(source, pipeline::Technique::kFerrum);
  EXPECT_NE(fault::program_hash(plain.program),
            fault::program_hash(hardened.program));
  CampaignCell cell;
  cell.program = source;
  EXPECT_NE(fault::cell_key(cell, plain.program),
            fault::cell_key(cell, hardened.program));
}

TEST(CellKey, ValidateCellRejectsBadSpecs) {
  std::string error;
  CampaignCell cell;  // neither program nor workload
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.workload = "bfs";
  EXPECT_TRUE(fault::validate_cell(cell, error));
  cell.program = "int main() { return 0; }";  // both set
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.program.clear();
  cell.technique = "tmr";
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.technique = "ferrum";
  cell.dispatch = "tokenized";
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.dispatch = "auto";
  cell.trials = 0;
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.trials = 10;
  cell.prune = true;
  cell.faults_per_run = 2;
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.prune = false;
  cell.faults_per_run = 1;
  cell.max_half_width = 0.5;  // stop rule wants [0, 0.5)
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.max_half_width = -0.01;
  EXPECT_FALSE(fault::validate_cell(cell, error));
  cell.max_half_width = 0.05;
  EXPECT_TRUE(fault::validate_cell(cell, error)) << error;
  cell.prune = true;  // prune extrapolates, adaptive would skew it
  EXPECT_FALSE(fault::validate_cell(cell, error));
}

// ---------------------------------------------------------------------
// Wire protocol.

TEST(Proto, FrameRoundTripOverSocketpair) {
  auto [a, b] = Conn::pipe_pair();
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  ASSERT_TRUE(service::write_frame(a, service::MsgType::kHello,
                                   std::string_view("{}")));
  telemetry::Json payload = telemetry::Json::object();
  payload["job"] = static_cast<std::uint64_t>(42);
  ASSERT_TRUE(service::write_frame(a, service::MsgType::kStatus, payload));
  service::Frame frame;
  ASSERT_TRUE(service::read_frame(b, frame));
  EXPECT_EQ(frame.type, service::MsgType::kHello);
  EXPECT_EQ(frame.payload, "{}");
  ASSERT_TRUE(service::read_frame(b, frame));
  EXPECT_EQ(frame.type, service::MsgType::kStatus);
  EXPECT_EQ(frame.payload, payload.dump());
  a.close();
  EXPECT_FALSE(service::read_frame(b, frame));  // clean EOF
}

TEST(Proto, ReadFrameRejectsUnknownTypeByte) {
  auto [a, b] = Conn::pipe_pair();
  const std::uint32_t length = 2;
  std::uint8_t header[5];
  std::memcpy(header, &length, 4);
  header[4] = 200;  // not a MsgType
  ASSERT_TRUE(a.write_all(header, sizeof header));
  ASSERT_TRUE(a.write_all("{}", 2));
  service::Frame frame;
  EXPECT_FALSE(service::read_frame(b, frame));
}

TEST(Proto, ReadFrameRejectsOversizedLength) {
  auto [a, b] = Conn::pipe_pair();
  const std::uint32_t length = service::kMaxFrameBytes + 1;
  std::uint8_t header[5];
  std::memcpy(header, &length, 4);
  header[4] = static_cast<std::uint8_t>(service::MsgType::kHello);
  ASSERT_TRUE(a.write_all(header, sizeof header));
  service::Frame frame;
  EXPECT_FALSE(service::read_frame(b, frame));
}

TEST(Proto, CellJsonRoundTrip) {
  CampaignCell cell;
  cell.workload = "bfs";
  cell.scale = 2;
  cell.technique = "hybrid";
  cell.trials = 123;
  cell.seed = 99;
  cell.faults_per_run = 2;
  cell.burst = 3;
  cell.store_data = true;
  cell.jobs = 4;
  cell.ckpt_stride = 16;
  cell.batch = 2;
  cell.dispatch = "switch";
  cell.max_half_width = 0.03;
  CampaignCell parsed;
  std::string error;
  ASSERT_TRUE(service::cell_from_json(service::cell_to_json(cell), parsed,
                                      error))
      << error;
  EXPECT_EQ(parsed.workload, cell.workload);
  EXPECT_EQ(parsed.scale, cell.scale);
  EXPECT_EQ(parsed.technique, cell.technique);
  EXPECT_EQ(parsed.trials, cell.trials);
  EXPECT_EQ(parsed.seed, cell.seed);
  EXPECT_EQ(parsed.faults_per_run, cell.faults_per_run);
  EXPECT_EQ(parsed.burst, cell.burst);
  EXPECT_EQ(parsed.store_data, cell.store_data);
  EXPECT_EQ(parsed.jobs, cell.jobs);
  EXPECT_EQ(parsed.ckpt_stride, cell.ckpt_stride);
  EXPECT_EQ(parsed.batch, cell.batch);
  EXPECT_EQ(parsed.dispatch, cell.dispatch);
  EXPECT_EQ(parsed.max_half_width, cell.max_half_width);
}

TEST(Proto, CellJsonFillsDefaultsForAbsentKeys) {
  telemetry::Json json = telemetry::Json::object();
  json["workload"] = "bfs";
  CampaignCell cell;
  std::string error;
  ASSERT_TRUE(service::cell_from_json(json, cell, error)) << error;
  const CampaignCell defaults;
  EXPECT_EQ(cell.trials, defaults.trials);
  EXPECT_EQ(cell.seed, defaults.seed);
  EXPECT_EQ(cell.technique, defaults.technique);
  EXPECT_EQ(cell.dispatch, defaults.dispatch);
}

TEST(Proto, CellJsonIsStrict) {
  // A typo'd knob must be an error, not a silent default — otherwise the
  // mistyped cell would be cached under the wrong key forever.
  telemetry::Json misspelled = telemetry::Json::object();
  misspelled["workload"] = "bfs";
  misspelled["trails"] = static_cast<std::uint64_t>(500);
  CampaignCell cell;
  std::string error;
  EXPECT_FALSE(service::cell_from_json(misspelled, cell, error));

  telemetry::Json mistyped = telemetry::Json::object();
  mistyped["workload"] = "bfs";
  mistyped["trials"] = "500";  // string, not integer
  EXPECT_FALSE(service::cell_from_json(mistyped, cell, error));

  telemetry::Json invalid = telemetry::Json::object();
  invalid["technique"] = "ferrum";  // no program, no workload
  EXPECT_FALSE(service::cell_from_json(invalid, cell, error));
}

TEST(Proto, CellJsonRejectsWrongTypeForEveryKnownKey) {
  // Valid key, wrong JSON type: every knob must hard-error rather than
  // coerce — "trials": "100" silently read as 0 (or 100) would execute
  // and cache a different cell than the client wrote.
  const auto base = [] {
    telemetry::Json json = telemetry::Json::object();
    json["workload"] = "bfs";
    return json;
  };
  const auto rejects = [](telemetry::Json json) {
    CampaignCell cell;
    std::string error;
    const bool ok = service::cell_from_json(json, cell, error);
    EXPECT_FALSE(ok) << json.dump();
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
  };
  for (const char* key : {"scale", "trials", "seed", "faults_per_run",
                          "burst", "jobs", "ckpt_stride", "batch"}) {
    telemetry::Json as_string = base();
    as_string[key] = "100";
    rejects(std::move(as_string));
    telemetry::Json as_double = base();
    as_double[key] = 100.0;
    rejects(std::move(as_double));
    telemetry::Json as_bool = base();
    as_bool[key] = true;
    rejects(std::move(as_bool));
    telemetry::Json as_object = base();
    as_object[key] = telemetry::Json::object();
    rejects(std::move(as_object));
  }
  for (const char* key : {"program", "workload", "technique", "dispatch"}) {
    telemetry::Json as_int = base();
    as_int[key] = static_cast<std::int64_t>(3);
    rejects(std::move(as_int));
    telemetry::Json as_object = base();
    as_object[key] = telemetry::Json::object();
    rejects(std::move(as_object));
  }
  for (const char* key : {"store_data", "prune"}) {
    telemetry::Json as_int = base();
    as_int[key] = static_cast<std::int64_t>(1);  // truthy is not bool
    rejects(std::move(as_int));
    telemetry::Json as_string = base();
    as_string[key] = "true";
    rejects(std::move(as_string));
  }
}

TEST(Proto, CellJsonRejectsOutOfRangeAndNegativeIntegers) {
  const auto rejects = [](telemetry::Json json) {
    CampaignCell cell;
    std::string error;
    EXPECT_FALSE(service::cell_from_json(json, cell, error)) << json.dump();
  };
  // int knobs: an int64/uint64 outside int range used to truncate in a
  // static_cast (4294967297 silently became trials=1).
  telemetry::Json wide = telemetry::Json::object();
  wide["workload"] = "bfs";
  wide["trials"] = static_cast<std::int64_t>(4294967297LL);
  rejects(std::move(wide));
  telemetry::Json huge = telemetry::Json::object();
  huge["workload"] = "bfs";
  huge["batch"] = static_cast<std::uint64_t>(1) << 40;
  rejects(std::move(huge));
  telemetry::Json low = telemetry::Json::object();
  low["workload"] = "bfs";
  low["ckpt_stride"] = static_cast<std::int64_t>(-4294967297LL);
  rejects(std::move(low));
  // seed is uint64: a negative value used to wrap to a huge seed.
  telemetry::Json negative_seed = telemetry::Json::object();
  negative_seed["workload"] = "bfs";
  negative_seed["seed"] = static_cast<std::int64_t>(-1);
  rejects(std::move(negative_seed));
  // Boundary values still parse: INT_MAX fits, and a uint64 seed keeps
  // its full width.
  telemetry::Json fine = telemetry::Json::object();
  fine["workload"] = "bfs";
  fine["trials"] = static_cast<std::int64_t>(2147483647);
  fine["seed"] = static_cast<std::uint64_t>(0xfeedfacecafebeefULL);
  CampaignCell cell;
  std::string error;
  EXPECT_TRUE(service::cell_from_json(fine, cell, error)) << error;
  EXPECT_EQ(cell.trials, 2147483647);
  EXPECT_EQ(cell.seed, 0xfeedfacecafebeefULL);
}

// ---------------------------------------------------------------------
// Content-addressed store.

std::string test_key(char fill) { return std::string(64, fill); }

TEST(ResultCache, MemoryRoundTripAndFirstWriterWins) {
  service::ResultCache cache("");
  EXPECT_FALSE(cache.lookup(test_key('a')).has_value());
  cache.store(test_key('a'), "first");
  cache.store(test_key('a'), "second");  // no-op by contract
  ASSERT_TRUE(cache.lookup(test_key('a')).has_value());
  EXPECT_EQ(*cache.lookup(test_key('a')), "first");
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCache, ReplaceModeOverwritesAnExistingEntry) {
  // Section summaries need replace semantics: a key can hold a value
  // whose validation certificate went stale (the code it certified
  // changed), and the freshly re-campaigned summary must displace it or
  // the section stays permanently cold.
  const std::string dir = "tsvc-cache-rep-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  {
    service::ResultCache cache(dir);
    cache.store(test_key('c'), "stale");
    cache.store(test_key('c'), "fresh");  // default: first writer wins
    EXPECT_EQ(*cache.lookup(test_key('c')), "stale");
    cache.store(test_key('c'), "fresh", /*replace=*/true);
    EXPECT_EQ(*cache.lookup(test_key('c')), "fresh");
    EXPECT_EQ(cache.entries(), 1u);
  }
  service::ResultCache reopened(dir);  // the disk tier was rewritten too
  const auto hit = reopened.lookup(test_key('c'));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "fresh");
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, DiskEntriesSurviveTheInstance) {
  const std::string dir =
      "tsvc-cache-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  {
    service::ResultCache cache(dir);
    cache.store(test_key('b'), "{\"stored\":true}");
  }
  service::ResultCache reopened(dir);
  EXPECT_EQ(reopened.entries(), 0u);  // memory tier starts cold
  const auto hit = reopened.lookup(test_key('b'));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"stored\":true}");
  EXPECT_EQ(reopened.entries(), 1u);  // promoted
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Daemon (in-process API).

constexpr const char* kTinyProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) s += i * i;
    print_int(s);
    return 0;
  })";

CampaignCell tiny_cell(int trials = 40) {
  CampaignCell cell;
  cell.program = kTinyProgram;
  cell.technique = "ferrum";
  cell.trials = trials;
  cell.jobs = 2;
  return cell;
}

std::uint64_t counter_value(service::Daemon& daemon, const char* name) {
  return daemon.metrics().counter(name).value();
}

TEST(Service, ColdThenWarmIsByteIdenticalWithZeroNewTrials) {
  service::Daemon daemon({/*workers=*/2, /*cache_dir=*/""});
  const std::uint64_t job = daemon.submit({tiny_cell()});
  const service::CellOutcome* cold = daemon.wait_cell(job, 0);
  ASSERT_NE(cold, nullptr);
  EXPECT_TRUE(cold->error.empty()) << cold->error;
  EXPECT_FALSE(cold->cached);
  ASSERT_FALSE(cold->result_json.empty());
  EXPECT_EQ(cold->key.size(), 64u);
  const std::string cold_bytes = cold->result_json;
  const std::uint64_t executed_after_cold =
      counter_value(daemon, "service/trials_executed");
  EXPECT_EQ(executed_after_cold, 40u);

  // Same cell again: answered from the store, byte-identical, and the
  // engine-trial counter proves nothing ran.
  const std::uint64_t warm_job = daemon.submit({tiny_cell()});
  const service::CellOutcome* warm = daemon.wait_cell(warm_job, 0);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->key, cold->key);
  EXPECT_EQ(warm->result_json, cold_bytes);
  EXPECT_TRUE(warm->wallclock_json.empty());  // nothing executed
  EXPECT_EQ(counter_value(daemon, "service/trials_executed"),
            executed_after_cold);
  EXPECT_EQ(counter_value(daemon, "service/cache/hits"), 1u);
  EXPECT_EQ(counter_value(daemon, "service/cache/misses"), 1u);
}

TEST(Service, WarmAcrossEngineKnobs) {
  service::Daemon daemon({2, ""});
  const std::uint64_t cold_job = daemon.submit({tiny_cell()});
  const service::CellOutcome* cold = daemon.wait_cell(cold_job, 0);
  ASSERT_NE(cold, nullptr);
  ASSERT_TRUE(cold->error.empty()) << cold->error;

  CampaignCell retuned = tiny_cell();
  retuned.jobs = 1;
  retuned.ckpt_stride = 0;
  retuned.batch = 1;
  retuned.dispatch = "switch";
  const std::uint64_t warm_job = daemon.submit({retuned});
  const service::CellOutcome* warm = daemon.wait_cell(warm_job, 0);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->key, cold->key);
  EXPECT_EQ(warm->result_json, cold->result_json);

  // A result-affecting knob, by contrast, misses and re-executes.
  CampaignCell reseeded = tiny_cell();
  reseeded.seed = 123;
  const std::uint64_t fresh_job = daemon.submit({reseeded});
  const service::CellOutcome* fresh = daemon.wait_cell(fresh_job, 0);
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(fresh->cached);
  EXPECT_NE(fresh->key, cold->key);
}

TEST(Service, MultiCellJobCompletesWithConsistentStatus) {
  service::Daemon daemon({2, ""});
  std::vector<CampaignCell> cells = {tiny_cell(30), tiny_cell(50)};
  cells.emplace_back();
  cells.back().workload = "bfs";
  cells.back().technique = "none";
  cells.back().trials = 20;
  const std::uint64_t job = daemon.submit(cells);
  EXPECT_EQ(daemon.job_cells(job), 3u);
  std::uint64_t expected_trials = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const service::CellOutcome* outcome = daemon.wait_cell(job, i);
    ASSERT_NE(outcome, nullptr);
    EXPECT_TRUE(outcome->error.empty()) << outcome->error;
    std::uint64_t sum = 0;
    for (const std::uint64_t count : outcome->counts) sum += count;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(cells[i].trials));
    expected_trials += sum;
  }
  const service::JobStatus status = daemon.status(job);
  ASSERT_TRUE(status.known);
  EXPECT_TRUE(status.done());
  EXPECT_EQ(status.completed, 3u);
  EXPECT_EQ(status.failed, 0u);
  std::uint64_t so_far = 0;
  for (const std::uint64_t count : status.outcomes_so_far) so_far += count;
  EXPECT_EQ(so_far, expected_trials);
  EXPECT_FALSE(daemon.status(999).known);
  EXPECT_EQ(daemon.wait_cell(job, 99), nullptr);
}

TEST(Service, ResultsAreInvariantAcrossWorkersAndSubmissionOrder) {
  std::vector<CampaignCell> cells = {tiny_cell(30), tiny_cell(45)};
  cells[1].technique = "none";
  cells.emplace_back();
  cells.back().workload = "bfs";
  cells.back().trials = 25;

  auto run_all = [](int workers, std::vector<CampaignCell> order) {
    service::Daemon daemon({workers, ""});
    const std::uint64_t job = daemon.submit(std::move(order));
    std::map<std::string, std::string> by_key;
    for (std::size_t i = 0; i < daemon.job_cells(job); ++i) {
      const service::CellOutcome* outcome = daemon.wait_cell(job, i);
      EXPECT_NE(outcome, nullptr);
      EXPECT_TRUE(outcome->error.empty()) << outcome->error;
      by_key[outcome->key] = outcome->result_json;
    }
    return by_key;
  };

  const auto narrow = run_all(1, cells);
  const auto wide = run_all(4, {cells[2], cells[0], cells[1]});
  EXPECT_EQ(narrow, wide);  // per-key bytes identical
}

TEST(Service, CoalescesIdenticalConcurrentCells) {
  // The same cell four times in one job: exactly one execution, the rest
  // served as hits (either coalesced behind the flight or from the
  // store, depending on scheduling).
  service::Daemon daemon({4, ""});
  const std::uint64_t job =
      daemon.submit({tiny_cell(), tiny_cell(), tiny_cell(), tiny_cell()});
  std::string bytes;
  for (std::size_t i = 0; i < 4; ++i) {
    const service::CellOutcome* outcome = daemon.wait_cell(job, i);
    ASSERT_NE(outcome, nullptr);
    ASSERT_TRUE(outcome->error.empty()) << outcome->error;
    if (bytes.empty()) bytes = outcome->result_json;
    EXPECT_EQ(outcome->result_json, bytes);
  }
  EXPECT_EQ(counter_value(daemon, "service/cells/executed"), 1u);
  EXPECT_EQ(counter_value(daemon, "service/trials_executed"), 40u);
}

TEST(Service, InvalidCellFailsWithoutPoisoningTheJob) {
  service::Daemon daemon({2, ""});
  CampaignCell bad;
  bad.workload = "no-such-workload";
  const std::uint64_t job = daemon.submit({bad, tiny_cell()});
  const service::CellOutcome* failed = daemon.wait_cell(job, 0);
  ASSERT_NE(failed, nullptr);
  EXPECT_FALSE(failed->error.empty());
  EXPECT_TRUE(failed->result_json.empty());
  const service::CellOutcome* good = daemon.wait_cell(job, 1);
  ASSERT_NE(good, nullptr);
  EXPECT_TRUE(good->error.empty()) << good->error;
  const service::JobStatus status = daemon.status(job);
  EXPECT_EQ(status.completed, 2u);
  EXPECT_EQ(status.failed, 1u);
}

TEST(Service, PrunedCellsCacheLikeAnyOther) {
  service::Daemon daemon({2, ""});
  CampaignCell cell = tiny_cell();
  cell.prune = true;
  const std::uint64_t cold_job = daemon.submit({cell});
  const service::CellOutcome* cold = daemon.wait_cell(cold_job, 0);
  ASSERT_NE(cold, nullptr);
  ASSERT_TRUE(cold->error.empty()) << cold->error;
  const std::uint64_t executed =
      counter_value(daemon, "service/trials_executed");
  EXPECT_GT(executed, 0u);
  EXPECT_LE(executed, 40u);  // pilots only, never more than the trials
  const std::uint64_t warm_job = daemon.submit({cell});
  const service::CellOutcome* warm = daemon.wait_cell(warm_job, 0);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->result_json, cold->result_json);
  EXPECT_EQ(counter_value(daemon, "service/trials_executed"), executed);
}

TEST(Service, ProgressObserverMatchesFinalCounts) {
  const auto build =
      pipeline::build(kTinyProgram, pipeline::Technique::kFerrum);
  fault::CampaignProgress progress;
  fault::CampaignOptions options;
  options.trials = 64;
  options.jobs = 2;
  options.progress = &progress;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(progress.executed(), 64u);
  for (int i = 0; i < 4; ++i) {
    const auto outcome = static_cast<fault::Outcome>(i);
    EXPECT_EQ(progress.count(outcome),
              static_cast<std::uint64_t>(result.count(outcome)));
  }
}

// ---------------------------------------------------------------------
// Full conversation over a real unix socket.

struct ServedDaemon {
  explicit ServedDaemon(int workers)
      : socket_path("tsvc-" + std::to_string(::getpid()) + ".sock"),
        daemon({workers, ""}) {
    std::string error;
    listener = Listener::bind_unix(socket_path, &error);
    EXPECT_TRUE(listener.valid()) << error;
    server = std::thread([this] { daemon.serve(listener); });
  }
  ~ServedDaemon() {
    std::string error;
    service::Client client = service::Client::connect(socket_path, error);
    if (client.valid()) client.shutdown_server(error);
    server.join();
  }

  std::string socket_path;
  service::Daemon daemon;
  Listener listener;
  std::thread server;
};

TEST(ServiceSocket, FullClientConversation) {
  ServedDaemon served(2);
  std::string error;
  service::Client client =
      service::Client::connect(served.socket_path, error);
  ASSERT_TRUE(client.valid()) << error;

  std::vector<CampaignCell> cells = {tiny_cell(25), tiny_cell(35)};
  const auto job = client.submit(cells, error);
  ASSERT_TRUE(job.has_value()) << error;

  std::vector<service::CellResult> results;
  ASSERT_TRUE(client.results(
      *job, [&](const service::CellResult& r) { results.push_back(r); },
      error))
      << error;
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].cell, i);  // streamed in cell order
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    EXPECT_EQ(results[i].key.size(), 64u);
    ASSERT_FALSE(results[i].result_bytes.empty());
    const telemetry::Json* trials = results[i].result.find("trials");
    ASSERT_NE(trials, nullptr);
    EXPECT_EQ(trials->as_int(), cells[i].trials);
  }

  // The streamed bytes are the stored bytes: resubmitting over the wire
  // returns them verbatim, flagged as cached.
  const auto warm_job = client.submit(cells, error);
  ASSERT_TRUE(warm_job.has_value()) << error;
  std::vector<service::CellResult> warm;
  ASSERT_TRUE(client.results(
      *warm_job, [&](const service::CellResult& r) { warm.push_back(r); },
      error))
      << error;
  ASSERT_EQ(warm.size(), 2u);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].cached);
    EXPECT_EQ(warm[i].result_bytes, results[i].result_bytes);
  }

  const auto status = client.status(*warm_job, error);
  ASSERT_TRUE(status.has_value()) << error;
  const telemetry::Json* completed = status->find("completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->as_uint(), 2u);

  const auto stats = client.stats(error);
  ASSERT_TRUE(stats.has_value()) << error;
  const telemetry::Json* service_node = stats->find("service");
  ASSERT_NE(service_node, nullptr);
}

TEST(ServiceSocket, RejectsMalformedRequestsButStaysUsable) {
  ServedDaemon served(1);
  std::string error;
  service::Client client =
      service::Client::connect(served.socket_path, error);
  ASSERT_TRUE(client.valid()) << error;

  // Invalid cell: rejected at submit time with a kError reply.
  CampaignCell bad;  // neither program nor workload
  EXPECT_FALSE(client.submit({bad}, error).has_value());
  EXPECT_FALSE(error.empty());

  // Unknown job id: the result stream answers kError.
  error.clear();
  EXPECT_FALSE(client.results(
      9999, [](const service::CellResult&) {}, error));
  EXPECT_FALSE(error.empty());

  // The connection survived both errors.
  const auto job = client.submit({tiny_cell(20)}, error);
  ASSERT_TRUE(job.has_value()) << error;
  std::size_t streamed = 0;
  EXPECT_TRUE(client.results(
      *job, [&](const service::CellResult&) { ++streamed; }, error))
      << error;
  EXPECT_EQ(streamed, 1u);
}

}  // namespace
}  // namespace ferrum
