#include <gtest/gtest.h>

#include "masm/masm.h"
#include "masm/parser.h"
#include "support/source_location.h"

namespace ferrum::masm {
namespace {

TEST(Registers, NamesAtEveryWidth) {
  EXPECT_EQ(gpr_name(Gpr::kRax, 8), "rax");
  EXPECT_EQ(gpr_name(Gpr::kRax, 4), "eax");
  EXPECT_EQ(gpr_name(Gpr::kRax, 1), "al");
  EXPECT_EQ(gpr_name(Gpr::kR10, 8), "r10");
  EXPECT_EQ(gpr_name(Gpr::kR10, 4), "r10d");
  EXPECT_EQ(gpr_name(Gpr::kR10, 1), "r10b");
  EXPECT_EQ(gpr_name(Gpr::kRbp, 8), "rbp");
}

TEST(Conds, InvertIsInvolution) {
  for (Cond cc : {Cond::kE, Cond::kNe, Cond::kL, Cond::kLe, Cond::kG,
                  Cond::kGe, Cond::kA, Cond::kAe, Cond::kB, Cond::kBe}) {
    EXPECT_EQ(invert(invert(cc)), cc);
  }
  EXPECT_EQ(invert(Cond::kL), Cond::kGe);
  EXPECT_EQ(invert(Cond::kE), Cond::kNe);
}

TEST(Printer, AttOperandOrder) {
  AsmInst inst(Op::kMov, {Operand::make_reg(Gpr::kRcx, 8),
                          Operand::make_reg(Gpr::kRax, 8)});
  EXPECT_EQ(inst.to_string(), "movq\t%rcx, %rax");
}

TEST(Printer, WidthSuffixes) {
  AsmInst byte_op(Op::kXor, {Operand::make_reg(Gpr::kR11, 1),
                             Operand::make_reg(Gpr::kR12, 1)});
  EXPECT_EQ(byte_op.to_string(), "xorb\t%r11b, %r12b");
  AsmInst dword(Op::kAdd, {Operand::make_imm(5, 4),
                           Operand::make_reg(Gpr::kRdx, 4)});
  EXPECT_EQ(dword.to_string(), "addl\t$5, %edx");
}

TEST(Printer, MemoryOperands) {
  MemRef mem;
  mem.base = Gpr::kRbp;
  mem.disp = -24;
  AsmInst load(Op::kMov, {Operand::make_mem(mem, 8),
                          Operand::make_reg(Gpr::kRax, 8)});
  EXPECT_EQ(load.to_string(), "movq\t-24(%rbp), %rax");

  MemRef indexed;
  indexed.base = Gpr::kRbp;
  indexed.index = Gpr::kRcx;
  indexed.scale = 4;
  indexed.disp = -32;
  AsmInst lea(Op::kLea, {Operand::make_mem(indexed, 8),
                         Operand::make_reg(Gpr::kRdx, 8)});
  EXPECT_EQ(lea.to_string(), "leaq\t-32(%rbp,%rcx,4), %rdx");
}

TEST(Printer, PaperFigureSequences) {
  // The instruction forms of the paper's Fig 4 and Fig 6.
  AsmInst movslq(Op::kMovsx, {Operand::make_reg(Gpr::kRcx, 4),
                              Operand::make_reg(Gpr::kR10, 8)});
  EXPECT_EQ(movslq.to_string(), "movslq\t%ecx, %r10");

  AsmInst pinsr(Op::kPinsrq, {Operand::make_imm(1, 1),
                              Operand::make_reg(Gpr::kRdi, 8),
                              Operand::make_xmm(1)});
  EXPECT_EQ(pinsr.to_string(), "pinsrq\t$1, %rdi, %xmm1");

  AsmInst vins(Op::kVinserti128, {Operand::make_imm(1, 1),
                                  Operand::make_xmm(2),
                                  Operand::make_ymm(0)});
  EXPECT_EQ(vins.to_string(), "vinserti128\t$1, %xmm2, %ymm0");

  AsmInst vptest(Op::kVptest, {Operand::make_ymm(0), Operand::make_ymm(0)});
  EXPECT_EQ(vptest.to_string(), "vptest\t%ymm0, %ymm0");

  AsmInst jne(Op::kJcc, Cond::kNe, {Operand::make_label("exit")});
  EXPECT_EQ(jne.to_string(), "jne\t.exit");

  AsmInst sete(Op::kSetcc, Cond::kE, {Operand::make_reg(Gpr::kR11, 1)});
  EXPECT_EQ(sete.to_string(), "sete\t%r11b");
}

TEST(Program, LookupHelpers) {
  AsmProgram program;
  program.globals.push_back({"table", 64, {}});
  program.functions.push_back({"main", {}});
  EXPECT_EQ(program.global_index("table"), 0);
  EXPECT_EQ(program.global_index("nope"), -1);
  EXPECT_NE(program.find_function("main"), nullptr);
  EXPECT_EQ(program.find_function("nope"), nullptr);
}

TEST(Effects, MovRegReg) {
  AsmInst inst(Op::kMov, {Operand::make_reg(Gpr::kRcx, 8),
                          Operand::make_reg(Gpr::kRax, 8)});
  RegEffects fx = effects_of(inst);
  ASSERT_EQ(fx.gpr_reads.size(), 1u);
  EXPECT_EQ(fx.gpr_reads[0], Gpr::kRcx);
  ASSERT_EQ(fx.gpr_writes.size(), 1u);
  EXPECT_EQ(fx.gpr_writes[0], Gpr::kRax);
  EXPECT_FALSE(fx.writes_flags);
}

TEST(Effects, StoreReadsAddressRegisters) {
  MemRef mem;
  mem.base = Gpr::kRbp;
  mem.index = Gpr::kRcx;
  AsmInst inst(Op::kMov, {Operand::make_reg(Gpr::kRax, 8),
                          Operand::make_mem(mem, 8)});
  RegEffects fx = effects_of(inst);
  EXPECT_TRUE(fx.writes_mem);
  // rax (data) + rbp, rcx (address) are all read.
  EXPECT_EQ(fx.gpr_reads.size(), 3u);
  EXPECT_TRUE(fx.gpr_writes.empty());
}

TEST(Effects, AluWritesFlagsAndDst) {
  AsmInst inst(Op::kAdd, {Operand::make_reg(Gpr::kRcx, 8),
                          Operand::make_reg(Gpr::kRax, 8)});
  RegEffects fx = effects_of(inst);
  EXPECT_TRUE(fx.writes_flags);
  ASSERT_EQ(fx.gpr_writes.size(), 1u);
  EXPECT_EQ(fx.gpr_writes[0], Gpr::kRax);
  EXPECT_EQ(fx.gpr_reads.size(), 2u);  // dst is also read (RMW)
}

TEST(Effects, SetccReadsFlags) {
  AsmInst inst(Op::kSetcc, Cond::kL, {Operand::make_reg(Gpr::kR11, 1)});
  RegEffects fx = effects_of(inst);
  EXPECT_TRUE(fx.reads_flags);
  EXPECT_FALSE(fx.writes_flags);
  ASSERT_EQ(fx.gpr_writes.size(), 1u);
}

TEST(Effects, PushPopTouchRsp) {
  AsmInst push(Op::kPush, {Operand::make_reg(Gpr::kRbx, 8)});
  RegEffects fx = effects_of(push);
  EXPECT_TRUE(fx.writes_mem);
  bool writes_rsp = false;
  for (Gpr reg : fx.gpr_writes) writes_rsp |= reg == Gpr::kRsp;
  EXPECT_TRUE(writes_rsp);

  AsmInst pop(Op::kPop, {Operand::make_reg(Gpr::kRbx, 8)});
  fx = effects_of(pop);
  EXPECT_TRUE(fx.reads_mem);
}

TEST(RoundTrip, ParsePrintedProgram) {
  AsmProgram program;
  program.globals.push_back({"data", 32, {}});
  AsmFunction fn;
  fn.name = "main";
  AsmBlock block;
  block.label = "entry";
  MemRef frame;
  frame.base = Gpr::kRbp;
  frame.disp = -8;
  block.insts.push_back(AsmInst(Op::kPush, {Operand::make_reg(Gpr::kRbp)}));
  block.insts.push_back(AsmInst(Op::kMov, {Operand::make_reg(Gpr::kRsp),
                                           Operand::make_reg(Gpr::kRbp)}));
  block.insts.push_back(AsmInst(Op::kMov, {Operand::make_imm(7, 4),
                                           Operand::make_mem(frame, 4)}));
  block.insts.push_back(AsmInst(Op::kCmp, {Operand::make_imm(0, 4),
                                           Operand::make_mem(frame, 4)}));
  block.insts.push_back(
      AsmInst(Op::kJcc, Cond::kNe, {Operand::make_label("entry")}));
  block.insts.push_back(AsmInst(Op::kRet, {}));
  fn.blocks.push_back(block);
  program.functions.push_back(fn);

  const std::string printed = print(program);
  DiagEngine diags;
  AsmProgram reparsed = parse_program(printed, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render() << "\n" << printed;
  EXPECT_EQ(print(reparsed), printed);
}

TEST(RoundTrip, SimdInstructions) {
  const char* text =
      "main:\n"
      ".entry:\n"
      "\tmovq\t%rax, %xmm1\n"
      "\tpinsrq\t$1, %rdi, %xmm1\n"
      "\tvinserti128\t$1, %xmm2, %ymm0\n"
      "\tvpxor\t%ymm1, %ymm0, %ymm0\n"
      "\tvptest\t%ymm0, %ymm0\n"
      "\tjne\t.entry\n"
      "\tret\n";
  DiagEngine diags;
  AsmProgram program = parse_program(text, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  const auto& insts = program.functions[0].blocks[0].insts;
  ASSERT_EQ(insts.size(), 7u);
  EXPECT_EQ(insts[0].op, Op::kMovq);
  EXPECT_EQ(insts[1].op, Op::kPinsrq);
  EXPECT_EQ(insts[2].op, Op::kVinserti128);
  EXPECT_EQ(insts[3].op, Op::kVpxor);
  EXPECT_TRUE(insts[3].ops[0].ymm);
  EXPECT_EQ(insts[4].op, Op::kVptest);
  EXPECT_EQ(insts[5].op, Op::kJcc);
  EXPECT_EQ(insts[5].cc, Cond::kNe);
}

TEST(ParserErrors, UnknownMnemonic) {
  DiagEngine diags;
  parse_program("main:\n.entry:\n\tbogus\t%rax\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserErrors, UnknownRegister) {
  DiagEngine diags;
  parse_program("main:\n.entry:\n\tmovq\t%rzz, %rax\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserDetect, FerrumDetectCall) {
  DiagEngine diags;
  AsmProgram program =
      parse_program("main:\n.entry:\n\tcall\t__ferrum_detect\n", diags);
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(program.functions[0].blocks[0].insts[0].op, Op::kDetectTrap);
}

}  // namespace
}  // namespace ferrum::masm
