// Tests for the features beyond the paper's core: multi-bit / multi-site
// faults, selective protection, and forced stack redundancy.
#include <gtest/gtest.h>

#include "eddi/asm_protect.h"
#include "fault/campaign.h"
#include "masm/parser.h"
#include "pipeline/pipeline.h"
#include "support/source_location.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

constexpr const char* kProgram = R"(
  int main() {
    long s = 0L;
    for (int i = 0; i < 20; i++) s += (long)(i * i - 3);
    print_int(s);
    return 0;
  })";

TEST(MultiFault, BurstFlipsAdjacentBits) {
  DiagEngine diags;
  auto program = masm::parse_program(
      "main:\n.entry:\n\tmovq\t$0, %rax\n\tret\n", diags);
  ASSERT_FALSE(diags.has_errors());
  vm::FaultSpec fault;
  fault.site = 0;
  fault.bit = 2;
  fault.burst = 3;
  const auto result = vm::run(program, {}, &fault);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 0b11100);
}

TEST(MultiFault, BurstWrapsWithinWord) {
  DiagEngine diags;
  auto program = masm::parse_program(
      "main:\n.entry:\n\tmovq\t$0, %rax\n\tret\n", diags);
  ASSERT_FALSE(diags.has_errors());
  vm::FaultSpec fault;
  fault.site = 0;
  fault.bit = 63;
  fault.burst = 2;  // bits 63 and 0
  const auto result = vm::run(program, {}, &fault);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(result.return_value),
            (std::uint64_t{1} << 63) | 1u);
}

TEST(MultiFault, TwoIndependentSites) {
  DiagEngine diags;
  auto program = masm::parse_program(
      "main:\n.entry:\n"
      "\tmovq\t$0, %rax\n"
      "\tmovq\t$0, %rcx\n"
      "\taddq\t%rcx, %rax\n"
      "\tret\n", diags);
  ASSERT_FALSE(diags.has_errors());
  std::vector<vm::FaultSpec> faults(2);
  faults[0].site = 0;  // rax write
  faults[0].bit = 0;
  faults[1].site = 1;  // rcx write
  faults[1].bit = 1;
  const auto result = vm::run_multi(program, {}, faults);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.fault_injected);
  EXPECT_EQ(result.return_value, 1 + 2);
}

TEST(MultiFault, CampaignBurstStillFullyCoveredByFerrum) {
  auto build = pipeline::build(kProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 200;
  options.burst = 2;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(fault::Outcome::kSdc), 0);
}

TEST(MultiFault, DoubleFaultCampaignRuns) {
  auto build = pipeline::build(kProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 150;
  options.faults_per_run = 2;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.trials(), 150);
  // Double faults overwhelmingly still get caught; escapes would require
  // both copies of one duplicated value to be struck consistently.
  EXPECT_LE(result.count(fault::Outcome::kSdc), 2);
}

TEST(Selective, RatioScalesProtectedSites) {
  pipeline::BuildOptions full_options;
  auto full = pipeline::build(kProgram, Technique::kFerrum, full_options);

  pipeline::BuildOptions half_options;
  half_options.ferrum.coverage_ratio = 0.5;
  auto half = pipeline::build(kProgram, Technique::kFerrum, half_options);

  EXPECT_EQ(full.asm_stats.skipped_sites, 0u);
  EXPECT_GT(half.asm_stats.skipped_sites, 0u);
  EXPECT_LT(half.program.inst_count(), full.program.inst_count());
  // Roughly half the sites are protected.
  const auto protected_full =
      full.asm_stats.simd_sites + full.asm_stats.general_sites;
  const auto protected_half =
      half.asm_stats.simd_sites + half.asm_stats.general_sites;
  EXPECT_LT(protected_half, protected_full * 3 / 4);
  EXPECT_GT(protected_half, protected_full / 4);
}

TEST(Selective, SemanticsPreservedAtEveryRatio) {
  auto golden_build = pipeline::build(kProgram, Technique::kNone);
  const auto golden = vm::run(golden_build.program);
  for (double ratio : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    pipeline::BuildOptions options;
    options.ferrum.coverage_ratio = ratio;
    auto build = pipeline::build(kProgram, Technique::kFerrum, options);
    const auto result = vm::run(build.program);
    ASSERT_TRUE(result.ok()) << "ratio=" << ratio;
    EXPECT_EQ(result.output, golden.output) << "ratio=" << ratio;
  }
}

TEST(Selective, PartialProtectionLeaksSomeFaults) {
  const auto& w = workloads::by_name("lud");
  pipeline::BuildOptions options;
  options.ferrum.coverage_ratio = 0.2;
  auto build = pipeline::build(w.source, Technique::kFerrum, options);
  fault::CampaignOptions campaign;
  campaign.trials = 300;
  const auto result = fault::run_campaign(build.program, campaign);
  // With 80% of sites unprotected, some SDCs must get through.
  EXPECT_GT(result.count(fault::Outcome::kSdc), 0);
}

TEST(DetectionLatency, HybridDetectsFasterThanFerrum) {
  const auto& w = workloads::by_name("pathfinder");
  fault::CampaignOptions options;
  options.trials = 300;
  auto hybrid_build = pipeline::build(w.source, Technique::kHybrid);
  auto ferrum_build = pipeline::build(w.source, Technique::kFerrum);
  const auto hybrid = fault::run_campaign(hybrid_build.program, options);
  const auto ferrum_result =
      fault::run_campaign(ferrum_build.program, options);
  ASSERT_GT(hybrid.latency_samples, 0);
  ASSERT_GT(ferrum_result.latency_samples, 0);
  // Immediate checks fire within a handful of instructions; deferred
  // SIMD-batched checks pay a wider (but still small) window.
  EXPECT_LT(hybrid.mean_detection_latency(), 8.0);
  EXPECT_GT(ferrum_result.mean_detection_latency(),
            hybrid.mean_detection_latency());
}

TEST(DetectionLatency, FaultStepIsRecorded) {
  auto build = pipeline::build(
      "int main() { print_int(5 + 6); return 0; }", Technique::kFerrum);
  const auto golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());
  vm::FaultSpec fault;
  fault.site = golden.fi_sites / 2;
  fault.bit = 0;
  const auto run = vm::run(build.program, {}, &fault);
  ASSERT_TRUE(run.fault_injected);
  EXPECT_GT(run.fault_step, 0u);
  EXPECT_LE(run.fault_step, run.steps);
}

TEST(StackRedundancy, ForcedModeStillFullyCovers) {
  pipeline::BuildOptions options;
  options.ferrum.force_stack_redundancy = true;
  auto build = pipeline::build(kProgram, Technique::kFerrum, options);
  EXPECT_EQ(build.asm_stats.functions_with_spare_gprs, 0u);
  EXPECT_EQ(build.asm_stats.simd_sites, 0u);  // no spare XMMs either
  fault::CampaignOptions campaign;
  campaign.trials = 250;
  const auto result = fault::run_campaign(build.program, campaign);
  EXPECT_EQ(result.count(fault::Outcome::kSdc), 0);
}

TEST(StackRedundancy, ForcedModePreservesWorkloadSemantics) {
  for (const char* name : {"bfs", "lud", "kmeans"}) {
    const auto& w = workloads::by_name(name);
    auto golden_build = pipeline::build(w.source, Technique::kNone);
    const auto golden = vm::run(golden_build.program);
    pipeline::BuildOptions options;
    options.ferrum.force_stack_redundancy = true;
    auto build = pipeline::build(w.source, Technique::kFerrum, options);
    const auto result = vm::run(build.program);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.output, golden.output) << name;
  }
}

}  // namespace
}  // namespace ferrum
