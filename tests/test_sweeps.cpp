// Configuration sweeps: every (program, backend-budget, technique) cell
// must agree with the IR interpreter. Register-starved backends exercise
// the eviction/spill machinery; register-starved protection exercises
// dead-register scavenging and requisition.
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "frontend/codegen.h"
#include "ir/interp.h"
#include "masm/verifier.h"
#include "pipeline/pipeline.h"
#include "support/source_location.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using pipeline::Technique;

constexpr const char* kSweepPrograms[] = {
    // Deep integer expression pressure.
    R"(int main() {
      int a = 3; int b = 5; int c = 7; int d = 11;
      int e = 13; int f = 17; int g = 19; int h = 23;
      print_int(((a*b)+(c*d)) * ((e*f)+(g*h)) - ((a+h)*(b+g)) * ((c+f)*(d+e)));
      print_int((a^b^c^d) | (e&f&g&h));
      return 0;
    })",
    // FP pressure with conversions.
    R"(int main() {
      double a = 1.5; double b = 2.25; double c = 3.125; double d = 4.0;
      double r = (a*b + c*d) * (a+c) / (b+d) - sqrt(a*d) * (c-b);
      print_f64(r);
      print_int((int)(r * 1000.0));
      return 0;
    })",
    // Loops with mixed types and calls.
    R"(double scale(double x, int k) { return x * (double)k / 7.0; }
    int main() {
      double acc = 0.0;
      for (int i = 1; i <= 12; i++) {
        acc += scale((double)(i * i), i % 5 + 1);
      }
      print_f64(acc);
      return 0;
    })",
    // Control-flow torture: nested conditions and early exits.
    R"(int classify(int x) {
      if (x < 0) { if (x < -10) return -2; return -1; }
      if (x == 0) return 0;
      if (x > 10) { if (x > 100) return 3; return 2; }
      return 1;
    }
    int main() {
      long sig = 0L;
      for (int x = -15; x <= 120; x += 9) {
        sig = sig * 7L + (long)classify(x);
      }
      print_int(sig);
      return 0;
    })",
};

struct SweepParam {
  int program;
  int gprs;
  int xmms;
};

class BackendBudgetSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BackendBudgetSweep, MatchesInterpreter) {
  const SweepParam& param = GetParam();
  const char* source = kSweepPrograms[param.program];
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  ASSERT_NE(module, nullptr) << diags.render();
  const ir::RunResult reference = ir::interpret(*module);
  ASSERT_TRUE(reference.ok());

  backend::BackendOptions options;
  options.max_scratch_gprs = param.gprs;
  options.max_scratch_xmms = param.xmms;
  const auto program = backend::lower(*module, options);
  EXPECT_TRUE(masm::verify_program(program).empty())
      << masm::verify_program_to_string(program);
  const vm::VmResult result = vm::run(program);
  ASSERT_TRUE(result.ok())
      << "gprs=" << param.gprs << " xmms=" << param.xmms << ": "
      << vm::exit_status_name(result.status);
  EXPECT_EQ(result.output, reference.output)
      << "gprs=" << param.gprs << " xmms=" << param.xmms;
}

std::vector<SweepParam> sweep_cases() {
  std::vector<SweepParam> cases;
  for (int program = 0; program < 4; ++program) {
    for (int gprs : {4, 6, 9, 14}) {
      for (int xmms : {2, 4, 16}) {
        cases.push_back({program, gprs, xmms});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Budgets, BackendBudgetSweep,
                         ::testing::ValuesIn(sweep_cases()));

class TechniqueBudgetSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TechniqueBudgetSweep, ProtectionSurvivesStarvedBackend) {
  const SweepParam& param = GetParam();
  const char* source = kSweepPrograms[param.program];

  pipeline::BuildOptions options;
  options.backend.max_scratch_gprs = param.gprs;
  options.backend.max_scratch_xmms = param.xmms;

  auto baseline = pipeline::build(source, Technique::kNone, options);
  const vm::VmResult golden = vm::run(baseline.program);
  ASSERT_TRUE(golden.ok());

  for (Technique technique : {Technique::kIrEddi, Technique::kHybrid,
                              Technique::kFerrum}) {
    auto build = pipeline::build(source, technique, options);
    const vm::VmResult result = vm::run(build.program);
    ASSERT_TRUE(result.ok())
        << pipeline::technique_name(technique) << " gprs=" << param.gprs
        << " xmms=" << param.xmms << ": "
        << vm::exit_status_name(result.status);
    EXPECT_EQ(result.output, golden.output)
        << pipeline::technique_name(technique);
  }
}

std::vector<SweepParam> technique_cases() {
  std::vector<SweepParam> cases;
  for (int program = 0; program < 4; ++program) {
    for (int gprs : {5, 14}) {
      cases.push_back({program, gprs, 16});
    }
    cases.push_back({program, 10, 3});  // xmm-starved
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Budgets, TechniqueBudgetSweep,
                         ::testing::ValuesIn(technique_cases()));

class FerrumKnobSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, bool>> {};

TEST_P(FerrumKnobSweep, AllKnobCombinationsPreserveSemantics) {
  const auto [program, batch, simd, forced] = GetParam();
  const char* source = kSweepPrograms[program];
  auto baseline = pipeline::build(source, Technique::kNone);
  const vm::VmResult golden = vm::run(baseline.program);
  ASSERT_TRUE(golden.ok());

  pipeline::BuildOptions options;
  options.ferrum.simd_batch = batch;
  options.ferrum.use_simd = simd;
  options.ferrum.force_stack_redundancy = forced;
  auto build = pipeline::build(source, Technique::kFerrum, options);
  const vm::VmResult result = vm::run(build.program);
  ASSERT_TRUE(result.ok())
      << "batch=" << batch << " simd=" << simd << " forced=" << forced
      << ": " << vm::exit_status_name(result.status);
  EXPECT_EQ(result.output, golden.output);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, FerrumKnobSweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(1, 2, 4),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace ferrum
