#include <gtest/gtest.h>

#include <cstring>

#include "frontend/codegen.h"
#include "ir/interp.h"
#include "support/source_location.h"

namespace ferrum {
namespace {

/// Compiles MiniC and interprets it; fails the test on frontend errors.
ir::RunResult run_source(const std::string& source,
                         const ir::InterpOptions& options = {}) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  EXPECT_TRUE(module != nullptr) << diags.render();
  if (module == nullptr) return {};
  return ir::interpret(*module, options);
}

std::int64_t as_i64(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }

double as_f64(std::uint64_t raw) {
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

TEST(Interp, ReturnsValue) {
  auto result = run_source("int main() { return 42; }");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 42);
}

TEST(Interp, IntegerArithmetic) {
  auto result = run_source(R"(
    int main() {
      print_int(7 + 3);
      print_int(7 - 10);
      print_int(6 * 7);
      print_int(17 / 5);
      print_int(17 % 5);
      print_int(-17 / 5);
      print_int(-17 % 5);
      print_int(1 << 10);
      print_int(-64 >> 3);
      print_int(12 & 10);
      print_int(12 | 10);
      print_int(12 ^ 10);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.output.size(), 12u);
  EXPECT_EQ(as_i64(result.output[0]), 10);
  EXPECT_EQ(as_i64(result.output[1]), -3);
  EXPECT_EQ(as_i64(result.output[2]), 42);
  EXPECT_EQ(as_i64(result.output[3]), 3);
  EXPECT_EQ(as_i64(result.output[4]), 2);
  EXPECT_EQ(as_i64(result.output[5]), -3);  // C truncation toward zero
  EXPECT_EQ(as_i64(result.output[6]), -2);
  EXPECT_EQ(as_i64(result.output[7]), 1024);
  EXPECT_EQ(as_i64(result.output[8]), -8);
  EXPECT_EQ(as_i64(result.output[9]), 8);
  EXPECT_EQ(as_i64(result.output[10]), 14);
  EXPECT_EQ(as_i64(result.output[11]), 6);
}

TEST(Interp, Int32Wraparound) {
  auto result = run_source(R"(
    int main() {
      int big = 2147483647;
      big = big + 1;
      print_int(big);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), -2147483648LL);
}

TEST(Interp, LongArithmetic) {
  auto result = run_source(R"(
    int main() {
      long x = 4000000000L;
      print_int(x * 2L);
      print_int((long)2147483647 + 1L);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 8000000000LL);
  EXPECT_EQ(as_i64(result.output[1]), 2147483648LL);
}

TEST(Interp, FloatingPoint) {
  auto result = run_source(R"(
    int main() {
      double a = 1.5;
      double b = 2.25;
      print_f64(a + b);
      print_f64(a * b);
      print_f64(a / b);
      print_f64(sqrt(16.0));
      print_f64((double)7);
      print_int((int)(3.99));
      print_int((int)(-3.99));
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(as_f64(result.output[0]), 3.75);
  EXPECT_DOUBLE_EQ(as_f64(result.output[1]), 3.375);
  EXPECT_DOUBLE_EQ(as_f64(result.output[2]), 1.5 / 2.25);
  EXPECT_DOUBLE_EQ(as_f64(result.output[3]), 4.0);
  EXPECT_DOUBLE_EQ(as_f64(result.output[4]), 7.0);
  EXPECT_EQ(as_i64(result.output[5]), 3);   // truncation toward zero
  EXPECT_EQ(as_i64(result.output[6]), -3);
}

TEST(Interp, GlobalInitialisers) {
  auto result = run_source(R"(
    int table[4] = {10, 20, 30, 40};
    double w[2] = {0.5, -0.5};
    int n = 3;
    int main() {
      print_int(table[0] + table[3]);
      print_f64(w[0] + w[1]);
      print_int(n);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 50);
  EXPECT_DOUBLE_EQ(as_f64(result.output[1]), 0.0);
  EXPECT_EQ(as_i64(result.output[2]), 3);
}

TEST(Interp, GlobalsAreZeroInitialised) {
  auto result = run_source(R"(
    int z[8];
    int main() {
      int s = 0;
      for (int i = 0; i < 8; i++) s += z[i];
      print_int(s);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 0);
}

TEST(Interp, RecursionAndCalls) {
  auto result = run_source(R"(
    int ack(int m, int n) {
      if (m == 0) return n + 1;
      if (n == 0) return ack(m - 1, 1);
      return ack(m - 1, ack(m, n - 1));
    }
    int main() { print_int(ack(2, 3)); return 0; })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 9);
}

TEST(Interp, PointerParameters) {
  auto result = run_source(R"(
    void fill(int* p, int n) {
      for (int i = 0; i < n; i++) p[i] = i * 3;
    }
    int total(int* p, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) s += p[i];
      return s;
    }
    int main() {
      int buf[10];
      fill(buf, 10);
      print_int(total(buf, 10));
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 135);
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  auto result = run_source(R"(
    int counter = 0;
    int bump() { counter++; return 1; }
    int main() {
      if (0 && bump()) print_int(999);
      if (1 || bump()) print_int(counter);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(as_i64(result.output[0]), 0);  // bump never ran
}

TEST(Interp, DivideByZeroTraps) {
  auto result = run_source(R"(
    int main() {
      int z = 0;
      print_int(5 / z);
      return 0;
    })");
  EXPECT_EQ(result.status, ir::RunStatus::kTrapDivide);
}

TEST(Interp, OutOfBoundsTraps) {
  auto result = run_source(R"(
    int g[4];
    int main() {
      long big = 99999999L;
      g[big] = 1;
      return 0;
    })");
  EXPECT_EQ(result.status, ir::RunStatus::kTrapMemory);
}

TEST(Interp, StepBudgetTraps) {
  ir::InterpOptions options;
  options.max_steps = 1000;
  auto result = run_source("int main() { while (1) { } return 0; }", options);
  EXPECT_EQ(result.status, ir::RunStatus::kTrapSteps);
}

TEST(Interp, DeepRecursionTraps) {
  auto result = run_source(R"(
    int f(int n) { return f(n + 1); }
    int main() { return f(0); })");
  EXPECT_EQ(result.status, ir::RunStatus::kTrapCallDepth);
}

TEST(Interp, IncrementDecrementSemantics) {
  auto result = run_source(R"(
    int main() {
      int x = 5;
      print_int(x++);
      print_int(x);
      print_int(++x);
      print_int(x--);
      print_int(--x);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 5);
  EXPECT_EQ(as_i64(result.output[1]), 6);
  EXPECT_EQ(as_i64(result.output[2]), 7);
  EXPECT_EQ(as_i64(result.output[3]), 7);
  EXPECT_EQ(as_i64(result.output[4]), 5);
}

TEST(Interp, BreakAndContinue) {
  auto result = run_source(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s += i;
      }
      print_int(s);
      return 0;
    })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(as_i64(result.output[0]), 1 + 3 + 5 + 7 + 9);
}

}  // namespace
}  // namespace ferrum
