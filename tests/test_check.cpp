// ferrum-check self-test: the verifier must accept every unmutated
// protected build (no false positives) and flag protection programs that
// were mutated by deleting or reordering a single protection instruction.
//
// Mutation classes:
//   - structural mutants (deleting a cmp/test/vptest/jcc/push/pop/setcc/
//     detect-trap/ALU-dup, or swapping a protection jcc with its flags
//     producer) break a protection idiom and MUST all be flagged;
//   - value-preserving mutants (deleting a redundant duplicate copy whose
//     destination already holds the same value number, a `sub $0` frame
//     dup, a re-capture of an identical SIMD lane, or a vpxor over
//     constant-zero masters) leave the residual program equivalent — the
//     checker is RIGHT not to flag them, and they are exempt below.
//
// "Flagged" means the mutant either produces a violation or strictly
// grows the unprotected-site set relative to the unmutated baseline —
// both surface through `ferrumc --lint` and the static coverage bench.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "pipeline/pipeline.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

// Blocks reachable from the entry following jumps, conditional jumps and
// fallthrough. Mutants in unreachable padding (e.g. dead trampolines the
// record pass never visits) cannot change observable coverage.
std::set<int> reachable_blocks(const masm::AsmFunction& fn) {
  std::set<int> seen{0};
  std::vector<int> work{0};
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    bool fall = true;
    for (const masm::AsmInst& inst : fn.blocks[static_cast<std::size_t>(b)]
                                         .insts) {
      if (inst.op == masm::Op::kJmp || inst.op == masm::Op::kJcc) {
        const int target = fn.block_index(inst.ops[0].label);
        if (target >= 0 && seen.insert(target).second) work.push_back(target);
        if (inst.op == masm::Op::kJmp) {
          fall = false;
          break;
        }
      } else if (inst.op == masm::Op::kRet ||
                 inst.op == masm::Op::kDetectTrap) {
        fall = false;
        break;
      }
    }
    if (fall && b + 1 < static_cast<int>(fn.blocks.size()) &&
        seen.insert(b + 1).second) {
      work.push_back(b + 1);
    }
  }
  return seen;
}

bool flagged(const check::CheckReport& mutant, const check::CheckReport& base) {
  return !mutant.violations.empty() ||
         mutant.unprotected_sites > base.unprotected_sites;
}

// Deleting these protection ops can leave a value-equivalent program
// (redundant copy, re-captured lane, zero-effect ALU) — exempt from the
// must-flag requirement.
bool value_preserving(masm::Op op) {
  switch (op) {
    case masm::Op::kMov:
    case masm::Op::kMovsd:
    case masm::Op::kMovq:
    case masm::Op::kPinsrq:
    case masm::Op::kVinserti128:
    case masm::Op::kVpxor:
    case masm::Op::kSub:  // frame adjustments duplicate `sub $0, %rsp`
      return true;
    default:
      return false;
  }
}

TEST(Check, CleanOnUnmutatedProtectedBuilds) {
  for (const auto& workload : workloads::all()) {
    for (Technique technique : {Technique::kNone, Technique::kIrEddi,
                                Technique::kHybrid, Technique::kFerrum}) {
      // pipeline::build runs the protect-check pass itself and throws on
      // violations; calling check_program again asserts cleanliness
      // independently of that wiring.
      const auto build = pipeline::build(workload.source, technique);
      const auto report = check::check_program(build.program);
      EXPECT_TRUE(report.clean())
          << workload.name << "/" << pipeline::technique_name(technique)
          << ": " << check::to_string(report.violations.front());
      EXPECT_GT(report.total_sites(), 0u) << workload.name;
      if (technique != Technique::kNone) {
        EXPECT_TRUE(build.check_report.clean()) << workload.name;
      }
    }
  }
}

TEST(Check, CleanAcrossFerrumAblations) {
  for (const auto& workload : workloads::all()) {
    for (int cfg = 0; cfg < 5; ++cfg) {
      pipeline::BuildOptions options;
      check::CheckOptions check_options;
      switch (cfg) {
        case 0: options.ferrum.use_simd = false; break;
        case 1: options.ferrum.simd_batch = 1; break;
        case 2: options.ferrum.force_stack_redundancy = true; break;
        case 3: options.ferrum.coverage_ratio = 0.5; break;
        case 4:
          options.ferrum.protect_store_data = true;
          check_options.store_data_sites = true;
          break;
      }
      const auto build =
          pipeline::build(workload.source, Technique::kFerrum, options);
      const auto report = check::check_program(build.program, check_options);
      EXPECT_TRUE(report.clean())
          << workload.name << " cfg" << cfg << ": "
          << check::to_string(report.violations.front());
    }
  }
}

TEST(Check, DeletionMutantsFlagged) {
  // Deterministic stride keeps the sweep inside a tier-1 budget while
  // still sampling every workload and op class; structural mutants in
  // the sample must be flagged without exception.
  constexpr int kStride = 5;
  int sampled = 0;
  int structural = 0;
  int flagged_total = 0;
  std::map<std::string, std::pair<int, int>> by_op;  // op -> {flagged, total}
  int counter = 0;
  for (const auto& workload : workloads::all()) {
    const auto build = pipeline::build(workload.source, Technique::kFerrum);
    const auto base = check::check_program(build.program);
    ASSERT_TRUE(base.clean()) << workload.name;
    for (std::size_t f = 0; f < build.program.functions.size(); ++f) {
      const masm::AsmFunction& fn = build.program.functions[f];
      const std::set<int> reach = reachable_blocks(fn);
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (reach.count(static_cast<int>(b)) == 0) continue;
        for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
          const masm::AsmInst& victim = fn.blocks[b].insts[i];
          if (victim.origin != masm::InstOrigin::kProtection) continue;
          if (counter++ % kStride != 0) continue;
          masm::AsmProgram mutant = build.program;
          auto& insts = mutant.functions[f].blocks[b].insts;
          insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(i));
          const auto report = check::check_program(mutant);
          const bool hit = flagged(report, base);
          ++sampled;
          flagged_total += hit ? 1 : 0;
          auto& tally = by_op[masm::op_mnemonic(victim.op)];
          tally.first += hit ? 1 : 0;
          ++tally.second;
          if (!value_preserving(victim.op)) {
            ++structural;
            EXPECT_TRUE(hit)
                << workload.name << " " << fn.name << "/b" << b << "#" << i
                << ": deleting `" << victim.to_string()
                << "` was not flagged";
          }
        }
      }
    }
  }
  // Sanity on the sweep itself: a broad sample with plenty of
  // structural mutants (duplicate copies dominate by count, so the
  // structural share is well under half but still large).
  EXPECT_GT(sampled, 500);
  EXPECT_GT(structural, sampled / 3);
  // Value-preserving deletions are a small minority of all mutants, so
  // the overall detection rate stays high even with the exemption.
  EXPECT_GE(flagged_total * 10, sampled * 9)
      << "flagged " << flagged_total << "/" << sampled;
  // The sweep must have exercised the core check shapes.
  for (const char* op : {"cmp", "j", "vptest"}) {
    EXPECT_GT(by_op[op].second, 0) << "no " << op << " mutants sampled";
  }
}

TEST(Check, ReorderMutantsFlagged) {
  // Swapping a protection jcc with the flags producer it consumes
  // detaches the detect branch from its check; every such reorder must
  // be flagged.
  constexpr int kStride = 3;
  int sampled = 0;
  int counter = 0;
  for (const auto& workload : workloads::all()) {
    const auto build = pipeline::build(workload.source, Technique::kFerrum);
    const auto base = check::check_program(build.program);
    ASSERT_TRUE(base.clean()) << workload.name;
    for (std::size_t f = 0; f < build.program.functions.size(); ++f) {
      const masm::AsmFunction& fn = build.program.functions[f];
      const std::set<int> reach = reachable_blocks(fn);
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (reach.count(static_cast<int>(b)) == 0) continue;
        for (std::size_t i = 1; i < fn.blocks[b].insts.size(); ++i) {
          const masm::AsmInst& jcc = fn.blocks[b].insts[i];
          if (jcc.origin != masm::InstOrigin::kProtection) continue;
          if (jcc.op != masm::Op::kJcc) continue;
          const masm::Op producer = fn.blocks[b].insts[i - 1].op;
          if (producer != masm::Op::kCmp && producer != masm::Op::kTest &&
              producer != masm::Op::kVptest) {
            continue;
          }
          if (counter++ % kStride != 0) continue;
          masm::AsmProgram mutant = build.program;
          auto& insts = mutant.functions[f].blocks[b].insts;
          std::swap(insts[i - 1], insts[i]);
          const auto report = check::check_program(mutant);
          ++sampled;
          EXPECT_TRUE(flagged(report, base))
              << workload.name << " " << fn.name << "/b" << b << "#" << i
              << ": swapping `" << fn.blocks[b].insts[i - 1].to_string()
              << "` with `" << jcc.to_string() << "` was not flagged";
        }
      }
    }
  }
  EXPECT_GT(sampled, 100);
}

TEST(Check, ViolationsRenderAndExportOnMutant) {
  // Delete the first protection cmp of a ferrum build and confirm the
  // violation surfaces through to_string and the JSON artifact.
  const auto& workload = workloads::by_name("bfs");
  auto build = pipeline::build(workload.source, Technique::kFerrum);
  bool mutated = false;
  for (auto& fn : build.program.functions) {
    for (auto& block : fn.blocks) {
      for (std::size_t i = 0; i < block.insts.size() && !mutated; ++i) {
        if (block.insts[i].origin == masm::InstOrigin::kProtection &&
            block.insts[i].op == masm::Op::kCmp) {
          block.insts.erase(block.insts.begin() +
                            static_cast<std::ptrdiff_t>(i));
          mutated = true;
        }
      }
      if (mutated) break;
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  const auto report = check::check_program(build.program);
  ASSERT_FALSE(report.clean());
  const std::string rendered = check::to_string(report.violations.front());
  EXPECT_NE(rendered.find(check::violation_kind_name(
                report.violations.front().kind)),
            std::string::npos);

  telemetry::Json json = check::to_json(report);
  EXPECT_EQ(json["schema"].as_string(), "ferrum.check.v1");
  EXPECT_EQ(json["violations"].size(), report.violations.size());
  EXPECT_EQ(json["site_counts"]["unprotected"].as_uint(),
            report.unprotected_sites);
  // Deterministic: dumping twice gives byte-identical artifacts.
  EXPECT_EQ(json.dump(), check::to_json(report).dump());
}

}  // namespace
}  // namespace ferrum
