#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace ferrum {
namespace {

std::unique_ptr<ir::Module> compile_ok(const std::string& source) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  EXPECT_NE(module, nullptr) << diags.render();
  return module;
}

bool compile_fails(const std::string& source, const std::string& needle = "") {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  if (module != nullptr) return false;
  if (!needle.empty()) {
    EXPECT_NE(diags.render().find(needle), std::string::npos)
        << diags.render();
  }
  return true;
}

std::string ir_of(const std::string& source) {
  auto module = compile_ok(source);
  return module ? ir::print(*module) : "";
}

TEST(Codegen, ModuleAlwaysVerifies) {
  auto module = compile_ok(R"(
    int helper(int x) { return x * 2; }
    double gd[4] = {1.0, 2.0, 3.0, 4.0};
    int main() {
      double acc = 0.0;
      for (int i = 0; i < 4; i++) acc += gd[i];
      if (acc > 5.0 && helper(3) == 6) print_f64(acc);
      return 0;
    })");
  ASSERT_NE(module, nullptr);
  EXPECT_TRUE(ir::verify(*module).empty()) << ir::verify_to_string(*module);
}

TEST(Codegen, ArgumentsGetAddressableSlots) {
  // The clang -O0 "a.addr" pattern from the paper's Fig 2.
  const std::string text = ir_of("int add(int a, int b) { return a + b; }");
  EXPECT_NE(text.find("alloca i32"), std::string::npos);
  EXPECT_NE(text.find("store i32 %a"), std::string::npos);
  EXPECT_NE(text.find("store i32 %b"), std::string::npos);
  EXPECT_NE(text.find("add i32"), std::string::npos);
}

TEST(Codegen, ConditionsUseDirectI1Compares) {
  // Comparisons in condition position must not round-trip through zext.
  const std::string text =
      ir_of("int main() { int x = 1; if (x < 5) print_int(1); return 0; }");
  EXPECT_NE(text.find("icmp lt i32"), std::string::npos);
  // The branch consumes the i1 directly; there is no zext-of-this-compare.
  EXPECT_EQ(text.find("zext"), std::string::npos) << text;
}

TEST(Codegen, ComparisonAsValueYieldsInt) {
  const std::string text =
      ir_of("int main() { int x = 1; int y = x < 5; print_int(y); return 0; }");
  EXPECT_NE(text.find("zext i1"), std::string::npos);
}

TEST(Codegen, PointerArithmeticLowersToGep) {
  const std::string text = ir_of(
      "int peek(int* p, int i) { return (p + i)[0]; }");
  EXPECT_NE(text.find("gep i32*"), std::string::npos);
}

TEST(Codegen, IndexingSignExtendsTheSubscript) {
  const std::string text = ir_of(
      "int g[8]; int main() { int i = 3; print_int(g[i]); return 0; }");
  EXPECT_NE(text.find("sext i32"), std::string::npos);
  EXPECT_NE(text.find("gep i32*"), std::string::npos);
}

TEST(Codegen, UsualArithmeticConversions) {
  const std::string text = ir_of(R"(
    int main() {
      int i = 3;
      long l = 4L;
      double d = 5.0;
      print_int(i + l);     // sext i32 -> i64
      print_f64(i + d);     // sitofp
      print_f64(l + d);
      return 0;
    })");
  EXPECT_NE(text.find("sext i32"), std::string::npos);
  EXPECT_NE(text.find("sitofp"), std::string::npos);
  EXPECT_NE(text.find("fadd"), std::string::npos);
}

TEST(Codegen, ExplicitCasts) {
  const std::string text = ir_of(R"(
    int main() {
      double d = 3.7;
      long l = 100L;
      print_int((int)d);
      print_int((long)d);
      print_int((int)l);
      print_f64((double)l);
      return 0;
    })");
  EXPECT_NE(text.find("fptosi f64"), std::string::npos);
  EXPECT_NE(text.find("trunc i64"), std::string::npos);
  EXPECT_NE(text.find("sitofp i64"), std::string::npos);
}

TEST(Codegen, ShortCircuitCreatesControlFlow) {
  const std::string text = ir_of(
      "int main() { int a = 1; int b = 2; if (a && b) print_int(1); "
      "return 0; }");
  EXPECT_NE(text.find("land.rhs"), std::string::npos);
  EXPECT_NE(text.find("land.end"), std::string::npos);
}

TEST(Codegen, BuiltinSignatures) {
  auto module = compile_ok(R"(
    int main() {
      print_int(1);        // int converted to i64
      print_f64(2);        // int converted to f64
      print_f64(sqrt(2.0));
      return 0;
    })");
  ASSERT_NE(module, nullptr);
  const ir::Function* print_int = module->find_function("print_int");
  ASSERT_NE(print_int, nullptr);
  EXPECT_EQ(print_int->args()[0]->type(), ir::Type::i64());
  const ir::Function* sqrt_fn = module->find_function("sqrt");
  ASSERT_NE(sqrt_fn, nullptr);
  EXPECT_EQ(sqrt_fn->return_type(), ir::Type::f64());
}

TEST(Codegen, EveryPathGetsATerminator) {
  auto module = compile_ok(R"(
    int f(int x) {
      if (x > 0) return 1;
      // fall off the end: implicit return 0
    }
    int main() { print_int(f(-1)); return 0; })");
  ASSERT_NE(module, nullptr);
  EXPECT_TRUE(ir::verify(*module).empty());
}

TEST(Codegen, ScopeShadowing) {
  auto module = compile_ok(R"(
    int main() {
      int x = 1;
      { int x = 2; print_int(x); }
      print_int(x);
      return 0;
    })");
  EXPECT_NE(module, nullptr);
}

TEST(CodegenErrors, UndeclaredVariable) {
  EXPECT_TRUE(compile_fails("int main() { return missing; }", "undeclared"));
}

TEST(CodegenErrors, UndeclaredFunction) {
  EXPECT_TRUE(compile_fails("int main() { return nope(); }", "undeclared"));
}

TEST(CodegenErrors, RedeclarationInSameScope) {
  EXPECT_TRUE(compile_fails("int main() { int a; int a; return 0; }",
                            "redeclaration"));
}

TEST(CodegenErrors, PointerLocalsRejected) {
  EXPECT_TRUE(compile_fails("int g[4]; int main() { int* p; return 0; }",
                            "pointer local"));
}

TEST(CodegenErrors, AssignToArrayName) {
  EXPECT_TRUE(compile_fails(
      "int main() { int a[4]; int b[4]; a = b; return 0; }", "assignable"));
}

TEST(CodegenErrors, BreakOutsideLoop) {
  EXPECT_TRUE(compile_fails("int main() { break; return 0; }", "break"));
}

TEST(CodegenErrors, WrongArgumentCount) {
  EXPECT_TRUE(compile_fails(
      "int g(int a) { return a; } int main() { return g(1, 2); }",
      "arguments"));
}

TEST(CodegenErrors, ModuloOnDoubles) {
  EXPECT_TRUE(compile_fails("int main() { double d = 1.0 ; print_f64(2.0); "
                            "d = d % 2.0; return 0; }"));
}

TEST(CodegenErrors, VoidFunctionReturningValue) {
  EXPECT_TRUE(compile_fails("void f() { return 3; } int main() { return 0; }",
                            "void"));
}

TEST(CodegenErrors, PointerConditionRejected) {
  EXPECT_TRUE(compile_fails(
      "int f(int* p) { if (p) return 1; return 0; } "
      "int main() { return 0; }"));
}

}  // namespace
}  // namespace ferrum
