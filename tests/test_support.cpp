#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "support/env.h"
#include "support/rng.h"
#include "support/source_location.h"
#include "support/str.h"

namespace ferrum {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, KnownSplitmixSequence) {
  // Reference values from the splitmix64 paper implementation.
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 1234567;
  EXPECT_EQ(first, splitmix64(state2));
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.next_in_range(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    if (value == -3) saw_lo = true;
    if (value == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FullInt64RangeIsNotDegenerate) {
  // Regression: [INT64_MIN, INT64_MAX] wraps the span computation to 0,
  // which used to collapse every draw to lo.
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  Rng rng(123);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.next_in_range(kLo, kHi));
  EXPECT_GT(seen.size(), 60u);  // 64 draws over 2^64 values: all distinct
  EXPECT_NE(*seen.begin(), *seen.rbegin());
}

TEST(Rng, FullInt64RangeMatchesRawStream) {
  // The wrapped span consumes exactly one raw draw per value.
  Rng a(5);
  Rng b(5);
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_in_range(kLo, kHi),
              static_cast<std::int64_t>(b.next_u64()));
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, SplitIsIndependent) {
  Rng a(5);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Env, ParseIntAcceptsWholeIntegers) {
  int out = 0;
  EXPECT_TRUE(parse_int("123", out));
  EXPECT_EQ(out, 123);
  EXPECT_TRUE(parse_int("-45", out));
  EXPECT_EQ(out, -45);
  EXPECT_TRUE(parse_int("0", out));
  EXPECT_EQ(out, 0);
}

TEST(Env, ParseIntRejectsGarbage) {
  int out = 77;
  EXPECT_FALSE(parse_int(nullptr, out));
  EXPECT_FALSE(parse_int("", out));
  EXPECT_FALSE(parse_int("abc", out));
  EXPECT_FALSE(parse_int("10O0", out));   // the motivating typo
  EXPECT_FALSE(parse_int("12x", out));
  EXPECT_FALSE(parse_int("1 2", out));
  EXPECT_FALSE(parse_int("99999999999999999999", out));  // overflow
  EXPECT_EQ(out, 77);  // untouched on failure
}

TEST(Env, EnvIntFallsBackOnGarbage) {
  // Regression: atoi silently read FERRUM_TRIALS=10O0 as 10 and
  // FERRUM_TRIALS=abc as 0 trials.
  ::setenv("FERRUM_TEST_KNOB", "10O0", 1);
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 400);
  ::setenv("FERRUM_TEST_KNOB", "abc", 1);
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 400);
  ::unsetenv("FERRUM_TEST_KNOB");
}

TEST(Env, EnvIntRejectsNonPositiveWhereCountRequired) {
  ::setenv("FERRUM_TEST_KNOB", "0", 1);
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 400);
  ::setenv("FERRUM_TEST_KNOB", "-8", 1);
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 400);
  // ... but a relaxed floor admits them.
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400, -100), -8);
  ::unsetenv("FERRUM_TEST_KNOB");
}

TEST(Env, EnvIntReadsValidValues) {
  ::setenv("FERRUM_TEST_KNOB", "2500", 1);
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 2500);
  ::unsetenv("FERRUM_TEST_KNOB");
  EXPECT_EQ(env_int("FERRUM_TEST_KNOB", 400), 400);  // unset -> fallback
}

// The shared experiment knobs (FERRUM_TRIALS / FERRUM_SCALE / FERRUM_JOBS)
// are defined once in support/env and reused by benches and ferrumc.
TEST(Env, SharedKnobTrials) {
  ::unsetenv("FERRUM_TRIALS");
  EXPECT_EQ(env_trials(), 1000);
  EXPECT_EQ(env_trials(250), 250);
  ::setenv("FERRUM_TRIALS", "64", 1);
  EXPECT_EQ(env_trials(), 64);
  ::setenv("FERRUM_TRIALS", "0", 1);  // below the floor of 1
  EXPECT_EQ(env_trials(), 1000);
  ::unsetenv("FERRUM_TRIALS");
}

TEST(Env, SharedKnobScale) {
  ::unsetenv("FERRUM_SCALE");
  EXPECT_EQ(env_scale(), 2);
  EXPECT_EQ(env_scale(5), 5);
  ::setenv("FERRUM_SCALE", "3", 1);
  EXPECT_EQ(env_scale(), 3);
  ::setenv("FERRUM_SCALE", "junk", 1);
  EXPECT_EQ(env_scale(), 2);
  ::unsetenv("FERRUM_SCALE");
}

TEST(Env, SharedKnobJobs) {
  ::setenv("FERRUM_JOBS", "3", 1);
  EXPECT_EQ(env_jobs(), 3);
  ::unsetenv("FERRUM_JOBS");
  EXPECT_GE(env_jobs(), 1);  // hardware concurrency, at least 1
}

TEST(Env, SharedKnobCkptStride) {
  ::unsetenv("FERRUM_CKPT_STRIDE");
  EXPECT_EQ(env_ckpt_stride(), 64);
  EXPECT_EQ(env_ckpt_stride(128), 128);
  ::setenv("FERRUM_CKPT_STRIDE", "16", 1);
  EXPECT_EQ(env_ckpt_stride(), 16);
  // Floor is 0, not 1: zero is meaningful (disables checkpointing).
  ::setenv("FERRUM_CKPT_STRIDE", "0", 1);
  EXPECT_EQ(env_ckpt_stride(), 0);
  ::setenv("FERRUM_CKPT_STRIDE", "-4", 1);
  EXPECT_EQ(env_ckpt_stride(), 64);
  ::setenv("FERRUM_CKPT_STRIDE", "6O", 1);  // atoi would read 6
  EXPECT_EQ(env_ckpt_stride(), 64);
  ::unsetenv("FERRUM_CKPT_STRIDE");
}

TEST(Str, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Str, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(starts_with("ferrum", "fer"));
  EXPECT_FALSE(starts_with("fe", "fer"));
  EXPECT_TRUE(ends_with("ferrum", "rum"));
  EXPECT_FALSE(ends_with("um", "rum"));
}

TEST(Str, FormatDoubleRoundTrips) {
  for (double value : {0.0, 1.5, -2.25, 3.141592653589793, 1e-12, 1e300}) {
    const std::string text = format_double(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Diag, CollectsAndRenders) {
  DiagEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.error({3, 7}, "bad thing");
  diags.warning({1, 1}, "iffy thing");
  diags.note({}, "context");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  const std::string rendered = diags.render();
  EXPECT_NE(rendered.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(rendered.find("warning: iffy thing"), std::string::npos);
  EXPECT_NE(rendered.find("note: context"), std::string::npos);
}

}  // namespace
}  // namespace ferrum
