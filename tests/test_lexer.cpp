#include <gtest/gtest.h>

#include "frontend/lexer.h"

namespace ferrum::minic {
namespace {

std::vector<Token> lex_ok(std::string_view source) {
  DiagEngine diags;
  auto tokens = lex(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return tokens;
}

std::vector<Tok> kinds(const std::vector<Token>& tokens) {
  std::vector<Tok> out;
  for (const Token& token : tokens) out.push_back(token.kind);
  return out;
}

TEST(Lexer, EmptyInputIsJustEof) {
  auto tokens = lex_ok("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Tok::kEof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto tokens = lex_ok("int long double void if else while for return "
                       "break continue foo _bar x9");
  auto k = kinds(tokens);
  std::vector<Tok> expected = {
      Tok::kKwInt, Tok::kKwLong, Tok::kKwDouble, Tok::kKwVoid, Tok::kKwIf,
      Tok::kKwElse, Tok::kKwWhile, Tok::kKwFor, Tok::kKwReturn, Tok::kKwBreak,
      Tok::kKwContinue, Tok::kIdent, Tok::kIdent, Tok::kIdent, Tok::kEof};
  EXPECT_EQ(k, expected);
  EXPECT_EQ(tokens[11].text, "foo");
  EXPECT_EQ(tokens[12].text, "_bar");
  EXPECT_EQ(tokens[13].text, "x9");
}

TEST(Lexer, IntegerLiterals) {
  auto tokens = lex_ok("0 42 2147483647 5L");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 2147483647);
  EXPECT_EQ(tokens[3].int_value, 5);
  EXPECT_EQ(tokens[3].text, "L");  // long marker
}

TEST(Lexer, FloatLiterals) {
  auto tokens = lex_ok("1.5 0.25 2e3 1.5e-2 .75");
  EXPECT_EQ(tokens[0].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.015);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.75);
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto tokens = lex_ok("++ -- += -= *= /= %= << >> <= >= == != && || < > =");
  std::vector<Tok> expected = {
      Tok::kPlusPlus, Tok::kMinusMinus, Tok::kPlusAssign, Tok::kMinusAssign,
      Tok::kStarAssign, Tok::kSlashAssign, Tok::kPercentAssign, Tok::kShl,
      Tok::kShr, Tok::kLe, Tok::kGe, Tok::kEq, Tok::kNe, Tok::kAndAnd,
      Tok::kOrOr, Tok::kLt, Tok::kGt, Tok::kAssign, Tok::kEof};
  EXPECT_EQ(kinds(tokens), expected);
}

TEST(Lexer, Punctuation) {
  auto tokens = lex_ok("( ) { } [ ] , ; ~ ^ & | ! + - * / %");
  std::vector<Tok> expected = {
      Tok::kLParen, Tok::kRParen, Tok::kLBrace, Tok::kRBrace, Tok::kLBracket,
      Tok::kRBracket, Tok::kComma, Tok::kSemi, Tok::kTilde, Tok::kCaret,
      Tok::kAmp, Tok::kPipe, Tok::kBang, Tok::kPlus, Tok::kMinus, Tok::kStar,
      Tok::kSlash, Tok::kPercent, Tok::kEof};
  EXPECT_EQ(kinds(tokens), expected);
}

TEST(Lexer, LineCommentsSkipped) {
  auto tokens = lex_ok("a // comment with symbols +-*/\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  auto tokens = lex_ok("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].loc.line, 3);
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagEngine diags;
  lex("a /* never closed", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnknownCharacterIsError) {
  DiagEngine diags;
  lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = lex_ok("a\n  b\n    c");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
  EXPECT_EQ(tokens[2].loc.line, 3);
  EXPECT_EQ(tokens[2].loc.column, 5);
}

}  // namespace
}  // namespace ferrum::minic
