#include <gtest/gtest.h>

#include "backend/backend.h"
#include "eddi/asm_protect.h"
#include "eddi/ferrum.h"
#include "frontend/codegen.h"
#include "masm/masm.h"
#include "support/source_location.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

masm::AsmProgram lower_source(const std::string& source,
                              const backend::BackendOptions& options = {}) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  EXPECT_NE(module, nullptr) << diags.render();
  return backend::lower(*module, options);
}

/// Protects and verifies semantics are unchanged against the unprotected
/// program.
eddi::AsmProtectStats protect_and_check(masm::AsmProgram& program,
                                        const eddi::AsmProtectOptions& options
                                        = {}) {
  const vm::VmResult before = vm::run(program);
  EXPECT_TRUE(before.ok()) << vm::exit_status_name(before.status);
  const auto stats = eddi::protect_asm(program, options);
  const vm::VmResult after = vm::run(program);
  EXPECT_TRUE(after.ok()) << vm::exit_status_name(after.status) << "\n"
                          << masm::print(program);
  EXPECT_EQ(after.output, before.output);
  EXPECT_EQ(after.return_value, before.return_value);
  return stats;
}

constexpr const char* kMixedProgram = R"(
  int helper(int a, int b) { return a * b + a - b; }
  double gd[4] = {1.0, 2.5, -3.0, 4.25};
  int gi[8];
  int main() {
    for (int i = 0; i < 8; i++) gi[i] = helper(i, i + 2);
    long s = 0L;
    for (int i = 0; i < 8; i++) s += gi[i];
    print_int(s);
    double acc = 0.0;
    for (int i = 0; i < 4; i++) acc += gd[i] * gd[i];
    print_f64(sqrt(acc));
    int shift = 3;
    print_int((s << shift) >> 2);
    print_int(s / 7L);
    print_int(s % 7L);
    return 0;
  })";

TEST(AsmProtect, FerrumPreservesSemantics) {
  auto program = lower_source(kMixedProgram);
  const auto stats = protect_and_check(program);
  EXPECT_GT(stats.simd_sites, 0u);
  EXPECT_GT(stats.general_sites, 0u);
  EXPECT_GT(stats.compare_clusters, 0u);
  EXPECT_GT(stats.edge_blocks, 0u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_EQ(stats.unprotected_sites, 0u);
}

TEST(AsmProtect, HybridConfigPreservesSemantics) {
  auto program = lower_source(kMixedProgram);
  eddi::AsmProtectOptions options;
  options.use_simd = false;
  options.protect_branches = false;
  const auto stats = protect_and_check(program, options);
  EXPECT_EQ(stats.simd_sites, 0u);
  EXPECT_GT(stats.general_sites, 0u);
  EXPECT_EQ(stats.compare_clusters, 0u);
  EXPECT_EQ(stats.edge_blocks, 0u);
}

TEST(AsmProtect, BatchWidthsAllWork) {
  for (int batch : {1, 2, 4}) {
    auto program = lower_source(kMixedProgram);
    eddi::AsmProtectOptions options;
    options.simd_batch = batch;
    const auto stats = protect_and_check(program, options);
    EXPECT_GT(stats.flushes, 0u) << "batch=" << batch;
  }
}

TEST(AsmProtect, WiderBatchesMeanFewerFlushes) {
  auto narrow_program = lower_source(kMixedProgram);
  auto wide_program = lower_source(kMixedProgram);
  eddi::AsmProtectOptions narrow;
  narrow.simd_batch = 1;
  eddi::AsmProtectOptions wide;
  wide.simd_batch = 4;
  const auto narrow_stats = eddi::protect_asm(narrow_program, narrow);
  const auto wide_stats = eddi::protect_asm(wide_program, wide);
  EXPECT_GT(narrow_stats.flushes, wide_stats.flushes);
}

TEST(AsmProtect, StoreDataOptionAddsChecks) {
  auto plain = lower_source(kMixedProgram);
  auto checked = lower_source(kMixedProgram);
  eddi::AsmProtectOptions with_stores;
  with_stores.protect_store_data = true;
  const auto plain_stats = eddi::protect_asm(plain, {});
  const auto store_stats = eddi::protect_asm(checked, with_stores);
  EXPECT_EQ(plain_stats.store_checks, 0u);
  EXPECT_GT(store_stats.store_checks, plain_stats.store_checks);
  // Still semantics-preserving.
  const auto result = vm::run(checked);
  EXPECT_TRUE(result.ok());
}

TEST(AsmProtect, ScarceRegistersFallBackToRequisition) {
  backend::BackendOptions tight;
  tight.max_scratch_gprs = 14;  // use the whole file, including r10-r15
  auto program = lower_source(R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4;
      int e = 5; int f = 6; int g = 7; int h = 8;
      int r = (a + b) * (c + d) + (e + f) * (g + h) +
              (a ^ b) * (c | d) + (e & f) * (g - h) +
              (a + c) * (e + g) * (b + d) * (f + h);
      print_int(r);
      return 0;
    })", tight);
  const auto stats = protect_and_check(program);
  EXPECT_EQ(stats.unprotected_sites, 0u);
}

TEST(AsmProtect, SimdDisabledWhenNoSpareXmms) {
  auto program = lower_source(kMixedProgram);
  eddi::AsmProtectOptions no_simd;
  no_simd.use_simd = false;
  const auto stats = eddi::protect_asm(program, no_simd);
  EXPECT_EQ(stats.simd_sites, 0u);
  EXPECT_EQ(stats.functions_with_spare_xmms, 0u);
}

TEST(AsmProtect, EveryFunctionGetsDetector) {
  auto program = lower_source(kMixedProgram);
  eddi::protect_asm(program, {});
  for (const auto& fn : program.functions) {
    bool has_detect = false;
    for (const auto& block : fn.blocks) {
      for (const auto& inst : block.insts) {
        has_detect |= inst.op == masm::Op::kDetectTrap;
      }
    }
    EXPECT_TRUE(has_detect) << fn.name;
  }
}

TEST(AsmProtect, EdgeTrampolinesSplitBranches) {
  auto program = lower_source(
      "int main() { int x = 3; if (x < 5) print_int(1); return 0; }");
  eddi::protect_asm(program, {});
  const masm::AsmFunction* main_fn = program.find_function("main");
  int edge_blocks = 0;
  for (const auto& block : main_fn->blocks) {
    if (block.label.rfind("edge.", 0) == 0) ++edge_blocks;
  }
  EXPECT_EQ(edge_blocks, 2);  // taken + fallthrough edges
}

TEST(AsmProtect, ProtectionInstructionsAreTagged) {
  auto program = lower_source(
      "int main() { int x = 3; print_int(x + 1); return 0; }");
  const std::size_t before = program.inst_count();
  eddi::protect_asm(program, {});
  std::size_t protection = 0;
  for (const auto& fn : program.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& inst : block.insts) {
        protection += inst.origin == masm::InstOrigin::kProtection;
      }
    }
  }
  EXPECT_EQ(program.inst_count() - before, protection);
}

// ---------------------------------------------------------------------------
// Fault-coverage audit: exhaustively inject one fault into EVERY dynamic
// site of a protected program and require that no injection produces an
// SDC. This is the mechanical core of the paper's 100%-coverage claim.

void exhaustive_audit(const std::string& source,
                      const eddi::AsmProtectOptions& options,
                      const vm::VmOptions& vm_options = {}) {
  auto program = lower_source(source);
  eddi::protect_asm(program, options);
  const vm::VmResult golden = vm::run(program, vm_options);
  ASSERT_TRUE(golden.ok());
  vm::VmOptions faulty_options = vm_options;
  faulty_options.max_steps = golden.steps * 16 + 10'000;
  int detected = 0;
  for (std::uint64_t site = 0; site < golden.fi_sites; ++site) {
    for (int bit : {0, 1, 17, 63}) {
      vm::FaultSpec fault;
      fault.site = site;
      fault.bit = bit;
      const vm::VmResult run = vm::run(program, faulty_options, &fault);
      if (run.ok()) {
        EXPECT_EQ(run.output, golden.output)
            << "SDC at site " << site << " bit " << bit << " ("
            << (run.fault_landing
                    ? vm::fault_kind_name(run.fault_landing->kind)
                    : "?")
            << ")";
      } else if (run.status == vm::ExitStatus::kDetected) {
        ++detected;
      }
      // Crashes are acceptable (not silent corruptions).
    }
  }
  EXPECT_GT(detected, 0);
}

TEST(AsmProtectAudit, FerrumArithmeticProgram) {
  exhaustive_audit(R"(
    int main() {
      int a = 12;
      int b = 34;
      print_int(a * b + a - b);
      print_int(a % 5 + b / 3);
      return 0;
    })", {});
}

TEST(AsmProtectAudit, FerrumBranchyProgram) {
  exhaustive_audit(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 6; i++) {
        if (i % 2 == 0) s += i; else s -= 1;
      }
      print_int(s);
      return 0;
    })", {});
}

TEST(AsmProtectAudit, FerrumFloatingProgram) {
  exhaustive_audit(R"(
    int main() {
      double a = 1.5;
      double b = 2.25;
      double c = a * b + sqrt(a + b);
      if (c > 3.0) print_f64(c); else print_f64(-c);
      print_int((int)(c * 100.0));
      return 0;
    })", {});
}

TEST(AsmProtectAudit, FerrumCallProgram) {
  exhaustive_audit(R"(
    int twice(int x) { return x + x; }
    int main() {
      print_int(twice(twice(5)) + twice(3));
      return 0;
    })", {});
}

TEST(AsmProtectAudit, ExtendedStoreFaultModel) {
  eddi::AsmProtectOptions options;
  options.protect_store_data = true;
  vm::VmOptions vm_options;
  vm_options.fault_store_data = true;
  exhaustive_audit(R"(
    int g[4];
    int main() {
      for (int i = 0; i < 4; i++) g[i] = i * 7;
      print_int(g[0] + g[1] + g[2] + g[3]);
      return 0;
    })", options, vm_options);
}

TEST(FerrumWrapper, ReportsTimingAndGrowth) {
  auto program = lower_source(kMixedProgram);
  const std::size_t before = program.inst_count();
  const eddi::FerrumReport report = eddi::apply_ferrum(program);
  EXPECT_EQ(report.static_instructions_before, before);
  EXPECT_EQ(report.static_instructions_after, program.inst_count());
  EXPECT_GT(report.static_instructions_after, before);
  EXPECT_GE(report.seconds, 0.0);
}

}  // namespace
}  // namespace ferrum
