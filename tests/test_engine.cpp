// Equivalence suite for the snapshot/fast-forward execution engine
// (src/vm/engine.h). The engine's contract is that checkpointing is pure
// observability: for any stride and any worker count, a campaign or audit
// produces the byte-identical deterministic result that cold execution
// does. These tests assert that contract — over every workload, every
// technique, multi-fault/burst/store-data configurations, and down at the
// single-run level where each VmResult field is compared directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "masm/masm.h"
#include "masm/parser.h"
#include "pipeline/pipeline.h"
#include "support/rng.h"
#include "support/source_location.h"
#include "telemetry/export.h"
#include "vm/engine.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

constexpr Technique kAllTechniques[] = {Technique::kNone, Technique::kIrEddi,
                                        Technique::kHybrid,
                                        Technique::kFerrum};

// A stride far past any workload's dynamic site count: only the site-0
// checkpoint exists, so every trial restores the initial state (the
// degenerate fast-forward that must still match cold execution).
constexpr int kHugeStride = 1 << 30;

constexpr const char* kSmallProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 12; i++) s += i * i;
    print_int(s);
    return 0;
  })";

/// The deterministic section of a campaign, as the BENCH artifacts
/// serialise it. Byte-equality of these strings is the satellite's
/// "byte-identical campaign JSON" acceptance criterion.
std::string campaign_json(const masm::AsmProgram& program,
                          fault::CampaignOptions options, int stride,
                          int jobs) {
  options.ckpt_stride = stride;
  options.jobs = jobs;
  return telemetry::to_json(fault::run_campaign(program, options)).dump();
}

std::string audit_json(const masm::AsmProgram& program,
                       fault::AuditOptions options, int stride, int jobs) {
  options.ckpt_stride = stride;
  options.jobs = jobs;
  return telemetry::to_json(fault::audit_program(program, options)).dump();
}

/// Field-by-field VmResult comparison — every deterministic field,
/// including the landing record. Trace/profile/timing are excluded: the
/// dispatch and batch paths under test never enable them.
void expect_same_result(const vm::VmResult& want, const vm::VmResult& got,
                        const std::string& context) {
  EXPECT_EQ(want.status, got.status) << context;
  EXPECT_EQ(want.output, got.output) << context;
  EXPECT_EQ(want.return_value, got.return_value) << context;
  EXPECT_EQ(want.steps, got.steps) << context;
  EXPECT_EQ(want.fi_sites, got.fi_sites) << context;
  EXPECT_EQ(want.fault_injected, got.fault_injected) << context;
  EXPECT_EQ(want.fault_step, got.fault_step) << context;
  ASSERT_EQ(want.fault_landing.has_value(), got.fault_landing.has_value())
      << context;
  if (want.fault_landing.has_value()) {
    EXPECT_EQ(want.fault_landing->kind, got.fault_landing->kind) << context;
    EXPECT_EQ(want.fault_landing->origin, got.fault_landing->origin)
        << context;
    EXPECT_EQ(want.fault_landing->op, got.fault_landing->op) << context;
    EXPECT_EQ(want.fault_landing->function, got.fault_landing->function)
        << context;
    EXPECT_EQ(want.fault_landing->block, got.fault_landing->block) << context;
    EXPECT_EQ(want.fault_landing->inst, got.fault_landing->inst) << context;
  }
}

TEST(EngineEquivalence, CampaignAllWorkloadsAllTechniques) {
  // The broad sweep: every workload x every technique, cold (stride 0)
  // vs stride 1 (maximum checkpoint density, exercises thinning on the
  // larger workloads) vs the default 64 vs a degenerate huge stride.
  for (const auto& w : workloads::all()) {
    for (Technique technique : kAllTechniques) {
      auto build = pipeline::build(w.source, technique);
      fault::CampaignOptions options;
      options.trials = 10;
      options.seed = 0xc0ffee;
      const std::string cold = campaign_json(build.program, options, 0, 2);
      for (int stride : {1, 64, kHugeStride}) {
        EXPECT_EQ(cold, campaign_json(build.program, options, stride, 2))
            << w.name << " / " << pipeline::technique_name(technique)
            << " stride=" << stride;
      }
    }
  }
}

TEST(EngineEquivalence, CampaignStrideJobsCross) {
  // The full stride x jobs cross on one cell: the serial cold result is
  // the single source of truth for every (stride, jobs) combination.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 0xdecaf;
  const std::string truth = campaign_json(build.program, options, 0, 1);
  for (int stride : {0, 1, 64, kHugeStride}) {
    for (int jobs : {1, 2, 8}) {
      EXPECT_EQ(truth, campaign_json(build.program, options, stride, jobs))
          << "stride=" << stride << " jobs=" << jobs;
    }
  }
}

TEST(EngineEquivalence, CampaignMultiFaultBurstStoreData) {
  // The extended fault model rides through checkpoints too: several
  // faults per run (fast-forward anchors on the dynamically first site),
  // burst flips, and store-data sites (which change the site numbering
  // the checkpoints are indexed by).
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 64;
  options.faults_per_run = 2;
  options.burst = 2;
  options.vm.fault_store_data = true;
  const std::string truth = campaign_json(build.program, options, 0, 1);
  for (int stride : {1, 64, kHugeStride}) {
    for (int jobs : {1, 8}) {
      EXPECT_EQ(truth, campaign_json(build.program, options, stride, jobs))
          << "stride=" << stride << " jobs=" << jobs;
    }
  }
}

TEST(EngineEquivalence, CampaignColdFallbackWhenTimingNeedsPrefix) {
  // Timing (like profiling and tracing) accumulates over the whole
  // execution, so a fast-forwarded trial cannot reproduce it — the
  // campaign must fall back to cold trials and say so in the telemetry.
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 32;
  options.vm.timing = true;
  options.ckpt_stride = 64;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.ckpt.stride, 0);  // cold: knob ignored, not misapplied
  EXPECT_EQ(result.ckpt.ff.restores, 0u);
  options.ckpt_stride = 0;
  const auto cold = fault::run_campaign(build.program, options);
  EXPECT_EQ(telemetry::to_json(result).dump(),
            telemetry::to_json(cold).dump());
}

TEST(EngineEquivalence, AuditAllTechniquesStrideJobsCross) {
  // The audit probes EVERY dynamic site, so equivalence here covers each
  // checkpoint interval end-to-end — including the escape list, whose
  // site order must survive any stride x jobs combination. kNone keeps
  // the escape list non-empty; the protected techniques keep it empty.
  for (Technique technique : kAllTechniques) {
    auto build = pipeline::build(kSmallProgram, technique);
    fault::AuditOptions options;
    options.probe_bits = {0, 17, 63};
    const std::string truth = audit_json(build.program, options, 0, 1);
    if (technique == Technique::kNone) {
      ASSERT_NE(truth.find("\"escapes\""), std::string::npos);
    }
    for (int stride : {1, 64, kHugeStride}) {
      for (int jobs : {1, 2, 8}) {
        EXPECT_EQ(truth, audit_json(build.program, options, stride, jobs))
            << pipeline::technique_name(technique) << " stride=" << stride
            << " jobs=" << jobs;
      }
    }
  }
}

TEST(EngineEquivalence, AuditRealWorkload) {
  // One real workload audited cold vs checkpointed. Cold audits are
  // quadratic (sites x steps), so this uses the smallest workload and a
  // single probe bit; the checkpointed path is the one that makes the
  // bigger audits in bench/ feasible at all.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kNone);
  fault::AuditOptions options;
  options.probe_bits = {17};
  const std::string cold = audit_json(build.program, options, 0, 8);
  EXPECT_EQ(cold, audit_json(build.program, options, 64, 8));
  // Scalar probes (batch width 1) are the degenerate case of the
  // lockstep walk and must take the same result path.
  fault::AuditOptions scalar = options;
  scalar.batch = 1;
  EXPECT_EQ(cold, audit_json(build.program, scalar, 64, 8));
}

TEST(Engine, SingleRunMatchesColdVmRun) {
  // Field-by-field equivalence at the single-trial level, where a
  // mismatch is still attributable: status, output, return value, step
  // and site counters, injection bookkeeping and the landing record.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());
  ASSERT_GT(golden.fi_sites, 60u);

  vm::VmOptions options;
  options.max_steps = fault::faulty_step_budget(golden.steps);
  const vm::PredecodedProgram decoded(build.program);
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  ASSERT_TRUE(engine.run_capturing(options, 8, ckpts).ok());

  vm::FaultSpec early{/*site=*/5, /*bit=*/3};
  vm::FaultSpec late{/*site=*/60, /*bit=*/63};
  vm::FaultSpec burst{/*site=*/33, /*bit=*/12, /*burst=*/3};
  const std::vector<std::vector<vm::FaultSpec>> cases = {
      {early}, {late}, {burst}, {late, early}};
  for (const auto& faults : cases) {
    const vm::VmResult cold = vm::run_multi(build.program, options, faults);
    const vm::VmResult warm =
        engine.run_from(ckpts, options, faults.data(), faults.size());
    expect_same_result(cold, warm, "warm vs cold");
  }
}

TEST(Engine, StartStateFallThroughMatchesColdRuns) {
  // The restore-bound `none` path: when the dynamically first fault site
  // precedes the first post-start checkpoint, the nearest snapshot is
  // checkpoint 0, whose state IS the cold start. The engine skips the
  // full restore and replays the golden prefix directly — the result
  // must stay byte-identical to a cold run, and the restore counter must
  // not move for any of these trials.
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());

  vm::VmOptions options;
  options.max_steps = fault::faulty_step_budget(golden.steps);
  const vm::PredecodedProgram decoded(build.program);
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  ASSERT_TRUE(engine.run_capturing(options, 16, ckpts).ok());
  ASSERT_GT(ckpts.size(), 1u);

  for (std::uint64_t site : {0u, 1u, 7u, 15u}) {
    const vm::Checkpoint& resume = ckpts.nearest_at_or_before(site);
    ASSERT_EQ(resume.fi_sites, 0u);  // these sites precede checkpoint 1
    ASSERT_EQ(resume.steps, 0u);
    for (int bit : {0, 31, 63}) {
      vm::FaultSpec fault;
      fault.site = site;
      fault.bit = bit;
      const vm::VmResult cold = vm::run_multi(build.program, options, {fault});
      const vm::VmResult warm = engine.run_from(ckpts, options, &fault, 1);
      expect_same_result(cold, warm,
                         "site=" + std::to_string(site) +
                             " bit=" + std::to_string(bit));
    }
  }
  EXPECT_EQ(engine.stats().restores, 0u);  // every trial fell through
  EXPECT_GT(engine.stats().trials, 0u);
}

TEST(Engine, FastForwardStatsAccounting) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());

  vm::VmOptions options;
  options.max_steps = fault::faulty_step_budget(golden.steps);
  const vm::PredecodedProgram decoded(build.program);
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  ASSERT_TRUE(engine.run_capturing(options, 8, ckpts).ok());
  ASSERT_GT(ckpts.size(), 1u);
  EXPECT_GT(ckpts.snapshot_bytes(), 0u);

  const int n = 24;
  std::uint64_t expected_restores = 0;
  for (int i = 0; i < n; ++i) {
    vm::FaultSpec fault;
    fault.site = static_cast<std::uint64_t>(i * 3);
    fault.bit = i % 64;
    // Trials whose nearest checkpoint is checkpoint 0 (the start state)
    // fall through to a cold start instead of a full restore, so only
    // trials anchored on a later checkpoint move the restore counter.
    const vm::Checkpoint& resume = ckpts.nearest_at_or_before(fault.site);
    if (resume.fi_sites != 0 || resume.steps != 0) ++expected_restores;
    engine.run_from(ckpts, options, &fault, 1);
  }
  const vm::FastForwardStats& stats = engine.stats();
  // The capturing run counts as a trial too (no restore).
  EXPECT_EQ(stats.trials, static_cast<std::uint64_t>(n) + 1);
  EXPECT_EQ(stats.restores, expected_restores);
  EXPECT_GT(expected_restores, 0u);  // late sites genuinely restored
  EXPECT_LT(expected_restores, static_cast<std::uint64_t>(n));  // ckpt-0 fell through
  EXPECT_GT(stats.steps_skipped, 0u);  // late sites skip golden prefix
  EXPECT_GT(stats.steps_executed, 0u);
  EXPECT_GE(stats.ratio(), 0.0);
  EXPECT_LE(stats.ratio(), 1.0);
}

TEST(Engine, ThinningBoundsLiveCheckpointsDeterministically) {
  // Stride 1 on a real workload requests one checkpoint per dynamic
  // site; the set must thin itself to the documented cap by doubling the
  // stride, and do so identically on every capture (the decision depends
  // only on the golden instruction stream).
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  const vm::PredecodedProgram decoded(build.program);
  vm::VmOptions options;
  vm::Engine engine(decoded, options);

  vm::CheckpointSet a;
  ASSERT_TRUE(engine.run_capturing(options, 1, a).ok());
  EXPECT_LE(a.size(), vm::CheckpointSet::kMaxLiveCheckpoints);
  EXPECT_GT(a.stride(), 1u);  // thinning actually happened

  vm::CheckpointSet b;
  ASSERT_TRUE(engine.run_capturing(options, 1, b).ok());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.stride(), b.stride());
  EXPECT_EQ(a.snapshot_bytes(), b.snapshot_bytes());
}

TEST(Engine, PredecodeResolvesEveryTargetUpFront) {
  // The flat decoding's no-hash-lookups claim: after construction every
  // jump target and call callee is a resolved index, and each function
  // ends in the null-inst sentinel that reproduces the fall-off-the-end
  // trap of the per-block interpreter.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  const vm::PredecodedProgram decoded(build.program);
  ASSERT_FALSE(decoded.code().empty());
  ASSERT_GE(decoded.main_index(), 0);
  for (const vm::DecodedInst& d : decoded.code()) {
    if (d.inst == nullptr) continue;  // end-of-function sentinel
    if (d.inst->op == masm::Op::kJmp || d.inst->op == masm::Op::kJcc) {
      EXPECT_GE(d.target_pc, 0) << "unresolved branch target";
    }
    if (d.inst->op == masm::Op::kCall) {
      EXPECT_NE(d.callee, -1) << "unresolved callee";
    }
  }
  for (int f = 0; f < decoded.function_count(); ++f) {
    const std::int32_t sentinel_pc = decoded.block_pc(f, decoded.block_count(f));
    ASSERT_LT(static_cast<std::size_t>(sentinel_pc), decoded.code().size());
    EXPECT_EQ(decoded.code()[static_cast<std::size_t>(sentinel_pc)].inst,
              nullptr);
  }
}

// ------------------------------------------------------------- dispatch --
//
// The threaded-dispatch tentpole's contract: switch and computed-goto
// loops (and the lockstep batch walk on top of them) are byte-equivalent
// down to every VmResult field, with or without golden rejoin.

TEST(DispatchEquivalence, GoldenRunsAgreeOnAllWorkloads) {
  if (!vm::threaded_dispatch_available()) {
    GTEST_SKIP() << "switch-only build";
  }
  for (const auto& w : workloads::all()) {
    for (Technique technique : kAllTechniques) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions sw;
      sw.dispatch = vm::DispatchMode::kSwitch;
      const vm::VmResult a = vm::run(build.program, sw);
      ASSERT_TRUE(a.ok()) << w.name;
      vm::VmOptions th;
      th.dispatch = vm::DispatchMode::kThreaded;
      expect_same_result(a, vm::run(build.program, th),
                         std::string(w.name) + " / " +
                             pipeline::technique_name(technique));
    }
  }
}

/// Small random MiniC programs for the differential fuzz below: bounded
/// loops, conditionals, array traffic and a helper call, all
/// division-free (trapping paths are exercised separately by the width
/// and step-budget tests, where the trap site is attributable).
std::string fuzz_program(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream out;
  out << "int arr[8];\n"
      << "int helper(int a, int b) { return a * 3 - b + a * b; }\n"
      << "int main() {\n"
      << "  int a = " << rng.next_in_range(-9, 9) << ";\n"
      << "  int b = " << rng.next_in_range(1, 12) << ";\n"
      << "  double d = 0.5;\n"
      << "  for (int k = 0; k < 8; k++) { arr[k] = k * "
      << rng.next_in_range(1, 7) << "; }\n";
  const int statements = 3 + static_cast<int>(rng.next_below(5));
  for (int s = 0; s < statements; ++s) {
    const std::string t = "t" + std::to_string(s);
    switch (rng.next_below(5)) {
      case 0:
        out << "  a = helper(a, " << rng.next_in_range(-20, 20) << ");\n";
        break;
      case 1:
        out << "  for (int " << t << " = 0; " << t << " < "
            << 2 + rng.next_below(6) << "; " << t << "++) { b += arr["
            << rng.next_below(8) << "] + " << rng.next_in_range(-3, 3)
            << "; }\n";
        break;
      case 2:
        out << "  if (a " << (rng.next_bool(0.5) ? "<" : ">") << " b) { a = a "
            << (rng.next_bool(0.5) ? "+" : "-") << " "
            << rng.next_in_range(0, 15) << "; } else { b = b + a; }\n";
        break;
      case 3:
        out << "  arr[" << rng.next_below(8) << "] = a * "
            << rng.next_in_range(-5, 5) << " + b;\n";
        break;
      default:
        out << "  d = d * 0.5 + " << rng.next_in_range(-3, 3) << ";\n";
        break;
    }
  }
  out << "  print_int(a);\n"
      << "  print_int(b);\n"
      << "  print_f64(d);\n"
      << "  print_int(arr[" << rng.next_below(8) << "]);\n"
      << "  return a + b;\n"
      << "}\n";
  return out.str();
}

TEST(DispatchEquivalence, DifferentialFuzzAcrossDispatchAndBatch) {
  // Random programs x random fault plans, each plan executed five ways:
  // cold switch (truth), cold threaded, scalar fast-forward with golden
  // rejoin, lockstep batch over the whole plan set, and a cold batch
  // walk. Any divergence in any VmResult field fails with the program
  // source attached.
  if (!vm::threaded_dispatch_available()) {
    GTEST_SKIP() << "switch-only build";
  }
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string source = fuzz_program(seed * 0x9e3779b97f4a7c15ull);
    for (Technique technique : {Technique::kNone, Technique::kFerrum}) {
      auto build = pipeline::build(source, technique);
      vm::VmOptions sw;
      sw.dispatch = vm::DispatchMode::kSwitch;
      const vm::VmResult golden = vm::run(build.program, sw);
      ASSERT_TRUE(golden.ok()) << source;
      vm::VmOptions th;
      th.dispatch = vm::DispatchMode::kThreaded;
      expect_same_result(golden, vm::run(build.program, th),
                         "golden threaded\n" + source);

      // Random fault plans: sites across (and a little past) the dynamic
      // range, random bits, occasional double faults and bursts.
      Rng rng(seed * 31337);
      std::vector<std::vector<vm::FaultSpec>> plans;
      for (int i = 0; i < 14; ++i) {
        std::vector<vm::FaultSpec> plan;
        const int nfaults = rng.next_bool(0.25) ? 2 : 1;
        for (int f = 0; f < nfaults; ++f) {
          vm::FaultSpec spec;
          spec.site = rng.next_below(golden.fi_sites + golden.fi_sites / 8 + 1);
          spec.bit = static_cast<int>(rng.next_below(64));
          spec.burst = rng.next_bool(0.2) ? 2 : 1;
          plan.push_back(spec);
        }
        plans.push_back(plan);
      }

      vm::VmOptions faulty;  // kAuto dispatch, golden rejoin on
      faulty.max_steps = fault::faulty_step_budget(golden.steps);
      vm::VmOptions faulty_sw = faulty;
      faulty_sw.dispatch = vm::DispatchMode::kSwitch;
      faulty_sw.golden_rejoin = false;

      const vm::PredecodedProgram decoded(build.program);
      vm::CheckpointSet ckpts;
      vm::Engine engine(decoded, faulty);
      ASSERT_TRUE(engine.run_capturing(faulty, 16, ckpts).ok()) << source;

      std::vector<vm::VmResult> cold(plans.size());
      for (std::size_t i = 0; i < plans.size(); ++i) {
        cold[i] = vm::run_multi(build.program, faulty_sw, plans[i].data(),
                                plans[i].size());
      }
      for (std::size_t i = 0; i < plans.size(); ++i) {
        expect_same_result(
            cold[i],
            engine.run_from(ckpts, faulty, plans[i].data(), plans[i].size()),
            "warm trial " + std::to_string(i) + "\n" + source);
      }
      std::vector<vm::Engine::BatchTrial> lanes(plans.size());
      for (std::size_t i = 0; i < plans.size(); ++i) {
        lanes[i] = {plans[i].data(), plans[i].size()};
      }
      std::vector<vm::VmResult> batched(plans.size());
      engine.run_batch(&ckpts, faulty, lanes.data(), lanes.size(),
                       batched.data());
      for (std::size_t i = 0; i < plans.size(); ++i) {
        expect_same_result(cold[i], batched[i],
                           "batched trial " + std::to_string(i) + "\n" + source);
      }
      std::vector<vm::VmResult> cold_batched(plans.size());
      engine.run_batch(nullptr, faulty_sw, lanes.data(), lanes.size(),
                       cold_batched.data());
      for (std::size_t i = 0; i < plans.size(); ++i) {
        expect_same_result(
            cold[i], cold_batched[i],
            "cold batched trial " + std::to_string(i) + "\n" + source);
      }
    }
  }
}

/// Hand-built program carrying a register operand of byte width `width`
/// on its second instruction (the parser never emits undefined widths,
/// so the regression must construct the AsmProgram directly).
masm::AsmProgram width_program(int width) {
  masm::AsmProgram program;
  masm::AsmFunction fn;
  fn.name = "main";
  masm::AsmBlock block;
  block.label = ".entry";
  block.insts.push_back(masm::AsmInst(
      masm::Op::kMov,
      {masm::Operand::make_imm(7), masm::Operand::make_reg(masm::Gpr::kRax)}));
  block.insts.push_back(
      masm::AsmInst(masm::Op::kMov,
                    {masm::Operand::make_reg(masm::Gpr::kRax, width),
                     masm::Operand::make_reg(masm::Gpr::kRcx, width)}));
  block.insts.push_back(masm::AsmInst(masm::Op::kRet, {}));
  fn.blocks.push_back(std::move(block));
  program.functions.push_back(std::move(fn));
  return program;
}

TEST(Engine, UndefinedOperandWidthsTrapLoudlyInBothDispatchModes) {
  // The width-2 bugfix: a 16-bit (or any other undefined-width) operand
  // used to fall through mov's default case and silently move the full
  // 64-bit register. The decoder now tags the instruction at predecode
  // time and executing it traps kTrapInvalid — identically under switch
  // and threaded dispatch, after counting the step.
  for (int width : {2, 3, 5, 16}) {
    const masm::AsmProgram program = width_program(width);
    const vm::PredecodedProgram decoded(program);
    int bad_tags = 0;
    for (const vm::DecodedInst& d : decoded.code()) {
      if (d.tag == vm::kTagBadWidth) ++bad_tags;
    }
    EXPECT_EQ(bad_tags, 1) << "width " << width;
    for (vm::DispatchMode mode :
         {vm::DispatchMode::kSwitch, vm::DispatchMode::kThreaded}) {
      vm::VmOptions options;
      options.dispatch = mode;
      const vm::VmResult result = vm::run(program, options);
      EXPECT_EQ(result.status, vm::ExitStatus::kTrapInvalid)
          << "width " << width;
      EXPECT_EQ(result.steps, 2u) << "width " << width;
    }
  }
  // Control: the same shape at a defined width runs clean.
  const vm::VmResult ok = vm::run(width_program(4));
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.return_value, 7);
}

constexpr const char* kFusedBranchTargetAsm = R"(
main:
.entry:
	movq	$6, %rcx
	movq	$0, %rax
	cmpq	$0, %rcx
.check:
	jne	.body
	jmp	.done
.body:
	addq	%rcx, %rax
	subq	$1, %rcx
	cmpq	$0, %rcx
	jmp	.check
.done:
	ret
)";

TEST(Engine, BranchIntoFusedPairSecondHalfDispatchesSingly) {
  // The fusion edge case: .entry's trailing cmp fuses with .check's
  // leading jne (pairs may span block boundaries), but .check is also a
  // jump target — the back-edge from .body lands directly on the jcc
  // second half. The second half must keep its own dispatch tag so that
  // entering the pair mid-way executes it singly.
  DiagEngine diags;
  const masm::AsmProgram program =
      masm::parse_program(kFusedBranchTargetAsm, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  const vm::PredecodedProgram decoded(program);
  bool saw_fused = false;
  for (std::size_t i = 0; i + 1 < decoded.code().size(); ++i) {
    if (decoded.code()[i].tag != vm::kTagCmpJcc) continue;
    saw_fused = true;
    // Only the first instruction of the pair changes tag.
    EXPECT_EQ(decoded.code()[i + 1].tag,
              static_cast<std::uint8_t>(masm::Op::kJcc));
  }
  ASSERT_TRUE(saw_fused);

  vm::VmOptions sw;
  sw.dispatch = vm::DispatchMode::kSwitch;
  const vm::VmResult a = vm::run(program, sw);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.return_value, 21);  // 6+5+4+3+2+1
  vm::VmOptions th;
  th.dispatch = vm::DispatchMode::kThreaded;
  expect_same_result(a, vm::run(program, th), "fused branch target");
}

TEST(Engine, StepBudgetSweepAgreesAcrossDispatchModes) {
  // Exhaust max_steps at every possible position — including between the
  // halves of a fused pair — and require both loops to trap at the same
  // step with the same partial state. A fused implementation that checks
  // the budget once per pair instead of once per instruction fails here.
  DiagEngine diags;
  const masm::AsmProgram program =
      masm::parse_program(kFusedBranchTargetAsm, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  const vm::VmResult golden = vm::run(program);
  ASSERT_TRUE(golden.ok());
  for (std::uint64_t budget = 1; budget <= golden.steps + 1; ++budget) {
    vm::VmOptions sw;
    sw.dispatch = vm::DispatchMode::kSwitch;
    sw.max_steps = budget;
    const vm::VmResult a = vm::run(program, sw);
    vm::VmOptions th = sw;
    th.dispatch = vm::DispatchMode::kThreaded;
    const vm::VmResult b = vm::run(program, th);
    EXPECT_EQ(a.status, b.status) << "budget " << budget;
    EXPECT_EQ(a.steps, b.steps) << "budget " << budget;
    EXPECT_EQ(a.fi_sites, b.fi_sites) << "budget " << budget;
    EXPECT_EQ(budget >= golden.steps, a.ok()) << "budget " << budget;
  }
}

TEST(Engine, SitePcSinkRidesAlongWithoutPerturbingResults) {
  // The site-pc sink (prune mode's golden site map) is an observer: with
  // it attached, results and profiler tallies are unchanged, and it sees
  // exactly one pc per dynamic site — under whichever loop the engine
  // picks (the observer forces nothing; fi_site() feeds it on both).
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::PredecodedProgram decoded(build.program);
  vm::VmOptions options;
  vm::Engine engine(decoded, options);
  vm::VmOptions profiled = options;
  profiled.profile = true;

  const vm::VmResult plain = engine.run(profiled, nullptr, 0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain.profile.has_value());

  std::vector<std::int32_t> sink;
  engine.set_site_pc_sink(&sink);
  const vm::VmResult observed = engine.run(profiled, nullptr, 0);
  engine.set_site_pc_sink(nullptr);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(sink.size(), observed.fi_sites);
  expect_same_result(plain, observed, "sink attached");
  ASSERT_TRUE(observed.profile.has_value());
  std::uint64_t plain_sites = 0;
  std::uint64_t observed_sites = 0;
  for (std::size_t k = 0; k < plain.profile->site_counts.size(); ++k) {
    plain_sites += plain.profile->site_counts[k];
    observed_sites += observed.profile->site_counts[k];
  }
  EXPECT_EQ(plain_sites, plain.fi_sites);
  EXPECT_EQ(observed_sites, observed.fi_sites);

  // Without profiling (threaded loop eligible), the sink still sees
  // every site and the result still matches.
  sink.clear();
  engine.set_site_pc_sink(&sink);
  const vm::VmResult bare = engine.run(options, nullptr, 0);
  engine.set_site_pc_sink(nullptr);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(sink.size(), bare.fi_sites);
  EXPECT_EQ(bare.fi_sites, plain.fi_sites);
}

TEST(Engine, GoldenRejoinIsResultExactAndAccounted) {
  // Trials whose state re-converges to a golden checkpoint boundary
  // adopt the golden tail. Exactness: every trial's result with rejoin
  // on equals the same trial with rejoin off, field by field. The
  // accounting must show actual rejoins, fewer interpreted steps, and an
  // unchanged executed+skipped total (elided tails count as skipped).
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());

  vm::VmOptions off;
  off.max_steps = fault::faulty_step_budget(golden.steps);
  off.golden_rejoin = false;
  vm::VmOptions on = off;
  on.golden_rejoin = true;

  const vm::PredecodedProgram decoded(build.program);
  vm::Engine reference(decoded, off);
  vm::Engine rejoining(decoded, on);
  vm::CheckpointSet ckpts;
  ASSERT_TRUE(reference.run_capturing(off, 32, ckpts).ok());
  vm::CheckpointSet mirror;  // keeps the two engines' trial counts equal
  ASSERT_TRUE(rejoining.run_capturing(on, 32, mirror).ok());
  ASSERT_TRUE(ckpts.summary().valid);

  const int n = 40;
  for (int i = 0; i < n; ++i) {
    vm::FaultSpec fault;
    fault.site = golden.fi_sites * static_cast<std::uint64_t>(i) / n;
    fault.bit = (i * 7) % 64;
    expect_same_result(reference.run_from(ckpts, off, &fault, 1),
                       rejoining.run_from(ckpts, on, &fault, 1),
                       "site " + std::to_string(fault.site));
  }
  EXPECT_EQ(reference.stats().rejoins, 0u);
  EXPECT_GT(rejoining.stats().rejoins, 0u);
  EXPECT_GT(reference.stats().steps_executed, rejoining.stats().steps_executed);
  EXPECT_EQ(reference.stats().steps_executed + reference.stats().steps_skipped,
            rejoining.stats().steps_executed +
                rejoining.stats().steps_skipped);
}

TEST(EngineEquivalence, BatchWidthStrideRejoinCross) {
  // Campaign-level closure over the new engine knobs: batch width,
  // stride, golden rejoin and dispatch must never change the
  // deterministic campaign JSON. Truth is the scalar cold switch
  // configuration with rejoin off.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 0xfeedbee5;
  options.batch = 1;
  options.vm.dispatch = vm::DispatchMode::kSwitch;
  options.vm.golden_rejoin = false;
  const std::string truth = campaign_json(build.program, options, 0, 1);
  options.vm.dispatch = vm::DispatchMode::kAuto;
  options.vm.golden_rejoin = true;
  for (int batch : {1, 4, 8}) {
    for (int stride : {0, 64}) {
      for (int jobs : {1, 2}) {
        options.batch = batch;
        EXPECT_EQ(truth, campaign_json(build.program, options, stride, jobs))
            << "batch=" << batch << " stride=" << stride << " jobs=" << jobs;
      }
    }
  }
  // Rejoin off with batching on: the remaining corner.
  options.vm.golden_rejoin = false;
  options.batch = 8;
  EXPECT_EQ(truth, campaign_json(build.program, options, 64, 2));
}

}  // namespace
}  // namespace ferrum
