// Equivalence suite for the snapshot/fast-forward execution engine
// (src/vm/engine.h). The engine's contract is that checkpointing is pure
// observability: for any stride and any worker count, a campaign or audit
// produces the byte-identical deterministic result that cold execution
// does. These tests assert that contract — over every workload, every
// technique, multi-fault/burst/store-data configurations, and down at the
// single-run level where each VmResult field is compared directly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "masm/masm.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/engine.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

constexpr Technique kAllTechniques[] = {Technique::kNone, Technique::kIrEddi,
                                        Technique::kHybrid,
                                        Technique::kFerrum};

// A stride far past any workload's dynamic site count: only the site-0
// checkpoint exists, so every trial restores the initial state (the
// degenerate fast-forward that must still match cold execution).
constexpr int kHugeStride = 1 << 30;

constexpr const char* kSmallProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 12; i++) s += i * i;
    print_int(s);
    return 0;
  })";

/// The deterministic section of a campaign, as the BENCH artifacts
/// serialise it. Byte-equality of these strings is the satellite's
/// "byte-identical campaign JSON" acceptance criterion.
std::string campaign_json(const masm::AsmProgram& program,
                          fault::CampaignOptions options, int stride,
                          int jobs) {
  options.ckpt_stride = stride;
  options.jobs = jobs;
  return telemetry::to_json(fault::run_campaign(program, options)).dump();
}

std::string audit_json(const masm::AsmProgram& program,
                       fault::AuditOptions options, int stride, int jobs) {
  options.ckpt_stride = stride;
  options.jobs = jobs;
  return telemetry::to_json(fault::audit_program(program, options)).dump();
}

TEST(EngineEquivalence, CampaignAllWorkloadsAllTechniques) {
  // The broad sweep: every workload x every technique, cold (stride 0)
  // vs stride 1 (maximum checkpoint density, exercises thinning on the
  // larger workloads) vs the default 64 vs a degenerate huge stride.
  for (const auto& w : workloads::all()) {
    for (Technique technique : kAllTechniques) {
      auto build = pipeline::build(w.source, technique);
      fault::CampaignOptions options;
      options.trials = 10;
      options.seed = 0xc0ffee;
      const std::string cold = campaign_json(build.program, options, 0, 2);
      for (int stride : {1, 64, kHugeStride}) {
        EXPECT_EQ(cold, campaign_json(build.program, options, stride, 2))
            << w.name << " / " << pipeline::technique_name(technique)
            << " stride=" << stride;
      }
    }
  }
}

TEST(EngineEquivalence, CampaignStrideJobsCross) {
  // The full stride x jobs cross on one cell: the serial cold result is
  // the single source of truth for every (stride, jobs) combination.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 0xdecaf;
  const std::string truth = campaign_json(build.program, options, 0, 1);
  for (int stride : {0, 1, 64, kHugeStride}) {
    for (int jobs : {1, 2, 8}) {
      EXPECT_EQ(truth, campaign_json(build.program, options, stride, jobs))
          << "stride=" << stride << " jobs=" << jobs;
    }
  }
}

TEST(EngineEquivalence, CampaignMultiFaultBurstStoreData) {
  // The extended fault model rides through checkpoints too: several
  // faults per run (fast-forward anchors on the dynamically first site),
  // burst flips, and store-data sites (which change the site numbering
  // the checkpoints are indexed by).
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 64;
  options.faults_per_run = 2;
  options.burst = 2;
  options.vm.fault_store_data = true;
  const std::string truth = campaign_json(build.program, options, 0, 1);
  for (int stride : {1, 64, kHugeStride}) {
    for (int jobs : {1, 8}) {
      EXPECT_EQ(truth, campaign_json(build.program, options, stride, jobs))
          << "stride=" << stride << " jobs=" << jobs;
    }
  }
}

TEST(EngineEquivalence, CampaignColdFallbackWhenTimingNeedsPrefix) {
  // Timing (like profiling and tracing) accumulates over the whole
  // execution, so a fast-forwarded trial cannot reproduce it — the
  // campaign must fall back to cold trials and say so in the telemetry.
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 32;
  options.vm.timing = true;
  options.ckpt_stride = 64;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.ckpt.stride, 0);  // cold: knob ignored, not misapplied
  EXPECT_EQ(result.ckpt.ff.restores, 0u);
  options.ckpt_stride = 0;
  const auto cold = fault::run_campaign(build.program, options);
  EXPECT_EQ(telemetry::to_json(result).dump(),
            telemetry::to_json(cold).dump());
}

TEST(EngineEquivalence, AuditAllTechniquesStrideJobsCross) {
  // The audit probes EVERY dynamic site, so equivalence here covers each
  // checkpoint interval end-to-end — including the escape list, whose
  // site order must survive any stride x jobs combination. kNone keeps
  // the escape list non-empty; the protected techniques keep it empty.
  for (Technique technique : kAllTechniques) {
    auto build = pipeline::build(kSmallProgram, technique);
    fault::AuditOptions options;
    options.probe_bits = {0, 17, 63};
    const std::string truth = audit_json(build.program, options, 0, 1);
    if (technique == Technique::kNone) {
      ASSERT_NE(truth.find("\"escapes\""), std::string::npos);
    }
    for (int stride : {1, 64, kHugeStride}) {
      for (int jobs : {1, 2, 8}) {
        EXPECT_EQ(truth, audit_json(build.program, options, stride, jobs))
            << pipeline::technique_name(technique) << " stride=" << stride
            << " jobs=" << jobs;
      }
    }
  }
}

TEST(EngineEquivalence, AuditRealWorkload) {
  // One real workload audited cold vs checkpointed. Cold audits are
  // quadratic (sites x steps), so this uses the smallest workload and a
  // single probe bit; the checkpointed path is the one that makes the
  // bigger audits in bench/ feasible at all.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kNone);
  fault::AuditOptions options;
  options.probe_bits = {17};
  const std::string cold = audit_json(build.program, options, 0, 8);
  EXPECT_EQ(cold, audit_json(build.program, options, 64, 8));
}

TEST(Engine, SingleRunMatchesColdVmRun) {
  // Field-by-field equivalence at the single-trial level, where a
  // mismatch is still attributable: status, output, return value, step
  // and site counters, injection bookkeeping and the landing record.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());
  ASSERT_GT(golden.fi_sites, 60u);

  vm::VmOptions options;
  options.max_steps = fault::faulty_step_budget(golden.steps);
  const vm::PredecodedProgram decoded(build.program);
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  ASSERT_TRUE(engine.run_capturing(options, 8, ckpts).ok());

  vm::FaultSpec early{/*site=*/5, /*bit=*/3};
  vm::FaultSpec late{/*site=*/60, /*bit=*/63};
  vm::FaultSpec burst{/*site=*/33, /*bit=*/12, /*burst=*/3};
  const std::vector<std::vector<vm::FaultSpec>> cases = {
      {early}, {late}, {burst}, {late, early}};
  for (const auto& faults : cases) {
    const vm::VmResult cold = vm::run_multi(build.program, options, faults);
    const vm::VmResult warm =
        engine.run_from(ckpts, options, faults.data(), faults.size());
    EXPECT_EQ(cold.status, warm.status);
    EXPECT_EQ(cold.output, warm.output);
    EXPECT_EQ(cold.return_value, warm.return_value);
    EXPECT_EQ(cold.steps, warm.steps);
    EXPECT_EQ(cold.fi_sites, warm.fi_sites);
    EXPECT_EQ(cold.fault_injected, warm.fault_injected);
    EXPECT_EQ(cold.fault_step, warm.fault_step);
    ASSERT_EQ(cold.fault_landing.has_value(), warm.fault_landing.has_value());
    if (cold.fault_landing.has_value()) {
      EXPECT_EQ(cold.fault_landing->kind, warm.fault_landing->kind);
      EXPECT_EQ(cold.fault_landing->origin, warm.fault_landing->origin);
      EXPECT_EQ(cold.fault_landing->op, warm.fault_landing->op);
      EXPECT_EQ(cold.fault_landing->function, warm.fault_landing->function);
      EXPECT_EQ(cold.fault_landing->block, warm.fault_landing->block);
      EXPECT_EQ(cold.fault_landing->inst, warm.fault_landing->inst);
    }
  }
}

TEST(Engine, FastForwardStatsAccounting) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_TRUE(golden.ok());

  vm::VmOptions options;
  options.max_steps = fault::faulty_step_budget(golden.steps);
  const vm::PredecodedProgram decoded(build.program);
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  ASSERT_TRUE(engine.run_capturing(options, 8, ckpts).ok());
  ASSERT_GT(ckpts.size(), 1u);
  EXPECT_GT(ckpts.snapshot_bytes(), 0u);

  const int n = 24;
  for (int i = 0; i < n; ++i) {
    vm::FaultSpec fault;
    fault.site = static_cast<std::uint64_t>(i * 3);
    fault.bit = i % 64;
    engine.run_from(ckpts, options, &fault, 1);
  }
  const vm::FastForwardStats& stats = engine.stats();
  // The capturing run counts as a trial too (no restore).
  EXPECT_EQ(stats.trials, static_cast<std::uint64_t>(n) + 1);
  EXPECT_EQ(stats.restores, static_cast<std::uint64_t>(n));
  EXPECT_GT(stats.steps_skipped, 0u);  // late sites skip golden prefix
  EXPECT_GT(stats.steps_executed, 0u);
  EXPECT_GE(stats.ratio(), 0.0);
  EXPECT_LE(stats.ratio(), 1.0);
}

TEST(Engine, ThinningBoundsLiveCheckpointsDeterministically) {
  // Stride 1 on a real workload requests one checkpoint per dynamic
  // site; the set must thin itself to the documented cap by doubling the
  // stride, and do so identically on every capture (the decision depends
  // only on the golden instruction stream).
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  const vm::PredecodedProgram decoded(build.program);
  vm::VmOptions options;
  vm::Engine engine(decoded, options);

  vm::CheckpointSet a;
  ASSERT_TRUE(engine.run_capturing(options, 1, a).ok());
  EXPECT_LE(a.size(), vm::CheckpointSet::kMaxLiveCheckpoints);
  EXPECT_GT(a.stride(), 1u);  // thinning actually happened

  vm::CheckpointSet b;
  ASSERT_TRUE(engine.run_capturing(options, 1, b).ok());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.stride(), b.stride());
  EXPECT_EQ(a.snapshot_bytes(), b.snapshot_bytes());
}

TEST(Engine, PredecodeResolvesEveryTargetUpFront) {
  // The flat decoding's no-hash-lookups claim: after construction every
  // jump target and call callee is a resolved index, and each function
  // ends in the null-inst sentinel that reproduces the fall-off-the-end
  // trap of the per-block interpreter.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  const vm::PredecodedProgram decoded(build.program);
  ASSERT_FALSE(decoded.code().empty());
  ASSERT_GE(decoded.main_index(), 0);
  for (const vm::DecodedInst& d : decoded.code()) {
    if (d.inst == nullptr) continue;  // end-of-function sentinel
    if (d.inst->op == masm::Op::kJmp || d.inst->op == masm::Op::kJcc) {
      EXPECT_GE(d.target_pc, 0) << "unresolved branch target";
    }
    if (d.inst->op == masm::Op::kCall) {
      EXPECT_NE(d.callee, -1) << "unresolved callee";
    }
  }
  for (int f = 0; f < decoded.function_count(); ++f) {
    const std::int32_t sentinel_pc = decoded.block_pc(f, decoded.block_count(f));
    ASSERT_LT(static_cast<std::size_t>(sentinel_pc), decoded.code().size());
    EXPECT_EQ(decoded.code()[static_cast<std::size_t>(sentinel_pc)].inst,
              nullptr);
  }
}

}  // namespace
}  // namespace ferrum
