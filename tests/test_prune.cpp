// ferrum-prune self-test: the backward liveness analysis may only call a
// bit dead when flipping it provably cannot change the architectural
// outcome. Two layers of evidence:
//
//   - transfer-function unit tests on hand-written MiniASM fragments pin
//     the per-opcode semantics (partial-width GPR writes, setcc low-byte
//     kills, flags consumption by one condition, jcc-to-fallthrough
//     branch sites, movq upper-lane zeroing, caller-saved clobbers
//     across calls);
//   - a dynamic cross-check injects a deterministic sample of
//     statically-dead (dynamic site, bit) pairs on every Table II
//     workload and requires each run to be architecturally identical to
//     the golden run (status, output, return value, step count, site
//     count). bench/prune_smoke does the same sweep exhaustively on
//     compact kernels; this test covers real workload code shapes.
//
// Plus the guard rails: prune mode refuses multi-fault campaigns and
// store-data configuration mismatches with std::invalid_argument.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/prune.h"
#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "masm/fault_site.h"
#include "masm/parser.h"
#include "pipeline/pipeline.h"
#include "vm/engine.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using check::prune::kDeadClass;
using check::prune::PruneReport;
using check::prune::PruneSite;
using pipeline::Technique;

PruneReport prune_text(const char* text) {
  DiagEngine diags;
  const masm::AsmProgram program = masm::parse_program(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return check::prune::prune_program(program);
}

// ------------------------------------------------ transfer functions --

// A 64-bit immediate load whose value is only ever observed through %al:
// the merged-write flip space keeps bits 0-7 live and bits 8-63 dead.
TEST(PruneTransfer, PartialWidthReadKillsUpperBits) {
  const PruneReport prune = prune_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$12345, %rax\n"
      "\tmovzbq\t%al, %rdi\n"
      "\tcall\tprint_int\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* mov = prune.find(0, 0, 0);
  ASSERT_NE(mov, nullptr);
  EXPECT_EQ(mov->kind, masm::FaultSiteKind::kGprWrite);
  EXPECT_EQ(mov->bit_space, 64);
  EXPECT_EQ(mov->dead_bits(), 56);
  for (int bit = 0; bit < 8; ++bit) EXPECT_FALSE(mov->bit_dead(bit));
  for (int bit = 8; bit < 64; ++bit) EXPECT_TRUE(mov->bit_dead(bit));

  // The zero-extended %rdi is fully consumed by print_int: nothing dead.
  const PruneSite* movz = prune.find(0, 0, 1);
  ASSERT_NE(movz, nullptr);
  EXPECT_EQ(movz->dead_bits(), 0);
}

// setcc writes one byte; the upper 56 bits of the merged destination
// pass through and die when nothing downstream reads them. The cmp's
// flags site keeps only the zero flag alive (je/sete read kZf), so
// sf/of/cf are dead.
TEST(PruneTransfer, SetccAndSingleConditionFlags) {
  const PruneReport prune = prune_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$3, %rdi\n"
      "\tcmpq\t$3, %rdi\n"
      "\tsete\t%al\n"
      "\tmovzbq\t%al, %rdi\n"
      "\tcall\tprint_int\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* flags = prune.find(0, 0, 1);
  ASSERT_NE(flags, nullptr);
  EXPECT_EQ(flags->kind, masm::FaultSiteKind::kFlagsWrite);
  EXPECT_EQ(flags->bit_space, 4);
  EXPECT_EQ(flags->dead_bits(), 3);
  EXPECT_FALSE(flags->bit_dead(0));  // zf feeds sete
  EXPECT_TRUE(flags->bit_dead(1));   // sf
  EXPECT_TRUE(flags->bit_dead(2));   // of
  EXPECT_TRUE(flags->bit_dead(3));   // cf

  const PruneSite* setcc = prune.find(0, 0, 2);
  ASSERT_NE(setcc, nullptr);
  EXPECT_EQ(setcc->kind, masm::FaultSiteKind::kGprWrite);
  EXPECT_EQ(setcc->dead_bits(), 56);
  EXPECT_FALSE(setcc->bit_dead(0));
  EXPECT_TRUE(setcc->bit_dead(8));
}

// A jcc whose taken edge resolves to its own fall-through block: the
// branch-decision flip cannot change the next pc, so the site is fully
// dead. The same jcc aimed past an intervening block stays live.
TEST(PruneTransfer, BranchToFallthroughIsDead) {
  const PruneReport degenerate = prune_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$5, %rdi\n"
      "\tcmpq\t$0, %rdi\n"
      "\tje\t.join\n"
      ".join:\n"
      "\tcall\tprint_int\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* branch = degenerate.find(0, 0, 2);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->kind, masm::FaultSiteKind::kBranchDecision);
  EXPECT_EQ(branch->bit_space, 1);
  EXPECT_TRUE(branch->fully_dead());
  EXPECT_EQ(branch->class_id, kDeadClass);

  const PruneReport real = prune_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$5, %rdi\n"
      "\tcmpq\t$0, %rdi\n"
      "\tje\t.skip\n"
      ".body:\n"
      "\tcall\tprint_int\n"
      ".skip:\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* taken = real.find(0, 0, 2);
  ASSERT_NE(taken, nullptr);
  EXPECT_FALSE(taken->fully_dead());
  EXPECT_EQ(taken->dead_bits(), 0);
}

// movq to an xmm register zeroes lane 1, so its site spans two lanes;
// when only the low double is ever read (movsd + print_f64), the whole
// upper lane of the flip space is dead.
TEST(PruneTransfer, MovqUpperLaneDead) {
  const PruneReport prune = prune_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$4, %rax\n"
      "\tmovq\t%rax, %xmm1\n"
      "\tmovsd\t%xmm1, %xmm0\n"
      "\tcall\tprint_f64\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* movq = prune.find(0, 0, 1);
  ASSERT_NE(movq, nullptr);
  EXPECT_EQ(movq->kind, masm::FaultSiteKind::kXmmWrite);
  EXPECT_EQ(movq->bit_space, 128);
  EXPECT_EQ(movq->dead_bits(), 64);
  EXPECT_FALSE(movq->bit_dead(0));
  EXPECT_FALSE(movq->bit_dead(63));
  for (int bit = 64; bit < 128; ++bit) EXPECT_TRUE(movq->bit_dead(bit));
}

// Interprocedural caller-saved clobber: a value written before a call
// whose callee surely overwrites it is fully dead, while a register the
// callee never touches stays live across the call.
TEST(PruneTransfer, CallClobberVersusPassThrough) {
  const PruneReport clobbered = prune_text(
      "clob:\n"
      ".entry:\n"
      "\tmovq\t$1, %rax\n"
      "\tret\n"
      "main:\n"
      ".entry:\n"
      "\tmovq\t$7, %rax\n"
      "\tcall\tclob\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* dead = clobbered.find(1, 0, 0);
  ASSERT_NE(dead, nullptr);
  EXPECT_TRUE(dead->fully_dead());
  EXPECT_EQ(dead->class_id, kDeadClass);

  const PruneReport preserved = prune_text(
      "keep:\n"
      ".entry:\n"
      "\tmovq\t$1, %rax\n"
      "\tret\n"
      "main:\n"
      ".entry:\n"
      "\tmovq\t$7, %rbx\n"
      "\tcall\tkeep\n"
      "\tmovq\t%rbx, %rdi\n"
      "\tcall\tprint_int\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const PruneSite* live = preserved.find(1, 0, 0);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->dead_bits(), 0);
}

// ---------------------------------------------- dynamic cross-check --

/// Injects a deterministic sample of statically-dead (dynamic site, bit)
/// pairs and requires bit-identical architectural state vs. golden.
/// Also cross-validates the static site table against the VM's dynamic
/// enumeration: every registered dynamic site must map to a prune site.
void expect_dead_bits_invisible(const std::string& label,
                                const masm::AsmProgram& program,
                                std::uint64_t sample_cap) {
  const PruneReport prune = check::prune::prune_program(program);
  const vm::PredecodedProgram decoded(program);
  vm::VmOptions options;
  vm::CheckpointSet ckpts;
  vm::Engine engine(decoded, options);
  std::vector<std::int32_t> site_pcs;
  engine.set_site_pc_sink(&site_pcs);
  const vm::VmResult golden = engine.run_capturing(options, 64, ckpts);
  engine.set_site_pc_sink(nullptr);
  ASSERT_TRUE(golden.ok()) << label;
  const auto& code = decoded.code();

  // Pass 1: count dead pairs (and check the dynamic->static mapping).
  std::uint64_t dead_pairs = 0;
  for (std::uint64_t id = 0; id < golden.fi_sites; ++id) {
    const vm::DecodedInst& d =
        code[static_cast<std::size_t>(site_pcs[static_cast<std::size_t>(id)])];
    const int s = prune.site_index(d.fidx, d.bidx, d.iidx);
    ASSERT_GE(s, 0) << label << ": dynamic site " << id
                    << " has no static prune record";
    dead_pairs += static_cast<std::uint64_t>(
        prune.sites[static_cast<std::size_t>(s)].dead_bits());
  }
  ASSERT_GT(dead_pairs, 0u) << label << ": no dead bits — check is vacuous";
  const std::uint64_t stride = std::max<std::uint64_t>(1, dead_pairs / sample_cap);

  // Pass 2: inject every stride-th dead pair.
  vm::VmOptions faulty = options;
  faulty.max_steps = fault::faulty_step_budget(golden.steps);
  std::uint64_t index = 0;
  std::uint64_t checked = 0;
  for (std::uint64_t id = 0; id < golden.fi_sites; ++id) {
    const vm::DecodedInst& d =
        code[static_cast<std::size_t>(site_pcs[static_cast<std::size_t>(id)])];
    const int s = prune.site_index(d.fidx, d.bidx, d.iidx);
    const PruneSite& site = prune.sites[static_cast<std::size_t>(s)];
    for (int bit = 0; bit < site.bit_space; ++bit) {
      if (!site.bit_dead(bit)) continue;
      if (index++ % stride != 0) continue;
      vm::FaultSpec spec;
      spec.site = id;
      spec.bit = bit;
      const vm::VmResult run = engine.run_from(ckpts, faulty, &spec, 1);
      ++checked;
      ASSERT_EQ(run.status, golden.status) << label << " site " << id
                                           << " bit " << bit;
      ASSERT_EQ(run.output, golden.output) << label << " site " << id
                                           << " bit " << bit;
      ASSERT_EQ(run.return_value, golden.return_value)
          << label << " site " << id << " bit " << bit;
      ASSERT_EQ(run.steps, golden.steps) << label << " site " << id
                                         << " bit " << bit;
      ASSERT_EQ(run.fi_sites, golden.fi_sites)
          << label << " site " << id << " bit " << bit;
    }
  }
  ASSERT_GT(checked, 0u) << label;
}

TEST(PruneDynamic, DeadBitsInvisibleOnAllWorkloads) {
  for (const auto& workload : workloads::all()) {
    const auto build = pipeline::build(workload.source, Technique::kNone);
    expect_dead_bits_invisible(workload.name + "/none", build.program,
                               /*sample_cap=*/600);
  }
}

TEST(PruneDynamic, DeadBitsInvisibleUnderFerrumProtection) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kFerrum);
  expect_dead_bits_invisible("bfs/ferrum", build.program,
                             /*sample_cap=*/600);
}

// --------------------------------------------------------- guard rails --

TEST(PruneGuards, RejectsMultiFaultCampaigns) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kNone);
  const PruneReport prune = check::prune::prune_program(build.program);
  fault::CampaignOptions options;
  options.trials = 4;
  options.faults_per_run = 2;
  options.prune = &prune;
  EXPECT_THROW(fault::run_campaign(build.program, options),
               std::invalid_argument);
}

TEST(PruneGuards, RejectsStoreDataMismatch) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kNone);
  // Report computed without store-data sites, campaign/audit with them:
  // the site spaces disagree, so prune mode must refuse to extrapolate.
  const PruneReport prune = check::prune::prune_program(build.program);

  fault::CampaignOptions campaign;
  campaign.trials = 4;
  campaign.vm.fault_store_data = true;
  campaign.prune = &prune;
  EXPECT_THROW(fault::run_campaign(build.program, campaign),
               std::invalid_argument);

  fault::AuditOptions audit;
  audit.probe_bits = {17};
  audit.vm.fault_store_data = true;
  audit.prune = &prune;
  EXPECT_THROW(fault::audit_program(build.program, audit),
               std::invalid_argument);
}

}  // namespace
}  // namespace ferrum
