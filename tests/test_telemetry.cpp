#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "support/parallel.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;
using telemetry::Json;

// ----------------------------------------------------------------- JSON

TEST(Json, DumpIsSortedAndDeterministic) {
  Json a = Json::object();
  a["zulu"] = 1;
  a["alpha"] = 2;
  a["mike"] = Json::array();
  a["mike"].push_back("x");
  Json b = Json::object();
  b["mike"] = Json::array();
  b["mike"].push_back("x");
  b["alpha"] = 2;
  b["zulu"] = 1;
  EXPECT_EQ(a.dump(), b.dump());
  // Sorted keys: alpha before mike before zulu.
  const std::string text = a.dump();
  EXPECT_LT(text.find("alpha"), text.find("mike"));
  EXPECT_LT(text.find("mike"), text.find("zulu"));
}

TEST(Json, RoundTripsThroughParse) {
  Json json = Json::object();
  json["int"] = -42;
  json["uint"] = std::uint64_t{18446744073709551615ull};
  json["double"] = 0.1;
  json["whole_double"] = 2.0;
  json["string"] = "line\nbreak \"quoted\"";
  json["flag"] = true;
  json["nothing"] = Json();
  json["nested"]["list"] = Json::array();
  json["nested"]["list"].push_back(1);
  json["nested"]["list"].push_back(2);

  const std::string text = json.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  // Byte-exact round trip: parse(dump(x)).dump() == dump(x).
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_EQ(parsed->find("int")->as_int(), -42);
  EXPECT_EQ(parsed->find("uint")->as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed->find("double")->as_double(), 0.1);
  // Whole doubles keep their ".0" so the kind survives the round trip.
  EXPECT_EQ(parsed->find("whole_double")->kind(), Json::Kind::kDouble);
  EXPECT_EQ(parsed->find("string")->as_string(), "line\nbreak \"quoted\"");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_TRUE(Json::parse("{\"a\": [1, 2.5, \"s\", null, true]}")
                  .has_value());
}

// -------------------------------------------------------------- metrics

TEST(Metrics, HistogramBucketsByBitWidth) {
  telemetry::Histogram histogram;
  histogram.observe(0);
  histogram.observe(1);
  histogram.observe(2);
  histogram.observe(3);
  histogram.observe(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 1030u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 1024u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // value 0
  EXPECT_EQ(histogram.bucket(1), 1u);  // value 1
  EXPECT_EQ(histogram.bucket(2), 2u);  // values 2..3
  EXPECT_EQ(histogram.bucket(11), 1u); // values 1024..2047
  EXPECT_DOUBLE_EQ(histogram.mean(), 1030.0 / 5.0);
}

TEST(Metrics, RegistryNestsPathsInSnapshot) {
  telemetry::Registry registry;
  registry.counter("vm/inst/alu").add(7);
  registry.counter("vm/inst/vec").add(3);
  registry.gauge("campaign/sdc_rate").set(0.25);
  registry.histogram("campaign/latency").observe(16);
  { auto scope = registry.scope("wall/total"); }

  const Json snapshot = registry.to_json();
  ASSERT_NE(snapshot.find("vm"), nullptr);
  const Json* inst = snapshot.find("vm")->find("inst");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->find("alu")->as_uint(), 7u);
  EXPECT_EQ(inst->find("vec")->as_uint(), 3u);
  EXPECT_DOUBLE_EQ(
      snapshot.find("campaign")->find("sdc_rate")->as_double(), 0.25);
  EXPECT_NE(snapshot.find("wall"), nullptr);

  // The deterministic view drops timers (and only timers).
  const Json no_timers = registry.to_json(/*include_timers=*/false);
  EXPECT_EQ(no_timers.find("wall"), nullptr);
  EXPECT_NE(no_timers.find("vm"), nullptr);
}

TEST(Metrics, RegistryRejectsKindConflicts) {
  telemetry::Registry registry;
  registry.counter("a/b");
  EXPECT_THROW(registry.gauge("a/b"), std::logic_error);
  EXPECT_THROW(registry.histogram("a/b"), std::logic_error);
  // Same kind re-request returns the same handle.
  telemetry::Counter& first = registry.counter("a/b");
  telemetry::Counter& second = registry.counter("a/b");
  EXPECT_EQ(&first, &second);
}

// Hammer shared metrics from many threads; exact totals prove atomicity
// and the run doubles as the TSan target for the metrics layer.
TEST(Metrics, ThreadSafeUnderConcurrentMutation) {
  telemetry::Registry registry;
  telemetry::Counter& counter = registry.counter("hammer/count");
  telemetry::Histogram& histogram = registry.histogram("hammer/hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  ThreadPool pool(kThreads);
  pool.parallel_for_indexed(
      kThreads,
      [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          for (int i = 0; i < kPerThread; ++i) {
            counter.add(1);
            histogram.observe(static_cast<std::uint64_t>(i));
            // Concurrent lookups must also be safe.
            registry.counter("hammer/count");
          }
        }
      },
      /*grain=*/1);
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), kPerThread - 1);
}

// --------------------------------------------------------- VM profiler

// Differential test: the profiler's total dynamic instruction count must
// equal the VM's step count, origin counts must partition it, and site
// counts must partition fi_sites — on every workload.
TEST(VmProfile, TotalsMatchVmCountersOnAllWorkloads) {
  for (const auto& w : workloads::all()) {
    for (Technique technique : {Technique::kNone, Technique::kFerrum}) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions options;
      options.profile = true;
      const vm::VmResult result = vm::run(build.program, options);
      ASSERT_TRUE(result.ok()) << w.name;
      ASSERT_TRUE(result.profile.has_value()) << w.name;
      const vm::VmProfile& profile = *result.profile;

      EXPECT_EQ(profile.total(), result.steps)
          << w.name << "/" << pipeline::technique_name(technique);
      std::uint64_t origin_total = 0;
      for (std::uint64_t count : profile.origin_counts) origin_total += count;
      EXPECT_EQ(origin_total, result.steps) << w.name;
      std::uint64_t site_total = 0;
      for (std::uint64_t count : profile.site_counts) site_total += count;
      EXPECT_EQ(site_total, result.fi_sites) << w.name;
    }
  }
}

TEST(VmProfile, HotBlocksSortedAndBounded) {
  const auto& w = workloads::by_name("pathfinder");
  auto build = pipeline::build(w.source, Technique::kNone);
  vm::VmOptions options;
  options.profile = true;
  const vm::VmResult result = vm::run(build.program, options);
  ASSERT_TRUE(result.ok());
  const auto& hot = result.profile->hot_blocks;
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(),
            static_cast<std::size_t>(vm::VmProfile::kMaxHotBlocks));
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].instructions, hot[i].instructions);
  }
}

TEST(VmProfile, AbsentUnlessRequested) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult result = vm::run(build.program);
  EXPECT_FALSE(result.profile.has_value());
  EXPECT_FALSE(result.timing_stats.has_value());
}

// ---------------------------------------------------------- TimingStats

TEST(TimingStats, AttributionSumsToInstructionsAndCycles) {
  const auto& w = workloads::by_name("kmeans");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  vm::VmOptions options;
  options.timing = true;
  const vm::VmResult result = vm::run(build.program, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.timing_stats.has_value());
  const vm::TimingStats& stats = *result.timing_stats;

  EXPECT_EQ(stats.instructions, result.steps);
  std::uint64_t issue_total = 0;
  std::uint64_t busy_total = 0;
  for (int p = 0; p < vm::kPortClassCount; ++p) {
    busy_total += stats.busy_cycles[p];
    for (int o = 0; o < masm::kInstOriginCount; ++o) {
      issue_total += stats.issues[p][o];
    }
  }
  EXPECT_EQ(issue_total, result.steps);
  EXPECT_EQ(busy_total, result.steps);  // one busy-cycle tick per issue
}

// The paper's mechanism, measured: FERRUM's protection instructions
// (checks batched through XMM/YMM) peak on the vector port class, while
// hybrid's scalar xor+jne checks land on the ALU and branch classes.
TEST(TimingStats, FerrumChecksUseVectorPortHybridUsesAluBranch) {
  std::uint64_t ferrum_vec = 0, ferrum_alu = 0, ferrum_branch = 0;
  std::uint64_t hybrid_vec = 0, hybrid_alu = 0, hybrid_branch = 0;
  for (const char* name : {"kmeans", "pathfinder", "lud"}) {
    const auto& w = workloads::by_name(name);
    for (Technique technique : {Technique::kFerrum, Technique::kHybrid}) {
      auto build = pipeline::build(w.source, technique);
      vm::VmOptions options;
      options.timing = true;
      const vm::VmResult result = vm::run(build.program, options);
      ASSERT_TRUE(result.ok()) << name;
      const vm::TimingStats& stats = *result.timing_stats;
      const int prot = static_cast<int>(masm::InstOrigin::kProtection);
      const auto issues = [&](vm::PortClass port) {
        return stats.issues[static_cast<int>(port)][prot];
      };
      if (technique == Technique::kFerrum) {
        ferrum_vec += issues(vm::PortClass::kVec);
        ferrum_alu += issues(vm::PortClass::kAlu);
        ferrum_branch += issues(vm::PortClass::kBranch);
      } else {
        hybrid_vec += issues(vm::PortClass::kVec);
        hybrid_alu += issues(vm::PortClass::kAlu);
        hybrid_branch += issues(vm::PortClass::kBranch);
      }
    }
  }
  EXPECT_GT(ferrum_vec, ferrum_alu);
  EXPECT_GT(ferrum_vec, ferrum_branch);
  EXPECT_GT(hybrid_alu, hybrid_vec);
  EXPECT_GT(hybrid_branch, hybrid_vec);
}

TEST(TimingStats, StallsAreBounded) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kNone);
  vm::VmOptions options;
  options.timing = true;
  const vm::VmResult result = vm::run(build.program, options);
  ASSERT_TRUE(result.ok());
  const vm::TimingStats& stats = *result.timing_stats;
  // Total attributed slip can never exceed instructions * cycles; a loose
  // sanity bound that still catches wildly wrong accounting.
  EXPECT_LE(stats.stall_dependence + stats.stall_port,
            result.cycles * result.steps);
}

// ------------------------------------------------------------- campaign

// Campaign telemetry must be part of the determinism contract: the
// deterministic JSON view is byte-identical for FERRUM_JOBS = 1/2/8.
TEST(CampaignTelemetry, MetricsJsonIdenticalAcrossJobCounts) {
  const auto& w = workloads::by_name("backprop");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  std::string baseline;
  for (int jobs : {1, 2, 8}) {
    fault::CampaignOptions options;
    options.trials = 96;
    options.seed = 0xbeef;
    options.jobs = jobs;
    const auto result = fault::run_campaign(build.program, options);
    const std::string text = telemetry::to_json(result).dump();
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline) << "jobs=" << jobs;
    }
    // Observability fields exist without harming determinism.
    EXPECT_EQ(result.trials_per_worker.size(),
              static_cast<std::size_t>(jobs == 1 ? 1 : jobs));
    std::uint64_t worker_total = 0;
    for (std::uint64_t n : result.trials_per_worker) worker_total += n;
    EXPECT_EQ(worker_total, static_cast<std::uint64_t>(result.trials()));
    EXPECT_GE(result.wall_seconds, 0.0);
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(CampaignTelemetry, LatencyHistogramMatchesSummary) {
  const auto& w = workloads::by_name("backprop");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 128;
  options.jobs = 2;
  const auto result = fault::run_campaign(build.program, options);
  std::uint64_t histogram_total = 0;
  for (std::uint64_t bucket : result.latency_histogram) {
    histogram_total += bucket;
  }
  EXPECT_EQ(histogram_total,
            static_cast<std::uint64_t>(result.latency_samples));
  // FERRUM detects faults, so a protected campaign should have samples.
  EXPECT_GT(result.latency_samples, 0);
}

// A telemetry-instrumented campaign under worker threads: shared Registry
// metrics fed from the ordered reduction plus per-worker counters. Runs
// under -DFERRUM_SANITIZE=thread in the sanitizer job.
TEST(CampaignTelemetry, InstrumentedCampaignUnderThreads) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  telemetry::Registry registry;
  fault::CampaignOptions options;
  options.trials = 64;
  options.jobs = 4;
  const auto result = fault::run_campaign(build.program, options);

  registry.counter("campaign/trials").add(
      static_cast<std::uint64_t>(result.trials()));
  for (int i = 0; i < 4; ++i) {
    registry
        .counter(std::string("campaign/outcome/") +
                 fault::outcome_name(static_cast<fault::Outcome>(i)))
        .add(static_cast<std::uint64_t>(result.counts[i]));
  }
  registry.gauge("campaign/sdc_rate").set(result.sdc_rate());
  const Json snapshot = registry.to_json(/*include_timers=*/false);
  const Json* campaign = snapshot.find("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->find("trials")->as_uint(), 64u);
  std::uint64_t outcome_total = 0;
  for (const auto& [name, value] : campaign->find("outcome")->fields()) {
    (void)name;
    outcome_total += value.as_uint();
  }
  EXPECT_EQ(outcome_total, 64u);
}

// ------------------------------------------------------------ exporters

TEST(Export, CampaignJsonCarriesSchemaFields) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 32;
  options.jobs = 2;
  const auto result = fault::run_campaign(build.program, options);

  const Json metrics = telemetry::to_json(result);
  for (const char* key : {"trials", "outcomes", "total_sites",
                          "golden_steps", "sdc_rate", "latency",
                          "sdc_breakdown"}) {
    EXPECT_NE(metrics.find(key), nullptr) << key;
  }
  EXPECT_EQ(metrics.find("trials")->as_int(), 32);
  const Json wall = telemetry::wallclock_json(result);
  EXPECT_NE(wall.find("trials_per_worker"), nullptr);
  EXPECT_NE(wall.find("wall_seconds"), nullptr);
  // The artifact round-trips through the parser.
  const auto parsed = Json::parse(metrics.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), metrics.dump());
}

TEST(Export, ProfileJsonMatchesProfile) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  vm::VmOptions options;
  options.profile = true;
  const vm::VmResult result = vm::run(build.program, options);
  ASSERT_TRUE(result.ok());
  const Json json = telemetry::to_json(*result.profile);
  EXPECT_EQ(json.find("total")->as_uint(), result.steps);
  std::uint64_t by_op_total = 0;
  for (const auto& [op, count] : json.find("by_op")->fields()) {
    (void)op;
    by_op_total += count.as_uint();
  }
  EXPECT_EQ(by_op_total, result.steps);
}

// ---------------------------------------------------------- pass timing

TEST(PassTiming, PipelineRecordsStagesInOrder) {
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  std::vector<std::string> stages;
  for (const auto& [stage, seconds] : build.pass_seconds) {
    stages.push_back(stage);
    EXPECT_GE(seconds, 0.0) << stage;
  }
  const std::vector<std::string> want = {"frontend",       "lower",
                                         "asm-verify",     "protect",
                                         "protect-verify", "protect-check"};
  EXPECT_EQ(stages, want);
  EXPECT_GE(build.asm_stats.pass_seconds, 0.0);
  EXPECT_TRUE(build.check_report.clean());
  EXPECT_GT(build.check_report.total_sites(), 0u);

  auto ir_build = pipeline::build(w.source, Technique::kIrEddi);
  std::vector<std::string> ir_stages;
  for (const auto& [stage, seconds] : ir_build.pass_seconds) {
    ir_stages.push_back(stage);
  }
  const std::vector<std::string> ir_want = {"frontend",   "ir-protect",
                                            "ir-verify",  "lower",
                                            "asm-verify", "protect-check"};
  EXPECT_EQ(ir_stages, ir_want);
  EXPECT_GE(ir_build.ir_stats.pass_seconds, 0.0);
}

}  // namespace
}  // namespace ferrum
