#include <gtest/gtest.h>

#include <cstring>

#include "masm/parser.h"
#include "support/source_location.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using masm::AsmProgram;

AsmProgram parse_ok(const std::string& text) {
  DiagEngine diags;
  AsmProgram program = masm::parse_program(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return program;
}

/// Runs a `main` body given as instruction lines; the program returns rax.
vm::VmResult run_body(const std::string& body,
                      const vm::VmOptions& options = {},
                      const vm::FaultSpec* fault = nullptr) {
  AsmProgram program = parse_ok("main:\n.entry:\n" + body + "\tret\n");
  return vm::run(program, options, fault);
}

TEST(Vm, MovAndReturn) {
  auto result = run_body("\tmovq\t$41, %rax\n\taddq\t$1, %rax\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 42);
}

TEST(Vm, ThirtyTwoBitWritesZeroExtend) {
  auto result = run_body(
      "\tmovq\t$-1, %rax\n"    // all ones
      "\tmovl\t$5, %eax\n");   // must clear the upper half
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 5);
}

TEST(Vm, ByteWritesMerge) {
  auto result = run_body(
      "\tmovq\t$511, %rax\n"   // 0x1ff
      "\tmovb\t$0, %al\n");    // only the low byte clears -> 0x100
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 0x100);
}

TEST(Vm, SignExtendingMoves) {
  auto result = run_body(
      "\tmovq\t$-2, %rcx\n"
      "\tmovslq\t%ecx, %rax\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, -2);
}

TEST(Vm, ZeroExtendingMoves) {
  auto result = run_body(
      "\tmovq\t$-1, %rcx\n"
      "\tmovzbl\t%cl, %eax\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 255);
}

TEST(Vm, StackPushPop) {
  auto result = run_body(
      "\tmovq\t$123, %rcx\n"
      "\tpushq\t%rcx\n"
      "\tmovq\t$0, %rcx\n"
      "\tpopq\t%rax\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 123);
}

TEST(Vm, MemoryThroughFrame) {
  auto result = run_body(
      "\tpushq\t%rbp\n"
      "\tmovq\t%rsp, %rbp\n"
      "\tsubq\t$16, %rsp\n"
      "\tmovl\t$77, -8(%rbp)\n"
      "\tmovl\t-8(%rbp), %eax\n"
      "\tmovq\t%rbp, %rsp\n"
      "\tpopq\t%rbp\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 77);
}

TEST(Vm, IndexedAddressing) {
  auto result = run_body(
      "\tpushq\t%rbp\n"
      "\tmovq\t%rsp, %rbp\n"
      "\tsubq\t$32, %rsp\n"
      "\tmovq\t$2, %rcx\n"
      "\tmovl\t$55, -32(%rbp,%rcx,4)\n"
      "\tleaq\t-32(%rbp,%rcx,4), %rdx\n"
      "\tmovl\t(%rdx), %eax\n"
      "\tmovq\t%rbp, %rsp\n"
      "\tpopq\t%rbp\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 55);
}

struct CondCase {
  const char* cmp;   // cmp line setting flags
  const char* cc;    // condition that must hold
  bool expected;
};

class VmCondTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(VmCondTest, SetccMatchesSemantics) {
  const CondCase& cs = GetParam();
  auto result = run_body(std::string("\tmovq\t$0, %rax\n") + cs.cmp +
                         "\tset" + cs.cc + "\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, cs.expected ? 1 : 0)
      << cs.cmp << " set" << cs.cc;
}

INSTANTIATE_TEST_SUITE_P(
    SignedConditions, VmCondTest,
    ::testing::Values(
        // AT&T: cmp b, a sets flags of a - b.
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$5, %rcx\n", "e", true},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$6, %rcx\n", "e", false},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$6, %rcx\n", "ne", true},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$6, %rcx\n", "l", true},
        CondCase{"\tmovq\t$-5, %rcx\n\tcmpq\t$3, %rcx\n", "l", true},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$5, %rcx\n", "le", true},
        CondCase{"\tmovq\t$7, %rcx\n\tcmpq\t$5, %rcx\n", "g", true},
        CondCase{"\tmovq\t$-7, %rcx\n\tcmpq\t$-9, %rcx\n", "g", true},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$5, %rcx\n", "ge", true},
        CondCase{"\tmovq\t$5, %rcx\n\tcmpq\t$7, %rcx\n", "ge", false}));

TEST(Vm, SignedOverflowFlagInComparison) {
  // INT64_MIN < 1 must hold despite wraparound (OF/SF logic).
  auto result = run_body(
      "\tmovq\t$0, %rax\n"
      "\tmovq\t$1, %rcx\n"
      "\tshlq\t$63, %rcx\n"  // rcx = INT64_MIN
      "\tcmpq\t$1, %rcx\n"
      "\tsetl\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(Vm, JccControlFlow) {
  AsmProgram program = parse_ok(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$10, %rcx\n"
      "\tmovq\t$0, %rax\n"
      ".loop:\n"
      "\taddq\t%rcx, %rax\n"
      "\tsubq\t$1, %rcx\n"
      "\tcmpq\t$0, %rcx\n"
      "\tjg\t.loop\n"
      "\tret\n");
  auto result = vm::run(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 55);
}

TEST(Vm, CallAndIntrinsics) {
  AsmProgram program = parse_ok(
      "helper:\n"
      ".entry:\n"
      "\tmovq\t%rdi, %rax\n"
      "\taddq\t%rdi, %rax\n"
      "\tret\n"
      "main:\n"
      ".entry:\n"
      "\tmovq\t$21, %rdi\n"
      "\tcall\thelper\n"
      "\tmovq\t%rax, %rdi\n"
      "\tcall\tprint_int\n"
      "\tret\n");
  auto result = vm::run(program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(result.output[0]), 42);
}

TEST(Vm, TwoAddressDivide) {
  auto result = run_body(
      "\tmovq\t$-17, %rax\n"
      "\tmovq\t$5, %rcx\n"
      "\tidivq\t%rcx, %rax\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, -3);
  auto rem = run_body(
      "\tmovq\t$-17, %rax\n"
      "\tmovq\t$5, %rcx\n"
      "\tiremq\t%rcx, %rax\n");
  ASSERT_TRUE(rem.ok());
  EXPECT_EQ(rem.return_value, -2);
}

TEST(Vm, DivideByZeroTraps) {
  auto result = run_body(
      "\tmovq\t$1, %rax\n"
      "\tmovq\t$0, %rcx\n"
      "\tidivq\t%rcx, %rax\n");
  EXPECT_EQ(result.status, vm::ExitStatus::kTrapDivide);
}

TEST(Vm, WildAddressTraps) {
  auto result = run_body(
      "\tmovq\t$1, %rcx\n"
      "\tmovq\t(%rcx), %rax\n");  // address 1 is unmapped
  EXPECT_EQ(result.status, vm::ExitStatus::kTrapMemory);
}

TEST(Vm, StepBudgetTraps) {
  vm::VmOptions options;
  options.max_steps = 500;
  AsmProgram program = parse_ok(
      "main:\n.entry:\n.loop:\n\tjmp\t.loop\n\tret\n");
  auto result = vm::run(program, options);
  EXPECT_EQ(result.status, vm::ExitStatus::kTrapSteps);
}

TEST(Vm, CorruptedReturnAddressTraps) {
  auto result = run_body(
      "\tpushq\t%rbp\n"
      "\tmovq\t%rsp, %rbp\n"
      "\tmovq\t$12345, 8(%rbp)\n"  // smash the pushed return address
      "\tpopq\t%rbp\n");
  EXPECT_EQ(result.status, vm::ExitStatus::kTrapInvalid);
}

TEST(Vm, DetectTrapReportsDetected) {
  auto result = run_body("\tcall\t__ferrum_detect\n");
  EXPECT_EQ(result.status, vm::ExitStatus::kDetected);
}

TEST(Vm, ScalarSseArithmetic) {
  // 2.0 * 3.0 + 1.0 == 7.0; bits of 7.0 land in rax via movq.
  auto result = run_body(
      "\tmovq\t$4611686018427387904, %rax\n"  // bits of 2.0
      "\tmovq\t%rax, %xmm0\n"
      "\tmovq\t$4613937818241073152, %rcx\n"  // bits of 3.0
      "\tmovq\t%rcx, %xmm1\n"
      "\tmulsd\t%xmm1, %xmm0\n"
      "\tmovq\t$4607182418800017408, %rdx\n"  // bits of 1.0
      "\tmovq\t%rdx, %xmm2\n"
      "\taddsd\t%xmm2, %xmm0\n"
      "\tmovq\t%xmm0, %rax\n");
  ASSERT_TRUE(result.ok());
  double value;
  std::memcpy(&value, &result.return_value, sizeof(value));
  EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(Vm, UcomisdSetsCarryForLess) {
  auto result = run_body(
      "\tmovq\t$0, %rax\n"
      "\tmovq\t$4607182418800017408, %rcx\n"  // 1.0
      "\tmovq\t%rcx, %xmm0\n"
      "\tmovq\t$4611686018427387904, %rdx\n"  // 2.0
      "\tmovq\t%rdx, %xmm1\n"
      "\tucomisd\t%xmm1, %xmm0\n"  // flags of 1.0 ? 2.0
      "\tsetb\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(Vm, SimdCheckSequenceMatchesWhenEqual) {
  // The FERRUM Fig 6 machinery: identical lane pairs xor to zero.
  auto result = run_body(
      "\tmovq\t$111, %rax\n"
      "\tmovq\t$222, %rcx\n"
      "\tmovq\t%rax, %xmm0\n"
      "\tpinsrq\t$1, %rcx, %xmm0\n"
      "\tmovq\t%rax, %xmm1\n"
      "\tpinsrq\t$1, %rcx, %xmm1\n"
      "\tmovq\t$333, %rdx\n"
      "\tmovq\t%rdx, %xmm2\n"
      "\tmovq\t%rdx, %xmm3\n"
      "\tvinserti128\t$1, %xmm2, %ymm0\n"
      "\tvinserti128\t$1, %xmm3, %ymm1\n"
      "\tvpxor\t%ymm1, %ymm0, %ymm0\n"
      "\tvptest\t%ymm0, %ymm0\n"
      "\tmovq\t$0, %rax\n"
      "\tsete\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);  // ZF: all lanes matched
}

TEST(Vm, SimdCheckSequenceCatchesMismatch) {
  auto result = run_body(
      "\tmovq\t$111, %rax\n"
      "\tmovq\t%rax, %xmm0\n"
      "\tmovq\t$112, %rcx\n"        // mismatching duplicate
      "\tmovq\t%rcx, %xmm1\n"
      "\tvpxor\t%xmm1, %xmm0, %xmm0\n"
      "\tvptest\t%xmm0, %xmm0\n"
      "\tmovq\t$0, %rax\n"
      "\tsetne\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);  // mismatch detected
}

TEST(Vm, XmmFormVpxorIgnoresStaleUpperLanes) {
  // Garbage in lanes 2-3 must not affect a 128-bit comparison.
  auto result = run_body(
      "\tmovq\t$99, %rax\n"
      "\tmovq\t%rax, %xmm2\n"
      "\tvinserti128\t$1, %xmm2, %ymm0\n"  // pollute ymm0 upper lanes
      "\tmovq\t$7, %rcx\n"
      "\tmovq\t%rcx, %xmm0\n"              // low lane only
      "\tmovq\t%rcx, %xmm1\n"
      "\tvpxor\t%xmm1, %xmm0, %xmm0\n"
      "\tvptest\t%xmm0, %xmm0\n"
      "\tmovq\t$0, %rax\n"
      "\tsete\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(VmFault, GprBitFlipLands) {
  // One instruction writes rax; flipping bit 3 of its site changes 42->34.
  vm::FaultSpec fault;
  fault.site = 0;
  fault.bit = 3;
  auto result = run_body("\tmovq\t$42, %rax\n", {}, &fault);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.fault_injected);
  EXPECT_EQ(result.return_value, 42 ^ 8);
  ASSERT_TRUE(result.fault_landing.has_value());
  EXPECT_EQ(result.fault_landing->kind, vm::FaultKind::kGprWrite);
}

TEST(VmFault, BranchDecisionFlip) {
  const std::string body =
      "\tmovq\t$1, %rcx\n"
      "\tmovq\t$7, %rax\n"
      "\tcmpq\t$0, %rcx\n"
      "\tje\t.skip\n"        // not taken normally
      "\tmovq\t$9, %rax\n"
      ".skip:\n";
  AsmProgram program =
      parse_ok("main:\n.entry:\n" + body + "\tret\n");
  // Unfaulted: rax = 9.
  auto clean = vm::run(program);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.return_value, 9);
  // The je is site index 3 (two movq writes + cmp flags before it).
  vm::FaultSpec fault;
  fault.site = 3;
  fault.bit = 0;
  auto faulted = vm::run(program, {}, &fault);
  ASSERT_TRUE(faulted.ok());
  ASSERT_TRUE(faulted.fault_landing.has_value());
  EXPECT_EQ(faulted.fault_landing->kind, vm::FaultKind::kBranchDecision);
  EXPECT_EQ(faulted.return_value, 7);  // branch inverted, skip taken
}

TEST(VmFault, FlagsFlipChangesComparison) {
  const std::string body =
      "\tmovq\t$5, %rcx\n"
      "\tmovq\t$0, %rax\n"
      "\tcmpq\t$5, %rcx\n"
      "\tsete\t%al\n";
  AsmProgram program = parse_ok("main:\n.entry:\n" + body + "\tret\n");
  auto clean = vm::run(program);
  EXPECT_EQ(clean.return_value, 1);
  vm::FaultSpec fault;
  fault.site = 2;  // the cmp's flags write
  fault.bit = 0;   // ZF
  auto faulted = vm::run(program, {}, &fault);
  ASSERT_TRUE(faulted.fault_landing.has_value());
  EXPECT_EQ(faulted.fault_landing->kind, vm::FaultKind::kFlagsWrite);
  EXPECT_EQ(faulted.return_value, 0);
}

TEST(VmFault, SiteCountIsDeterministic) {
  AsmProgram program = parse_ok(
      "main:\n.entry:\n"
      "\tmovq\t$10, %rcx\n"
      "\tmovq\t$0, %rax\n"
      ".loop:\n"
      "\taddq\t%rcx, %rax\n"
      "\tsubq\t$1, %rcx\n"
      "\tcmpq\t$0, %rcx\n"
      "\tjg\t.loop\n"
      "\tret\n");
  auto a = vm::run(program);
  auto b = vm::run(program);
  EXPECT_EQ(a.fi_sites, b.fi_sites);
  EXPECT_GT(a.fi_sites, 0u);
}

TEST(VmFault, StoreSitesOnlyWithExtendedModel) {
  const std::string body =
      "\tpushq\t%rbp\n"
      "\tmovq\t%rsp, %rbp\n"
      "\tsubq\t$16, %rsp\n"
      "\tmovq\t$7, -8(%rbp)\n"
      "\tmovq\t-8(%rbp), %rax\n"
      "\tmovq\t%rbp, %rsp\n"
      "\tpopq\t%rbp\n";
  auto basic = run_body(body);
  vm::VmOptions extended;
  extended.fault_store_data = true;
  auto with_stores = run_body(body, extended);
  EXPECT_GT(with_stores.fi_sites, basic.fi_sites);
}

}  // namespace
}  // namespace ferrum
