#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/ir.h"
#include "ir/printer.h"

namespace ferrum::ir {
namespace {

TEST(Type, SizesAndPredicates) {
  EXPECT_EQ(type_size(Type::i1()), 1);
  EXPECT_EQ(type_size(Type::i8()), 1);
  EXPECT_EQ(type_size(Type::i32()), 4);
  EXPECT_EQ(type_size(Type::i64()), 8);
  EXPECT_EQ(type_size(Type::f64()), 8);
  EXPECT_EQ(type_size(Type::ptr(TypeKind::kI32)), 8);

  EXPECT_TRUE(Type::i32().is_int());
  EXPECT_FALSE(Type::f64().is_int());
  EXPECT_TRUE(Type::f64().is_float());
  EXPECT_TRUE(Type::ptr(TypeKind::kF64).is_ptr());
  EXPECT_EQ(Type::ptr(TypeKind::kF64).pointee(), Type::f64());
  EXPECT_TRUE(Type::void_type().is_void());
}

TEST(Type, ToString) {
  EXPECT_EQ(Type::i32().to_string(), "i32");
  EXPECT_EQ(Type::f64().to_string(), "f64");
  EXPECT_EQ(Type::ptr(TypeKind::kI64).to_string(), "i64*");
}

TEST(Module, ConstantInterning) {
  Module module;
  EXPECT_EQ(module.const_i32(5), module.const_i32(5));
  EXPECT_NE(module.const_i32(5), module.const_i32(6));
  EXPECT_NE(module.const_i32(5), module.const_i64(5));
  EXPECT_EQ(module.const_f64(1.5), module.const_f64(1.5));
  EXPECT_NE(module.const_f64(1.5), module.const_f64(-1.5));
  // +0.0 and -0.0 have different bit patterns and must stay distinct.
  EXPECT_NE(module.const_f64(0.0), module.const_f64(-0.0));
}

TEST(Module, FunctionLookup) {
  Module module;
  Function* fn = module.add_function("f", Type::i32());
  EXPECT_EQ(module.find_function("f"), fn);
  EXPECT_EQ(module.find_function("g"), nullptr);
}

TEST(Module, GlobalLookupAndTypes) {
  Module module;
  GlobalVar* g = module.add_global(TypeKind::kF64, 10, "weights");
  EXPECT_EQ(module.find_global("weights"), g);
  EXPECT_EQ(g->type(), Type::ptr(TypeKind::kF64));
  EXPECT_EQ(g->count(), 10);
}

TEST(Module, BuiltinsAreIdempotent) {
  Module module;
  Function* p1 = module.builtin_print_int();
  Function* p2 = module.builtin_print_int();
  EXPECT_EQ(p1, p2);
  EXPECT_TRUE(p1->is_builtin);
  EXPECT_TRUE(p1->is_declaration());
  EXPECT_EQ(module.builtin_sqrt()->return_type(), Type::f64());
  EXPECT_NE(module.builtin_detect(), nullptr);
}

TEST(Function, BlockNamesAreUnique) {
  Module module;
  Function* fn = module.add_function("f", Type::void_type());
  BasicBlock* a = fn->add_block("loop");
  BasicBlock* b = fn->add_block("loop");
  BasicBlock* c = fn->add_block("loop");
  EXPECT_NE(a->name(), b->name());
  EXPECT_NE(b->name(), c->name());
  EXPECT_NE(a->name(), c->name());
}

TEST(Function, EntryIsFirstBlock) {
  Module module;
  Function* fn = module.add_function("f", Type::void_type());
  EXPECT_EQ(fn->entry(), nullptr);
  BasicBlock* entry = fn->add_block("entry");
  fn->add_block("other");
  EXPECT_EQ(fn->entry(), entry);
  EXPECT_FALSE(fn->is_declaration());
}

TEST(Builder, SimpleAddFunction) {
  Module module;
  Function* fn = module.add_function("add", Type::i32());
  Argument* a = fn->add_arg(Type::i32(), "a");
  Argument* b = fn->add_arg(Type::i32(), "b");
  IRBuilder builder(module);
  builder.set_insert_point(fn->add_block("entry"));
  Instruction* sum = builder.create_add(a, b);
  builder.create_ret(sum);

  EXPECT_EQ(fn->entry()->size(), 2u);
  EXPECT_EQ(sum->op(), Opcode::kAdd);
  EXPECT_EQ(sum->type(), Type::i32());
  EXPECT_EQ(fn->entry()->terminator()->op(), Opcode::kRet);
}

TEST(Builder, LoadStoreAllocaTypes) {
  Module module;
  Function* fn = module.add_function("f", Type::void_type());
  IRBuilder builder(module);
  builder.set_insert_point(fn->add_block("entry"));
  Instruction* slot = builder.create_alloca(TypeKind::kI64);
  EXPECT_EQ(slot->type(), Type::ptr(TypeKind::kI64));
  Instruction* loaded = builder.create_load(slot);
  EXPECT_EQ(loaded->type(), Type::i64());
  builder.create_store(module.const_i64(9), slot);
  builder.create_ret_void();
  EXPECT_EQ(fn->entry()->size(), 4u);
}

TEST(Builder, GepScalesByElement) {
  Module module;
  GlobalVar* g = module.add_global(TypeKind::kF64, 4, "g");
  Function* fn = module.add_function("f", Type::void_type());
  IRBuilder builder(module);
  builder.set_insert_point(fn->add_block("entry"));
  Instruction* gep = builder.create_gep(g, module.const_i64(2));
  EXPECT_EQ(gep->type(), Type::ptr(TypeKind::kF64));
  builder.create_ret_void();
}

TEST(Builder, CmpAndBranchStructure) {
  Module module;
  Function* fn = module.add_function("f", Type::i32());
  IRBuilder builder(module);
  BasicBlock* entry = fn->add_block("entry");
  BasicBlock* then_bb = fn->add_block("then");
  BasicBlock* else_bb = fn->add_block("else");
  builder.set_insert_point(entry);
  Instruction* cond =
      builder.create_icmp(CmpPred::kLt, module.const_i32(1), module.const_i32(2));
  EXPECT_EQ(cond->type(), Type::i1());
  Instruction* br = builder.create_cond_br(cond, then_bb, else_bb);
  EXPECT_EQ(br->targets[0], then_bb);
  EXPECT_EQ(br->targets[1], else_bb);
  builder.set_insert_point(then_bb);
  builder.create_ret(module.const_i32(1));
  builder.set_insert_point(else_bb);
  builder.create_ret(module.const_i32(0));
}

TEST(Builder, InsertAtIndexKeepsOrder) {
  Module module;
  Function* fn = module.add_function("f", Type::void_type());
  BasicBlock* block = fn->add_block("entry");
  IRBuilder builder(module);
  builder.set_insert_point(block);
  builder.create_ret_void();
  auto inst = std::make_unique<Instruction>(Opcode::kAlloca,
                                            Type::ptr(TypeKind::kI32));
  inst->alloca_elem = TypeKind::kI32;
  Instruction* inserted = block->insert(0, std::move(inst));
  EXPECT_EQ(block->at(0), inserted);
  EXPECT_EQ(block->size(), 2u);
  EXPECT_EQ(inserted->parent, block);
}

TEST(Printer, RendersAddFunction) {
  Module module;
  Function* fn = module.add_function("add", Type::i32());
  Argument* a = fn->add_arg(Type::i32(), "a");
  Argument* b = fn->add_arg(Type::i32(), "b");
  IRBuilder builder(module);
  builder.set_insert_point(fn->add_block("entry"));
  builder.create_ret(builder.create_add(a, b));

  const std::string text = print(*fn);
  EXPECT_NE(text.find("define i32 @add(i32 %a, i32 %b)"), std::string::npos);
  EXPECT_NE(text.find("%0 = add i32 %a, %b"), std::string::npos);
  EXPECT_NE(text.find("ret i32 %0"), std::string::npos);
}

TEST(Printer, RendersGlobalsAndDeclarations) {
  Module module;
  GlobalVar* g = module.add_global(TypeKind::kI32, 8, "table");
  g->init = {1, 2, 3};
  module.builtin_print_int();
  const std::string text = print(module);
  EXPECT_NE(text.find("@table = global i32 x 8 init [1, 2, 3]"),
            std::string::npos);
  EXPECT_NE(text.find("declare void @print_int(i64)"), std::string::npos);
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(is_terminator(Opcode::kRet));
  EXPECT_TRUE(is_terminator(Opcode::kBr));
  EXPECT_TRUE(is_terminator(Opcode::kCondBr));
  EXPECT_FALSE(is_terminator(Opcode::kAdd));

  EXPECT_TRUE(is_duplicable(Opcode::kLoad));
  EXPECT_TRUE(is_duplicable(Opcode::kGep));
  EXPECT_TRUE(is_duplicable(Opcode::kFMul));
  EXPECT_FALSE(is_duplicable(Opcode::kStore));
  EXPECT_FALSE(is_duplicable(Opcode::kCall));
  EXPECT_FALSE(is_duplicable(Opcode::kAlloca));
  EXPECT_FALSE(is_duplicable(Opcode::kCondBr));
}

TEST(BasicBlock, TakeInstructionsEmptiesBlock) {
  Module module;
  Function* fn = module.add_function("f", Type::void_type());
  BasicBlock* block = fn->add_block("entry");
  IRBuilder builder(module);
  builder.set_insert_point(block);
  builder.create_alloca(TypeKind::kI32);
  builder.create_ret_void();
  auto insts = block->take_instructions();
  EXPECT_EQ(insts.size(), 2u);
  EXPECT_EQ(block->size(), 0u);
}

}  // namespace
}  // namespace ferrum::ir
