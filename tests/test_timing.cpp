#include <gtest/gtest.h>

#include "masm/parser.h"
#include "support/source_location.h"
#include "vm/timing.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using masm::AsmInst;
using masm::Gpr;
using masm::Op;
using masm::Operand;

AsmInst mov_imm(Gpr dst, std::int64_t value) {
  return AsmInst(Op::kMov, {Operand::make_imm(value, 8),
                            Operand::make_reg(dst, 8)});
}

AsmInst add_reg(Gpr src, Gpr dst) {
  return AsmInst(Op::kAdd, {Operand::make_reg(src, 8),
                            Operand::make_reg(dst, 8)});
}

TEST(Timing, DependentChainAccumulatesLatency) {
  vm::TimingParams params;
  vm::TimingModel model(params);
  model.step(mov_imm(Gpr::kRax, 1), 0);
  const int chain = 20;
  for (int i = 0; i < chain; ++i) model.step(add_reg(Gpr::kRax, Gpr::kRax), 0);
  // A serial add chain takes at least `chain` cycles.
  EXPECT_GE(model.cycles(), static_cast<std::uint64_t>(chain));
}

TEST(Timing, IndependentOpsRunInParallel) {
  vm::TimingParams params;
  vm::TimingModel serial(params);
  vm::TimingModel parallel(params);
  for (int i = 0; i < 40; ++i) serial.step(add_reg(Gpr::kRax, Gpr::kRax), 0);
  // Four independent chains interleaved.
  const Gpr regs[4] = {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRbx};
  for (int i = 0; i < 40; ++i) {
    parallel.step(add_reg(regs[i % 4], regs[i % 4]), 0);
  }
  EXPECT_LT(parallel.cycles(), serial.cycles());
}

TEST(Timing, BranchPortIsABottleneck) {
  vm::TimingParams params;
  vm::TimingModel branches(params);
  vm::TimingModel alus(params);
  AsmInst jmp(Op::kJmp, {Operand::make_label("x")});
  for (int i = 0; i < 64; ++i) branches.step(jmp, 0);
  const Gpr regs[4] = {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRbx};
  for (int i = 0; i < 64; ++i) alus.step(add_reg(regs[i % 4], regs[i % 4]), 0);
  // One branch unit vs four ALUs: branch stream is slower.
  EXPECT_GT(branches.cycles(), alus.cycles());
}

TEST(Timing, VectorOpsDoNotContendWithScalar) {
  vm::TimingParams params;
  params.issue_width = 8;  // keep fetch bandwidth out of the picture
  // Scalar-only stream.
  vm::TimingModel scalar_only(params);
  const Gpr regs[4] = {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRbx};
  for (int i = 0; i < 64; ++i) {
    scalar_only.step(add_reg(regs[i % 4], regs[i % 4]), 0);
  }
  // Same scalar stream with an independent vector op after each (uses the
  // otherwise-idle vector ports; only fetch bandwidth is shared).
  vm::TimingModel mixed(params);
  AsmInst vec(Op::kVpxor, {Operand::make_xmm(1), Operand::make_xmm(2),
                           Operand::make_xmm(3)});
  for (int i = 0; i < 64; ++i) {
    mixed.step(add_reg(regs[i % 4], regs[i % 4]), 0);
    if (i % 2 == 0) mixed.step(vec, 0);  // 1 vector op per 2 scalar ops
  }
  // The vector traffic rides on idle ports: well under proportional cost.
  EXPECT_LT(mixed.cycles(), scalar_only.cycles() * 3 / 2);
}

TEST(Timing, StoreForwardingDelaysLoads) {
  vm::TimingParams params;
  vm::TimingModel model(params);
  masm::MemRef cell;
  cell.base = Gpr::kRbp;
  cell.disp = -8;
  // Store the value we just loaded so each round trip is serialised
  // through the memory cell.
  AsmInst store(Op::kMov, {Operand::make_reg(Gpr::kRcx, 8),
                           Operand::make_mem(cell, 8)});
  AsmInst load(Op::kMov, {Operand::make_mem(cell, 8),
                          Operand::make_reg(Gpr::kRcx, 8)});
  // Store/load ping-pong through the same cell: each round trip costs at
  // least the forwarding latency.
  const int rounds = 10;
  for (int i = 0; i < rounds; ++i) {
    model.step(store, 0x2000);
    model.step(load, 0x2000);
  }
  EXPECT_GE(model.cycles(),
            static_cast<std::uint64_t>(rounds * params.lat_store_forward));
}

TEST(Timing, IssueWidthBoundsThroughput) {
  vm::TimingParams params;
  params.issue_width = 2;
  vm::TimingModel narrow(params);
  params.issue_width = 8;
  params.alu_units = 8;
  vm::TimingModel wide(params);
  const Gpr regs[4] = {Gpr::kRax, Gpr::kRcx, Gpr::kRdx, Gpr::kRbx};
  for (int i = 0; i < 128; ++i) {
    narrow.step(add_reg(regs[i % 4], regs[i % 4]), 0);
    wide.step(add_reg(regs[i % 4], regs[i % 4]), 0);
  }
  EXPECT_GT(narrow.cycles(), wide.cycles());
  EXPECT_GE(narrow.cycles(), 128u / 2);
}

TEST(Timing, DivisionIsExpensive) {
  vm::TimingParams params;
  vm::TimingModel model(params);
  AsmInst div(Op::kIdiv, {Operand::make_reg(Gpr::kRcx, 8),
                          Operand::make_reg(Gpr::kRax, 8)});
  model.step(div, 0);
  model.step(add_reg(Gpr::kRax, Gpr::kRax), 0);  // depends on the divide
  EXPECT_GE(model.cycles(),
            static_cast<std::uint64_t>(params.lat_idiv));
}

TEST(Timing, VmIntegrationProducesCycles) {
  DiagEngine diags;
  auto program = masm::parse_program(
      "main:\n.entry:\n"
      "\tmovq\t$10, %rcx\n"
      "\tmovq\t$0, %rax\n"
      ".loop:\n"
      "\taddq\t%rcx, %rax\n"
      "\tsubq\t$1, %rcx\n"
      "\tcmpq\t$0, %rcx\n"
      "\tjg\t.loop\n"
      "\tret\n",
      diags);
  ASSERT_FALSE(diags.has_errors());
  vm::VmOptions options;
  options.timing = true;
  auto result = vm::run(program, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.cycles, 0u);
  EXPECT_LT(result.cycles, result.steps * 30);
  // Determinism.
  auto again = vm::run(program, options);
  EXPECT_EQ(result.cycles, again.cycles);
}

// Unit counts beyond the fixed port_free_[7][kMaxUnitsPerClass] arrays
// used to index out of bounds (alu_units = 9 walked past the row); the
// constructor now clamps into [1, kMaxUnitsPerClass].
TEST(Timing, UnitCountsClampedToArrayCapacity) {
  vm::TimingParams oversized;
  oversized.alu_units = 9;  // > kMaxUnitsPerClass
  oversized.load_units = 100;
  oversized.vec_units = 1000;
  vm::TimingModel model(oversized);
  EXPECT_EQ(model.params().alu_units, vm::kMaxUnitsPerClass);
  EXPECT_EQ(model.params().load_units, vm::kMaxUnitsPerClass);
  EXPECT_EQ(model.params().vec_units, vm::kMaxUnitsPerClass);
  // Hammer the clamped model well past the unit count: every issue must
  // stay inside the array (caught by ASan in the sanitizer job).
  for (int i = 0; i < 64; ++i) {
    model.step(add_reg(static_cast<Gpr>(i % 4), static_cast<Gpr>(i % 4)), 0);
  }
  EXPECT_GT(model.cycles(), 0u);
  // A clamped 9-unit request behaves exactly like an 8-unit machine.
  vm::TimingParams eight;
  eight.alu_units = 8;
  eight.load_units = 8;
  eight.vec_units = 8;
  vm::TimingModel reference(eight);
  for (int i = 0; i < 64; ++i) {
    reference.step(add_reg(static_cast<Gpr>(i % 4), static_cast<Gpr>(i % 4)),
                   0);
  }
  EXPECT_EQ(model.cycles(), reference.cycles());
}

TEST(Timing, NonPositiveUnitCountsClampToOne) {
  vm::TimingParams params;
  params.alu_units = 0;
  params.branch_units = -5;
  params.issue_width = 0;
  vm::TimingModel model(params);
  EXPECT_EQ(model.params().alu_units, 1);
  EXPECT_EQ(model.params().branch_units, 1);
  EXPECT_EQ(model.params().issue_width, 1);
  // Must make forward progress (a 0 issue width would otherwise hang the
  // fetch model).
  for (int i = 0; i < 16; ++i) model.step(add_reg(Gpr::kRax, Gpr::kRax), 0);
  EXPECT_GT(model.cycles(), 0u);
}

}  // namespace
}  // namespace ferrum
