// Property sweep: MiniASM comparison/arithmetic flag semantics must agree
// with C++ signed-integer semantics for every condition code, across
// widths and tricky operand values (boundaries, sign changes, overflow).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "masm/parser.h"
#include "support/source_location.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

vm::VmResult run_main(const std::string& body) {
  DiagEngine diags;
  auto program =
      masm::parse_program("main:\n.entry:\n" + body + "\tret\n", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return vm::run(program);
}

struct CmpSweepCase {
  std::int64_t a;
  std::int64_t b;
};

constexpr std::int64_t kInteresting[] = {
    0, 1, -1, 2, -2, 127, -128, 255, 32767, -32768,
    2147483647LL, -2147483648LL, 4294967295LL,
    9223372036854775807LL, -9223372036854775807LL - 1};

class CmpSweep64 : public ::testing::TestWithParam<CmpSweepCase> {};

TEST_P(CmpSweep64, AllConditionsMatchCpp) {
  const auto [a, b] = GetParam();
  struct Cond {
    const char* name;
    bool expected;
  };
  const Cond conds[] = {
      {"e", a == b}, {"ne", a != b}, {"l", a < b},
      {"le", a <= b}, {"g", a > b},  {"ge", a >= b},
  };
  for (const Cond& cond : conds) {
    // AT&T: cmp b, a -> flags of (a - b).
    const std::string body =
        "\tmovq\t$" + std::to_string(a) + ", %rcx\n" +
        "\tmovq\t$" + std::to_string(b) + ", %rdx\n" +
        "\tmovq\t$0, %rax\n"
        "\tcmpq\t%rdx, %rcx\n"
        "\tset" + cond.name + "\t%al\n";
    const auto result = run_main(body);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.return_value, cond.expected ? 1 : 0)
        << a << " ? " << b << " set" << cond.name;
  }
}

std::vector<CmpSweepCase> all_pairs() {
  std::vector<CmpSweepCase> cases;
  for (std::int64_t a : kInteresting) {
    for (std::int64_t b : kInteresting) cases.push_back({a, b});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Pairs, CmpSweep64, ::testing::ValuesIn(all_pairs()));

class CmpSweep32 : public ::testing::TestWithParam<CmpSweepCase> {};

TEST_P(CmpSweep32, SignedConditionsAt32Bits) {
  const std::int32_t a = static_cast<std::int32_t>(GetParam().a);
  const std::int32_t b = static_cast<std::int32_t>(GetParam().b);
  struct Cond {
    const char* name;
    bool expected;
  };
  const Cond conds[] = {{"l", a < b}, {"ge", a >= b}, {"e", a == b}};
  for (const Cond& cond : conds) {
    const std::string body =
        "\tmovq\t$" + std::to_string(static_cast<std::int64_t>(a)) +
        ", %rcx\n" +
        "\tmovq\t$" + std::to_string(static_cast<std::int64_t>(b)) +
        ", %rdx\n" +
        "\tmovq\t$0, %rax\n"
        "\tcmpl\t%edx, %ecx\n"
        "\tset" + cond.name + "\t%al\n";
    const auto result = run_main(body);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.return_value, cond.expected ? 1 : 0)
        << a << " ?32 " << b << " set" << cond.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, CmpSweep32, ::testing::ValuesIn(all_pairs()));

struct AluCase {
  const char* op;  // mnemonic prefix, e.g. "add"
  std::int64_t a;
  std::int64_t b;
  std::int64_t expected;
};

class AluSweep : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSweep, ResultMatches) {
  const AluCase& cs = GetParam();
  const std::string body =
      "\tmovq\t$" + std::to_string(cs.a) + ", %rax\n" +
      "\tmovq\t$" + std::to_string(cs.b) + ", %rcx\n" +
      "\t" + cs.op + "q\t%rcx, %rax\n";
  const auto result = run_main(body);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, cs.expected)
      << cs.a << " " << cs.op << " " << cs.b;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluSweep,
    ::testing::Values(
        AluCase{"add", 7, 5, 12},
        AluCase{"add", 9223372036854775807LL, 1,
                -9223372036854775807LL - 1},  // wraparound
        AluCase{"sub", 5, 7, -2},
        AluCase{"sub", -9223372036854775807LL - 1, 1,
                9223372036854775807LL},
        AluCase{"imul", -3, 7, -21},
        AluCase{"imul", 1LL << 40, 1LL << 30, 0},  // high bits lost
        AluCase{"and", 0b1100, 0b1010, 0b1000},
        AluCase{"or", 0b1100, 0b1010, 0b1110},
        AluCase{"xor", 0b1100, 0b1010, 0b0110},
        AluCase{"idiv", -100, 7, -14},
        AluCase{"idiv", 100, -7, -14},
        AluCase{"irem", -100, 7, -2},
        AluCase{"irem", 100, -7, 2}));

struct ShiftCase {
  const char* op;
  std::int64_t value;
  int count;
  std::int64_t expected;
};

class ShiftSweep : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(ShiftSweep, ImmediateShifts) {
  const ShiftCase& cs = GetParam();
  const std::string body =
      "\tmovq\t$" + std::to_string(cs.value) + ", %rax\n" +
      "\t" + cs.op + "q\t$" + std::to_string(cs.count) + ", %rax\n";
  const auto result = run_main(body);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, cs.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, ShiftSweep,
    ::testing::Values(
        ShiftCase{"shl", 1, 0, 1},
        ShiftCase{"shl", 1, 63, -9223372036854775807LL - 1},
        ShiftCase{"shl", 5, 10, 5120},
        ShiftCase{"sar", -1024, 3, -128},
        ShiftCase{"sar", -1, 63, -1},
        ShiftCase{"sar", 4096, 12, 1}));

TEST(Flags32, OverflowBoundary) {
  // At 32 bits, INT32_MIN < 1 must hold (OF xor SF logic at width 4).
  const auto result = run_main(
      "\tmovq\t$-2147483648, %rcx\n"
      "\tmovq\t$0, %rax\n"
      "\tcmpl\t$1, %ecx\n"
      "\tsetl\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(Flags8, ByteComparisons) {
  // cmpb compares only the low bytes.
  const auto result = run_main(
      "\tmovq\t$511, %rcx\n"   // low byte 0xff
      "\tmovq\t$255, %rdx\n"   // low byte 0xff
      "\tmovq\t$0, %rax\n"
      "\tcmpb\t%dl, %cl\n"
      "\tsete\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(FlagsTest, TestInstructionSemantics) {
  const auto result = run_main(
      "\tmovq\t$6, %rcx\n"
      "\tmovq\t$0, %rax\n"
      "\ttestb\t$1, %cl\n"   // 6 & 1 == 0 -> ZF
      "\tsete\t%al\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 1);
}

TEST(FlagsUcomisd, OrderingMatrix) {
  // (a ? b) for a in {1.0, 2.0}, b = 2.0 across a/b/e conditions.
  struct Case {
    std::uint64_t a_bits;
    const char* cc;
    int expected;
  };
  const std::uint64_t one = 0x3ff0000000000000ULL;   // 1.0
  const std::uint64_t two = 0x4000000000000000ULL;   // 2.0
  const Case cases[] = {
      {one, "b", 1}, {one, "be", 1}, {one, "a", 0}, {one, "e", 0},
      {two, "e", 1}, {two, "ae", 1}, {two, "b", 0}, {two, "a", 0},
  };
  for (const Case& cs : cases) {
    const std::string body =
        "\tmovq\t$" + std::to_string(static_cast<std::int64_t>(cs.a_bits)) +
        ", %rcx\n"
        "\tmovq\t%rcx, %xmm0\n"
        "\tmovq\t$" + std::to_string(static_cast<std::int64_t>(two)) +
        ", %rdx\n"
        "\tmovq\t%rdx, %xmm1\n"
        "\tmovq\t$0, %rax\n"
        "\tucomisd\t%xmm1, %xmm0\n"
        "\tset" + cs.cc + "\t%al\n";
    const auto result = run_main(body);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.return_value, cs.expected) << "cc=" << cs.cc;
  }
}

}  // namespace
}  // namespace ferrum
