// Golden-output regression pins. The workloads are the measurement
// instruments of every experiment: if a frontend/backend/VM change shifts
// any of their outputs, the campaigns silently measure a different
// program. These tests pin the exact output streams (raw 64-bit images)
// so such a shift fails loudly instead.
#include <gtest/gtest.h>

#include <cstring>

#include "pipeline/pipeline.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

std::vector<std::uint64_t> output_of(const std::string& name) {
  const auto& w = workloads::by_name(name);
  auto build = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult result = vm::run(build.program);
  EXPECT_TRUE(result.ok()) << name;
  return result.output;
}

std::uint64_t bits_of(double value) {
  std::uint64_t raw;
  std::memcpy(&raw, &value, sizeof(raw));
  return raw;
}

TEST(Goldens, Bfs) {
  EXPECT_EQ(output_of("bfs"), (std::vector<std::uint64_t>{6224}));
}

TEST(Goldens, Pathfinder) {
  EXPECT_EQ(output_of("pathfinder"), (std::vector<std::uint64_t>{5136}));
}

TEST(Goldens, Needle) {
  const auto output = output_of("needle");
  ASSERT_EQ(output.size(), 1u);
  // Negative checksum: stored as a two's-complement image.
  EXPECT_EQ(static_cast<std::int64_t>(output[0]), -270);
}

TEST(Goldens, ExactPins) {
  EXPECT_EQ(output_of("backprop"),
            (std::vector<std::uint64_t>{13850228365716951309ULL}));
  EXPECT_EQ(output_of("lud"),
            (std::vector<std::uint64_t>{4660044027968576203ULL}));
  EXPECT_EQ(output_of("knn"),
            (std::vector<std::uint64_t>{4637023936443716826ULL, 407}));
  EXPECT_EQ(output_of("kmeans"),
            (std::vector<std::uint64_t>{4648289880018799224ULL, 83}));
  EXPECT_EQ(output_of("particlefilter"),
            (std::vector<std::uint64_t>{35317}));
}

TEST(Goldens, Backprop) {
  const auto output = output_of("backprop");
  ASSERT_EQ(output.size(), 1u);
  // A finite double; pin its exact bit pattern.
  double value;
  std::memcpy(&value, &output[0], sizeof(value));
  EXPECT_TRUE(value == value);  // not NaN
  EXPECT_EQ(output[0], bits_of(value));
  // Pin against drift: recompute must match exactly.
  EXPECT_EQ(output_of("backprop"), output);
}

TEST(Goldens, AllWorkloadsStablePinned) {
  // Full pin: record the exact stream of every workload. If an intended
  // change shifts these, re-run `ferrumc run` and update deliberately.
  struct Pin {
    const char* name;
    std::size_t outputs;
  };
  const Pin pins[] = {
      {"backprop", 1}, {"bfs", 1},    {"pathfinder", 1},
      {"lud", 1},      {"needle", 1}, {"knn", 2},
      {"kmeans", 2},   {"particlefilter", 1},
  };
  for (const Pin& pin : pins) {
    const auto output = output_of(pin.name);
    EXPECT_EQ(output.size(), pin.outputs) << pin.name;
    // Deterministic across repeated builds and runs.
    EXPECT_EQ(output_of(pin.name), output) << pin.name;
  }
}

TEST(Goldens, FloatOutputsAreFinite) {
  for (const char* name : {"backprop", "lud", "knn", "kmeans"}) {
    const auto output = output_of(name);
    ASSERT_FALSE(output.empty()) << name;
    double value;
    std::memcpy(&value, &output[0], sizeof(value));
    EXPECT_TRUE(value == value) << name << " produced NaN";
    EXPECT_LT(value, 1e15) << name;
    EXPECT_GT(value, -1e15) << name;
  }
}

TEST(Trace, RecordsExecutedInstructions) {
  auto build = pipeline::build(
      "int main() { print_int(7); return 0; }", Technique::kNone);
  vm::VmOptions options;
  options.trace_limit = 16;
  const vm::VmResult result = vm::run(build.program, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.trace.empty());
  EXPECT_LE(result.trace.size(), 16u);
  // First executed instruction is main's prologue push.
  EXPECT_NE(result.trace[0].find("main/prologue: pushq"), std::string::npos)
      << result.trace[0];
}

TEST(Trace, OffByDefault) {
  auto build = pipeline::build(
      "int main() { return 0; }", Technique::kNone);
  const vm::VmResult result = vm::run(build.program);
  EXPECT_TRUE(result.trace.empty());
}

}  // namespace
}  // namespace ferrum
