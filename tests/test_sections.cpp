// Sectioned-campaign tests: the static decomposition (sections must
// partition every instruction, end exactly at sync points, and carry a
// dataflow interface consistent with liveness), the ferrum-section-v1
// key contract (pinned material bytes), the composition rule (composed
// counts must equal the monolithic audit's exactly, strided or not),
// scheduling invariance (jobs x batch byte-equal JSON), and the
// incremental mode end to end: editing one MiniC function re-campaigns
// only the sections whose code or dependency certificates changed,
// answers the rest warm with zero engine trials, and composes a result
// byte-identical to a from-scratch campaign.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "check/sections.h"
#include "fault/audit.h"
#include "fault/compose.h"
#include "masm/masm.h"
#include "masm/parser.h"
#include "pipeline/pipeline.h"
#include "service/cache.h"
#include "support/hash.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using check::sections::Boundary;
using check::sections::SectionMap;
using pipeline::Technique;

SectionMap sections_of_text(const char* text, masm::AsmProgram& program) {
  DiagEngine diags;
  program = masm::parse_program(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return check::sections::build_sections(program);
}

// ------------------------------------------------------ decomposition --

constexpr const char* kStraightLine =
    "main:\n"
    ".entry:\n"
    "\tmovq\t$7, %rax\n"
    "\taddq\t$3, %rax\n"
    "\tmovq\t%rax, %rdi\n"
    "\tcall\tprint_int\n"
    "\tmovq\t$0, %rax\n"
    "\tret\n";

TEST(Sections, CallAndRetEndSections) {
  masm::AsmProgram program;
  const SectionMap map = sections_of_text(kStraightLine, program);
  ASSERT_EQ(map.sections.size(), 2u);
  EXPECT_EQ(map.sections[0].first_inst, 0);
  EXPECT_EQ(map.sections[0].last_inst, 3);  // the call is its own last inst
  EXPECT_EQ(map.sections[0].boundary, Boundary::kCall);
  EXPECT_EQ(map.sections[1].first_inst, 4);
  EXPECT_EQ(map.sections[1].last_inst, 5);
  EXPECT_EQ(map.sections[1].boundary, Boundary::kRet);
}

TEST(Sections, EveryInstructionBelongsToExactlyOneSection) {
  for (const auto& workload : workloads::all()) {
    for (Technique technique : {Technique::kNone, Technique::kFerrum}) {
      const auto build = pipeline::build(workload.source, technique);
      const SectionMap map = check::sections::build_sections(build.program);
      for (std::size_t f = 0; f < build.program.functions.size(); ++f) {
        const masm::AsmFunction& fn = build.program.functions[f];
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
          int previous = -1;
          for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            const int id = map.section_of(static_cast<int>(f),
                                          static_cast<int>(b),
                                          static_cast<int>(i));
            ASSERT_GE(id, 0);
            ASSERT_LT(id, static_cast<int>(map.sections.size()));
            const check::sections::Section& section =
                map.sections[static_cast<std::size_t>(id)];
            // Membership is consistent with the section's span...
            EXPECT_EQ(section.function, static_cast<int>(f));
            EXPECT_EQ(section.block, static_cast<int>(b));
            EXPECT_GE(static_cast<int>(i), section.first_inst);
            EXPECT_LE(static_cast<int>(i), section.last_inst);
            // ...and sections tile the block in order without gaps.
            if (previous != id) {
              EXPECT_EQ(static_cast<int>(i), section.first_inst);
              if (previous >= 0) {
                EXPECT_EQ(map.sections[static_cast<std::size_t>(previous)]
                              .last_inst,
                          static_cast<int>(i) - 1);
              }
            }
            previous = id;
          }
        }
      }
    }
  }
}

TEST(Sections, SyncPointsOnlyEverEndSections) {
  for (const auto& workload : workloads::all()) {
    const auto build = pipeline::build(workload.source, Technique::kFerrum);
    const SectionMap map = check::sections::build_sections(build.program);
    for (const check::sections::Section& section : map.sections) {
      const masm::AsmFunction& fn =
          build.program.functions[static_cast<std::size_t>(section.function)];
      const auto& insts =
          fn.blocks[static_cast<std::size_t>(section.block)].insts;
      for (int i = section.first_inst; i <= section.last_inst; ++i) {
        const masm::AsmInst& inst = insts[static_cast<std::size_t>(i)];
        const bool is_sync =
            inst.op == masm::Op::kJcc || inst.op == masm::Op::kJmp ||
            inst.op == masm::Op::kCall || inst.op == masm::Op::kRet ||
            inst.op == masm::Op::kDetectTrap ||
            masm::effects_of(inst).writes_mem;
        if (i < section.last_inst) {
          EXPECT_FALSE(is_sync)
              << workload.name << ": interior sync point at " << fn.name
              << " block " << section.block << " inst " << i;
        } else if (section.boundary != Boundary::kBlockEnd) {
          EXPECT_TRUE(is_sync);
        }
      }
    }
  }
}

TEST(Sections, InterfaceLivenessIsConsistentAcrossTheBoundary) {
  masm::AsmProgram program;
  const SectionMap map = sections_of_text(kStraightLine, program);
  ASSERT_EQ(map.sections.size(), 2u);
  // %rdi carries the print_int argument into the call: live on the
  // interface into the first section's final stretch, and %rax is
  // rebuilt inside section 1, dead on entry to it.
  const masm::Liveness liveness(program.functions[0]);
  EXPECT_EQ(map.sections[0].interface.live_in, liveness.live_after(0, -1));
  EXPECT_EQ(map.sections[0].interface.live_out, liveness.live_after(0, 3));
  EXPECT_EQ(map.sections[1].interface.live_in, liveness.live_after(0, 3));
}

TEST(Sections, JsonIsDeterministic) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kFerrum);
  const SectionMap first = check::sections::build_sections(build.program);
  const SectionMap second = check::sections::build_sections(build.program);
  EXPECT_EQ(
      check::sections::to_json(first, build.program).dump(),
      check::sections::to_json(second, build.program).dump());
}

// ---------------------------------------------------- key contract --

TEST(SectionKey, PinnedGoldenMaterial) {
  fault::SectionKeyInfo info;
  info.mode = "audit";
  info.code_sha256 = "aa11";
  info.state_digest = "0123456789abcdef";
  info.dynamic_sites = 12;
  info.occurrences = 3;
  info.max_steps = 4096;
  info.probe_bits = {0, 17, 63};
  info.burst = 2;
  info.store_data = true;
  const std::string material = fault::section_key_material(info);
  EXPECT_EQ(material,
            "ferrum-section-v2\n"
            "mode=audit\n"
            "code_sha256=aa11\n"
            "state_digest=0123456789abcdef\n"
            "dynamic_sites=12\n"
            "occurrences=3\n"
            "max_steps=4096\n"
            "probe_bits=0,17,63\n"
            "trials=0\n"
            "seed=0\n"
            "burst=2\n"
            "store_data=1\n"
            "max_half_width=0\n");
  EXPECT_EQ(fault::section_key(info), sha256_hex(material));
}

TEST(SectionKey, EveryDeclaredInputMovesTheKey) {
  fault::SectionKeyInfo info;
  info.mode = "campaign";
  info.code_sha256 = "aa11";
  info.state_digest = "0123456789abcdef";
  info.dynamic_sites = 12;
  info.occurrences = 3;
  info.max_steps = 4096;
  info.trials = 64;
  info.seed = 7;
  const std::string base = fault::section_key(info);
  fault::SectionKeyInfo moved = info;
  moved.code_sha256 = "aa12";
  EXPECT_NE(fault::section_key(moved), base);
  moved = info;
  moved.state_digest = "0123456789abcdee";
  EXPECT_NE(fault::section_key(moved), base);
  moved = info;
  moved.trials = 65;
  EXPECT_NE(fault::section_key(moved), base);
  moved = info;
  moved.seed = 8;
  EXPECT_NE(fault::section_key(moved), base);
  moved = info;
  moved.max_steps = 8192;
  EXPECT_NE(fault::section_key(moved), base);
  moved = info;
  moved.max_half_width = 0.02;
  EXPECT_NE(fault::section_key(moved), base);
}

// ---------------------------------------------------- composition --

TEST(Compose, AuditAgreementIsExact) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kFerrum);
  const SectionMap map = check::sections::build_sections(build.program);

  fault::AuditOptions audit_options;
  audit_options.probe_bits = {17};
  const fault::AuditReport audit =
      fault::audit_program(build.program, audit_options);

  fault::ComposeOptions compose_options;
  compose_options.probe_bits = {17};
  const fault::ComposeReport composed =
      fault::compose_audit(build.program, map, compose_options);

  EXPECT_EQ(composed.sites, audit.sites);
  EXPECT_EQ(composed.injections, audit.injections);
  EXPECT_EQ(composed.detected, audit.detected);
  EXPECT_EQ(composed.benign, audit.benign);
  EXPECT_EQ(composed.crashed, audit.crashed);
  EXPECT_EQ(composed.sdc, audit.escapes.size());
  // The fold really decomposed the program (not one catch-all section).
  EXPECT_GT(composed.sections.size(), 1u);
}

TEST(Compose, StridedSweepsAgreeOnTheStridedFrame) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kHybrid);
  const SectionMap map = check::sections::build_sections(build.program);

  fault::AuditOptions audit_options;
  audit_options.probe_bits = {17};
  audit_options.site_stride = 7;
  const fault::AuditReport audit =
      fault::audit_program(build.program, audit_options);

  fault::ComposeOptions compose_options;
  compose_options.probe_bits = {17};
  compose_options.site_stride = 7;
  const fault::ComposeReport composed =
      fault::compose_audit(build.program, map, compose_options);

  EXPECT_EQ(composed.injections, audit.injections);
  EXPECT_EQ(composed.detected, audit.detected);
  EXPECT_EQ(composed.benign, audit.benign);
  EXPECT_EQ(composed.crashed, audit.crashed);
  EXPECT_EQ(composed.sdc, audit.escapes.size());
  // A seventh of the exhaustive frame, give or take the remainder.
  EXPECT_EQ(audit.injections, (audit.sites + 6) / 7);
}

TEST(Compose, StrideRejectsCachingAndPrunedAudit) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kNone);
  const SectionMap map = check::sections::build_sections(build.program);
  fault::ComposeOptions options;
  options.site_stride = 7;
  std::map<std::string, std::string> cache;
  options.lookup = [&cache](const std::string& key)
      -> std::optional<std::string> {
    const auto it = cache.find(key);
    if (it == cache.end()) return std::nullopt;
    return it->second;
  };
  options.store = [&cache](const std::string& key, const std::string& bytes) {
    cache[key] = bytes;
  };
  EXPECT_THROW(fault::compose_audit(build.program, map, options),
               std::invalid_argument);
}

TEST(Compose, SummariesAreSchedulingInvariant) {
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kFerrum);
  const SectionMap map = check::sections::build_sections(build.program);
  std::string reference;
  for (const int jobs : {1, 2, 8}) {
    for (const int batch : {1, 8}) {
      fault::ComposeOptions options;
      options.trials = 96;
      options.jobs = jobs;
      options.batch = batch;
      const fault::ComposeReport report =
          fault::compose_campaign(build.program, map, options);
      const std::string dump = telemetry::to_json(report).dump();
      if (reference.empty()) {
        reference = dump;
      } else {
        EXPECT_EQ(dump, reference)
            << "compose diverged at jobs=" << jobs << " batch=" << batch;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(Compose, AdaptiveStopsPerSectionDeterministically) {
  // The stop rule shrinks each section's budget independently, and every
  // stopped count is a pure function of the section key (which includes
  // max_half_width): jobs x batch must not move a single byte of the
  // composed JSON, and a warm pass over early-stopped summaries must
  // reproduce the composed result without re-running anything.
  const auto build =
      pipeline::build(workloads::by_name("bfs").source, Technique::kFerrum);
  const SectionMap map = check::sections::build_sections(build.program);
  service::ResultCache cache("");  // memory-only
  fault::ComposeOptions options;
  options.trials = 8192;
  options.max_half_width = 0.05;
  options.lookup = [&cache](const std::string& key) {
    return cache.lookup(key);
  };
  options.store = [&cache](const std::string& key, const std::string& bytes) {
    cache.store(key, bytes, /*replace=*/true);
  };
  const fault::ComposeReport first =
      fault::compose_campaign(build.program, map, options);
  ASSERT_TRUE(first.adaptive.enabled);
  EXPECT_TRUE(first.adaptive.stopped_early);
  EXPECT_LT(first.adaptive.executed_trials, first.adaptive.planned_trials);
  bool any_section_stopped = false;
  for (const fault::SectionSummary& summary : first.sections) {
    if (summary.trials == 0) continue;
    EXPECT_LE(summary.trials, summary.planned);
    if (summary.stopped_early) any_section_stopped = true;
  }
  EXPECT_TRUE(any_section_stopped);
  const std::string reference = telemetry::to_json(first).dump();

  for (const int jobs : {2, 8}) {
    for (const int batch : {1, 8}) {
      // A fresh memory-only cache per combination: cold execution, but
      // the same summary shape (the `key` field rides with caching).
      service::ResultCache fresh("");
      fault::ComposeOptions knobs;
      knobs.trials = options.trials;
      knobs.max_half_width = options.max_half_width;
      knobs.jobs = jobs;
      knobs.batch = batch;
      knobs.lookup = [&fresh](const std::string& key) {
        return fresh.lookup(key);
      };
      knobs.store = [&fresh](const std::string& key,
                             const std::string& bytes) {
        fresh.store(key, bytes, /*replace=*/true);
      };
      const fault::ComposeReport report =
          fault::compose_campaign(build.program, map, knobs);
      EXPECT_EQ(telemetry::to_json(report).dump(), reference)
          << "jobs=" << jobs << " batch=" << batch;
    }
  }

  // Warm: the early-stopped summaries answer from the cache (planned
  // matches, trials <= planned) and compose to the identical report.
  const fault::ComposeReport warm =
      fault::compose_campaign(build.program, map, options);
  EXPECT_EQ(warm.trials_executed, 0u);
  EXPECT_EQ(warm.cold_sections, 0u);
  EXPECT_EQ(telemetry::to_json(warm).dump(), reference);
}

// ---------------------------------------------------- incremental --

constexpr const char* kProgramV1 = R"(
  int f(int x) { int s = 0; for (int i = 0; i < x; i++) s += i * 3 + x; return s + x * 2; }
  int g(int x) { int t = 1; for (int i = 0; i < 10; i++) t = (t + x + i) % 97; return t; }
  int main() { int a = f(6); int b = g(a); print_int(a); print_int(b); return 0; }
)";

// The edit: a commutative swap inside f — semantically identical, but a
// different instruction stream, so every section of f re-keys while the
// machine states flowing into g and main's tail are unchanged.
constexpr const char* kProgramV2 = R"(
  int f(int x) { int s = 0; for (int i = 0; i < x; i++) s += x + i * 3; return s + x * 2; }
  int g(int x) { int t = 1; for (int i = 0; i < 10; i++) t = (t + x + i) % 97; return t; }
  int main() { int a = f(6); int b = g(a); print_int(a); print_int(b); return 0; }
)";

fault::ComposeReport run_incremental(const char* source,
                                     service::ResultCache& cache) {
  const auto build = pipeline::build(source, Technique::kFerrum);
  const SectionMap map = check::sections::build_sections(build.program);
  fault::ComposeOptions options;
  options.trials = 64;
  options.lookup = [&cache](const std::string& key) {
    return cache.lookup(key);
  };
  options.store = [&cache](const std::string& key, const std::string& bytes) {
    cache.store(key, bytes, /*replace=*/true);
  };
  return fault::compose_campaign(build.program, map, options);
}

TEST(Incremental, EditingOneFunctionRecampaignsOnlyItsSections) {
  const std::string dir_a = "tsec-cache-a-" + std::to_string(::getpid());
  const std::string dir_b = "tsec-cache-b-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  service::ResultCache cache_a(dir_a);
  service::ResultCache cache_b(dir_b);

  // Cold baseline of v1 into cache A.
  const fault::ComposeReport v1 = run_incremental(kProgramV1, cache_a);
  EXPECT_EQ(v1.warm_sections, 0u);
  EXPECT_GT(v1.trials_executed, 0u);

  // Edit f, recompose against the v1 cache: only f's sections (new code
  // hash) and the sections whose cached trials ran into f after their
  // fault (stale dependency certificate) may re-campaign.
  const fault::ComposeReport v2 = run_incremental(kProgramV2, cache_a);
  EXPECT_GT(v2.warm_sections, 0u);
  EXPECT_GT(v2.cold_sections, 0u);
  EXPECT_LT(v2.trials_executed, v1.trials_executed);

  const auto build = pipeline::build(kProgramV2, Technique::kFerrum);
  const SectionMap map = check::sections::build_sections(build.program);
  int g_index = -1;
  for (std::size_t f = 0; f < build.program.functions.size(); ++f) {
    if (build.program.functions[f].name == "g") g_index = static_cast<int>(f);
  }
  ASSERT_GE(g_index, 0);
  // g is unchanged and control never re-enters f once g runs, so every
  // campaigned section of g must answer warm with zero engine trials.
  std::size_t g_sections = 0;
  for (const fault::SectionSummary& summary : v2.sections) {
    if (summary.trials == 0) continue;
    const check::sections::Section& section =
        map.sections[static_cast<std::size_t>(summary.section)];
    if (section.function != g_index) continue;
    ++g_sections;
    EXPECT_TRUE(summary.cached) << "section " << summary.section;
    EXPECT_EQ(summary.trials_executed, 0u);
  }
  EXPECT_GT(g_sections, 0u);

  // The composed result must be byte-identical to a from-scratch
  // campaign of v2 into a fresh cache.
  const fault::ComposeReport scratch = run_incremental(kProgramV2, cache_b);
  EXPECT_EQ(telemetry::to_json(v2).dump(), telemetry::to_json(scratch).dump());

  // And a second pass over the now-updated cache is fully warm: the
  // stale-certificate entries were replaced, not wedged (the replace
  // contract on ResultCache::store).
  const fault::ComposeReport warm = run_incremental(kProgramV2, cache_a);
  EXPECT_EQ(warm.trials_executed, 0u);
  EXPECT_EQ(warm.cold_sections, 0u);
  EXPECT_EQ(telemetry::to_json(warm).dump(), telemetry::to_json(v2).dump());

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(Incremental, CacheValueSurvivesDiskRoundTrip) {
  const std::string dir = "tsec-cache-disk-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  {
    service::ResultCache cache(dir);
    const fault::ComposeReport cold = run_incremental(kProgramV1, cache);
    EXPECT_GT(cold.trials_executed, 0u);
  }
  // A fresh instance over the same directory (a restart) must answer
  // every section from the disk tier.
  service::ResultCache reopened(dir);
  const fault::ComposeReport warm = run_incremental(kProgramV1, reopened);
  EXPECT_EQ(warm.trials_executed, 0u);
  EXPECT_EQ(warm.cold_sections, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ferrum
