// Property-based testing: a seeded random MiniC program generator drives
// the whole stack. For every generated program we require:
//   1. the IR interpreter and the backend+VM agree (compiler correctness);
//   2. every protection technique preserves the output (transparency);
//   3. FERRUM exhaustive sampled-fault injection never yields an SDC
//      (the coverage invariant, probed on a subset of sites).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/campaign.h"
#include "ir/interp.h"
#include "pipeline/pipeline.h"
#include "support/rng.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using pipeline::Technique;

/// Generates small, always-terminating MiniC programs: straight-line
/// arithmetic over a pool of int/long/double variables, bounded loops,
/// conditionals, array traffic and helper calls.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream out;
    out << "int garr[8];\n";
    out << "double gfp[4] = {1.5, -2.25, 3.0, 0.5};\n";
    out << "int helper(int a, int b) { return a * 3 - b + (a ^ b); }\n";
    out << "double fhelper(double x) { return x * 0.5 + 1.25; }\n";
    out << "int main() {\n";
    // Variable pool.
    for (int i = 0; i < 4; ++i) {
      out << "  int i" << i << " = " << rng_.next_in_range(-20, 20) << ";\n";
    }
    for (int i = 0; i < 2; ++i) {
      out << "  long l" << i << " = " << rng_.next_in_range(-1000, 1000)
          << "L;\n";
    }
    for (int i = 0; i < 2; ++i) {
      out << "  double d" << i << " = "
          << rng_.next_in_range(-50, 50) << ".25;\n";
    }
    out << "  for (int k = 0; k < 8; k++) garr[k] = k * "
        << rng_.next_in_range(1, 9) << " - " << rng_.next_in_range(0, 5)
        << ";\n";
    const int statements = 4 + static_cast<int>(rng_.next_below(8));
    for (int i = 0; i < statements; ++i) emit_statement(out, 1);
    // Emit every variable so all dataflow is observable.
    for (int i = 0; i < 4; ++i) out << "  print_int(i" << i << ");\n";
    for (int i = 0; i < 2; ++i) out << "  print_int(l" << i << ");\n";
    for (int i = 0; i < 2; ++i) out << "  print_f64(d" << i << ");\n";
    out << "  print_int(garr[3]);\n";
    out << "  return 0;\n}\n";
    return out.str();
  }

 private:
  std::string int_var() {
    return "i" + std::to_string(rng_.next_below(4));
  }
  std::string long_var() {
    return "l" + std::to_string(rng_.next_below(2));
  }
  std::string dbl_var() {
    return "d" + std::to_string(rng_.next_below(2));
  }

  /// An int expression with no division (to avoid trapping programs).
  std::string int_expr(int depth) {
    switch (rng_.next_below(depth <= 0 ? 3 : 7)) {
      case 0: return std::to_string(rng_.next_in_range(-99, 99));
      case 1: return int_var();
      case 2: return "garr[" + std::to_string(rng_.next_below(8)) + "]";
      case 3:
        return "(" + int_expr(depth - 1) + " + " + int_expr(depth - 1) + ")";
      case 4:
        return "(" + int_expr(depth - 1) + " * " + int_expr(depth - 1) + ")";
      case 5:
        return "(" + int_expr(depth - 1) + " - " + int_expr(depth - 1) + ")";
      default:
        return "helper(" + int_expr(depth - 1) + ", " + int_expr(depth - 1) +
               ")";
    }
  }

  std::string dbl_expr(int depth) {
    switch (rng_.next_below(depth <= 0 ? 2 : 5)) {
      case 0: return std::to_string(rng_.next_in_range(-9, 9)) + ".5";
      case 1: return dbl_var();
      case 2:
        return "(" + dbl_expr(depth - 1) + " + " + dbl_expr(depth - 1) + ")";
      case 3:
        return "(" + dbl_expr(depth - 1) + " * 0.5)";
      default:
        return "fhelper(" + dbl_expr(depth - 1) + ")";
    }
  }

  std::string condition() {
    const char* op = nullptr;
    switch (rng_.next_below(4)) {
      case 0: op = " < "; break;
      case 1: op = " > "; break;
      case 2: op = " == "; break;
      default: op = " != "; break;
    }
    return int_expr(1) + op + int_expr(1);
  }

  void emit_statement(std::ostringstream& out, int depth) {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (rng_.next_below(depth >= 3 ? 4 : 6)) {
      case 0:
        out << pad << int_var() << " = " << int_expr(2) << ";\n";
        break;
      case 1:
        out << pad << int_var() << " += " << int_expr(1) << ";\n";
        break;
      case 2:
        out << pad << dbl_var() << " = " << dbl_expr(2) << ";\n";
        break;
      case 3:
        out << pad << "garr[" << rng_.next_below(8)
            << "] = " << int_expr(1) << ";\n";
        break;
      case 4: {
        out << pad << "if (" << condition() << ") {\n";
        emit_statement(out, depth + 1);
        out << pad << "} else {\n";
        emit_statement(out, depth + 1);
        out << pad << "}\n";
        break;
      }
      default: {
        // Bounded loop with a fresh induction variable.
        const std::string var = "t" + std::to_string(loop_counter_++);
        out << pad << "for (int " << var << " = 0; " << var << " < "
            << (2 + rng_.next_below(6)) << "; " << var << "++) {\n";
        emit_statement(out, depth + 1);
        out << pad << "}\n";
        break;
      }
    }
  }

  Rng rng_;
  int loop_counter_ = 0;
};

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, InterpreterMatchesVm) {
  ProgramGenerator generator(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::string source = generator.generate();
  auto build = pipeline::build(source, Technique::kNone);
  const ir::RunResult reference = ir::interpret(*build.module);
  ASSERT_TRUE(reference.ok()) << source;
  const vm::VmResult actual = vm::run(build.program);
  ASSERT_TRUE(actual.ok()) << source;
  EXPECT_EQ(actual.output, reference.output) << source;
}

TEST_P(PropertyTest, ProtectionsPreserveOutput) {
  ProgramGenerator generator(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::string source = generator.generate();
  auto baseline = pipeline::build(source, Technique::kNone);
  const vm::VmResult golden = vm::run(baseline.program);
  ASSERT_TRUE(golden.ok()) << source;
  for (Technique technique :
       {Technique::kIrEddi, Technique::kHybrid, Technique::kFerrum}) {
    auto build = pipeline::build(source, technique);
    const vm::VmResult result = vm::run(build.program);
    ASSERT_TRUE(result.ok())
        << pipeline::technique_name(technique) << "\n" << source;
    EXPECT_EQ(result.output, golden.output)
        << pipeline::technique_name(technique) << "\n" << source;
  }
}

TEST_P(PropertyTest, FerrumSampledFaultsNeverEscape) {
  ProgramGenerator generator(static_cast<std::uint64_t>(GetParam()) * 31337);
  const std::string source = generator.generate();
  auto build = pipeline::build(source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 60;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(fault::Outcome::kSdc), 0) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace ferrum
