#include <gtest/gtest.h>

#include "backend/backend.h"
#include "frontend/codegen.h"
#include "ir/interp.h"
#include "masm/masm.h"
#include "support/source_location.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

/// Differential harness: frontend -> interpreter vs backend -> VM must
/// agree on status and output.
void expect_equivalent(const std::string& source,
                       const backend::BackendOptions& options = {}) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  ASSERT_NE(module, nullptr) << diags.render();
  const ir::RunResult reference = ir::interpret(*module);
  ASSERT_TRUE(reference.ok())
      << "interpreter: " << ir::run_status_name(reference.status);
  const masm::AsmProgram program = backend::lower(*module, options);
  const vm::VmResult actual = vm::run(program);
  ASSERT_TRUE(actual.ok()) << "vm: " << vm::exit_status_name(actual.status)
                           << "\n" << masm::print(program);
  EXPECT_EQ(actual.output, reference.output) << masm::print(program);
  EXPECT_EQ(actual.return_value, reference.return_value);
}

std::string asm_of(const std::string& source) {
  DiagEngine diags;
  auto module = minic::compile(source, diags);
  EXPECT_NE(module, nullptr) << diags.render();
  return masm::print(backend::lower(*module));
}

TEST(Backend, IntegerKernels) {
  expect_equivalent(R"(
    int main() {
      print_int(1 + 2 * 3 - 4 / 2 + 10 % 3);
      print_int((5 << 3) >> 2);
      print_int(255 & 15);
      print_int(1 | 2 | 4);
      print_int(255 ^ 170);
      return 0;
    })");
}

TEST(Backend, NegativeDivision) {
  expect_equivalent(R"(
    int main() {
      print_int(-17 / 5);
      print_int(-17 % 5);
      print_int(17 / -5);
      print_int(17 % -5);
      return 0;
    })");
}

TEST(Backend, VariableShiftGoesThroughCl) {
  const std::string text = asm_of(R"(
    int main() {
      int n = 3;
      print_int(1 << n);
      print_int(-256 >> n);
      return 0;
    })");
  EXPECT_NE(text.find("%cl"), std::string::npos);
  expect_equivalent(R"(
    int main() {
      int n = 3;
      print_int(1 << n);
      print_int(-256 >> n);
      return 0;
    })");
}

TEST(Backend, FloatingKernels) {
  expect_equivalent(R"(
    int main() {
      double a = 1.25;
      double b = -0.5;
      print_f64(a + b);
      print_f64(a - b);
      print_f64(a * b);
      print_f64(a / b);
      print_f64(sqrt(a * a + b * b));
      print_int((int)(a * 100.0));
      print_f64((double)((int)a + 7));
      return 0;
    })");
}

TEST(Backend, FloatComparisons) {
  expect_equivalent(R"(
    int main() {
      double a = 1.5;
      double b = 2.5;
      if (a < b) print_int(1);
      if (a > b) print_int(2);
      if (a <= 1.5) print_int(3);
      if (b >= 2.5) print_int(4);
      if (a == 1.5) print_int(5);
      if (a != b) print_int(6);
      return 0;
    })");
}

TEST(Backend, GlobalArraysAndGep) {
  expect_equivalent(R"(
    int g[16];
    double d[4] = {1.0, 2.0, 3.0, 4.0};
    int main() {
      for (int i = 0; i < 16; i++) g[i] = i * i - 5;
      long s = 0L;
      for (int i = 0; i < 16; i++) s += g[i];
      print_int(s);
      double p = 1.0;
      for (int i = 0; i < 4; i++) p *= d[i];
      print_f64(p);
      return 0;
    })");
}

TEST(Backend, LocalArrays) {
  expect_equivalent(R"(
    int main() {
      int a[8];
      double b[4];
      for (int i = 0; i < 8; i++) a[i] = i * 3;
      for (int i = 0; i < 4; i++) b[i] = (double)a[i] / 2.0;
      print_int(a[7]);
      print_f64(b[3]);
      return 0;
    })");
}

TEST(Backend, CallsAndRecursion) {
  expect_equivalent(R"(
    int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
    long sum_to(long n) { if (n <= 0L) return 0L; return n + sum_to(n - 1L); }
    int main() {
      print_int(gcd(462, 1071));
      print_int(sum_to(100L));
      return 0;
    })");
}

TEST(Backend, MixedIntFpArguments) {
  expect_equivalent(R"(
    double mix(int a, double x, long b, double y, int c) {
      return (double)a + x * 2.0 + (double)b + y + (double)c;
    }
    int main() {
      print_f64(mix(1, 2.5, 3L, 4.25, 5));
      return 0;
    })");
}

TEST(Backend, SixIntegerArguments) {
  expect_equivalent(R"(
    int six(int a, int b, int c, int d, int e, int f) {
      return a + 10 * b + 100 * c + 1000 * d + 10000 * e + 100000 * f;
    }
    int main() { print_int(six(1, 2, 3, 4, 5, 6)); return 0; })");
}

TEST(Backend, PointerParameters) {
  expect_equivalent(R"(
    void scale(double* v, int n, double f) {
      for (int i = 0; i < n; i++) v[i] *= f;
    }
    double total(double* v, int n) {
      double s = 0.0;
      for (int i = 0; i < n; i++) s += v[i];
      return s;
    }
    double buf[6] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    int main() {
      scale(buf, 6, 0.5);
      print_f64(total(buf, 6));
      return 0;
    })");
}

TEST(Backend, CmpBranchFusionHappens) {
  const std::string text = asm_of(
      "int main() { int x = 1; if (x < 5) print_int(1); return 0; }");
  // Fused pattern: cmp immediately followed by jl (no setcc/test dance).
  EXPECT_NE(text.find("jl\t"), std::string::npos);
  EXPECT_EQ(text.find("setl"), std::string::npos) << text;
}

TEST(Backend, MaterialisedCompareUsesSetcc) {
  // `flag` forces the comparison result through a register (setcc); the
  // branch on the reloaded flag then re-materialises flags with a fused
  // `cmpl $0` — the paper's Fig 9 pattern.
  const std::string text = asm_of(R"(
    int main() {
      int x = 1;
      int flag = x < 5;   // forces setcc materialisation
      if (flag) print_int(1);
      return 0;
    })");
  EXPECT_NE(text.find("setl"), std::string::npos);
  EXPECT_NE(text.find("cmpl\t$0"), std::string::npos);
}

TEST(Backend, RegisterPressureSpills) {
  // A deep expression tree under a tiny register budget must spill and
  // still compute correctly.
  backend::BackendOptions options;
  options.max_scratch_gprs = 4;
  expect_equivalent(R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4;
      int e = 5; int f = 6; int g = 7; int h = 8;
      print_int((a + b) * (c + d) + (e + f) * (g + h) +
                (a + c) * (e + g) + (b + d) * (f + h));
      return 0;
    })", options);
}

TEST(Backend, SpillsAppearUnderPressure) {
  backend::BackendOptions tight;
  tight.max_scratch_gprs = 4;
  DiagEngine diags;
  auto module = minic::compile(R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4;
      int e = 5; int f = 6; int g = 7; int h = 8;
      print_int((a + b) * (c + d) + (e + f) * (g + h) +
                (a + c) * (e + g) + (b + d) * (f + h));
      return 0;
    })", diags);
  ASSERT_NE(module, nullptr);
  const auto wide_program = backend::lower(*module);
  const auto tight_program = backend::lower(*module, tight);
  EXPECT_GT(tight_program.inst_count(), wide_program.inst_count());
}

TEST(Backend, PrologueEpilogueShape) {
  const std::string text = asm_of("int main() { return 7; }");
  EXPECT_NE(text.find("pushq\t%rbp"), std::string::npos);
  EXPECT_NE(text.find("movq\t%rsp, %rbp"), std::string::npos);
  EXPECT_NE(text.find("popq\t%rbp"), std::string::npos);
  EXPECT_NE(text.find("\tret"), std::string::npos);
}

TEST(Backend, InstOriginTagging) {
  DiagEngine diags;
  auto module = minic::compile(
      "int main() { int x = 3; if (x < 5) print_int(1); return 0; }", diags);
  ASSERT_NE(module, nullptr);
  const auto program = backend::lower(*module);
  int from_ir = 0;
  int glue = 0;
  for (const auto& fn : program.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& inst : block.insts) {
        if (inst.origin == masm::InstOrigin::kFromIR) ++from_ir;
        if (inst.origin == masm::InstOrigin::kBackendGlue) ++glue;
      }
    }
  }
  EXPECT_GT(from_ir, 0);
  EXPECT_GT(glue, 0);  // prologue, frame sub, argument spills, ...
}

TEST(Backend, StressManyVariablesLoop) {
  expect_equivalent(R"(
    int main() {
      long acc = 0L;
      for (int i = 0; i < 50; i++) {
        int a = i * 3 + 1;
        int b = a * a % 97;
        int c = b - i;
        long d = (long)c * (long)a;
        acc += d % 1000L;
      }
      print_int(acc);
      return 0;
    })");
}

TEST(Backend, WhileWithComplexCondition) {
  expect_equivalent(R"(
    int main() {
      int i = 0;
      int s = 0;
      while (i < 20 && (s < 50 || i % 2 == 0)) {
        s += i;
        i++;
      }
      print_int(s);
      print_int(i);
      return 0;
    })");
}

}  // namespace
}  // namespace ferrum
