#include <gtest/gtest.h>

#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "pipeline/pipeline.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using fault::Outcome;
using pipeline::Technique;

constexpr const char* kSmallProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 12; i++) s += i * i;
    print_int(s);
    return 0;
  })";

TEST(Campaign, CountsSumToTrials) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 64;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.trials(), 64);
  EXPECT_GT(result.total_sites, 0u);
  EXPECT_GT(result.golden_steps, 0u);
}

TEST(Campaign, DeterministicForFixedSeed) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 777;
  const auto a = fault::run_campaign(build.program, options);
  const auto b = fault::run_campaign(build.program, options);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.sdc_breakdown, b.sdc_breakdown);
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions a_options;
  a_options.trials = 64;
  a_options.seed = 1;
  fault::CampaignOptions b_options = a_options;
  b_options.seed = 2;
  const auto a = fault::run_campaign(build.program, a_options);
  const auto b = fault::run_campaign(build.program, b_options);
  // Extremely unlikely to tie exactly on all four counters.
  EXPECT_NE(a.counts, b.counts);
}

TEST(Campaign, UnprotectedProgramShowsSdcs) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 200;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_GT(result.count(Outcome::kSdc), 0);
  EXPECT_EQ(result.count(Outcome::kDetected), 0);  // nothing to detect with
  EXPECT_GT(result.sdc_rate(), 0.0);
}

TEST(Campaign, FerrumDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
  EXPECT_GT(result.count(Outcome::kDetected), 0);
}

TEST(Campaign, HybridDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
}

TEST(Campaign, IrEddiLeavesResidualSdcs) {
  // The cross-layer gap (paper Sec IV-B1): IR-level protection misses
  // backend-introduced fault sites on at least one workload.
  int residual = 0;
  for (const char* name : {"bfs", "lud", "backprop"}) {
    const auto& w = workloads::by_name(name);
    auto build = pipeline::build(w.source, Technique::kIrEddi);
    fault::CampaignOptions options;
    options.trials = 250;
    residual += fault::run_campaign(build.program, options)
                    .count(Outcome::kSdc);
  }
  EXPECT_GT(residual, 0);
}

TEST(Campaign, SdcBreakdownIdentifiesOrigins) {
  const auto& w = workloads::by_name("lud");
  auto build = pipeline::build(w.source, Technique::kIrEddi);
  fault::CampaignOptions options;
  options.trials = 400;
  const auto result = fault::run_campaign(build.program, options);
  int breakdown_total = 0;
  for (const auto& [key, count] : result.sdc_breakdown) {
    EXPECT_NE(key.find('/'), std::string::npos) << key;
    breakdown_total += count;
  }
  EXPECT_EQ(breakdown_total, result.count(Outcome::kSdc));
}

void expect_identical(const fault::CampaignResult& a,
                      const fault::CampaignResult& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total_sites, b.total_sites);
  EXPECT_EQ(a.golden_steps, b.golden_steps);
  EXPECT_EQ(a.sdc_breakdown, b.sdc_breakdown);
  EXPECT_EQ(a.latency_sum, b.latency_sum);
  EXPECT_EQ(a.latency_max, b.latency_max);
  EXPECT_EQ(a.latency_samples, b.latency_samples);
}

TEST(Campaign, DeterministicAcrossJobCounts) {
  // The determinism guarantee: one seed, one sampled fault set, one
  // result — regardless of how many workers execute the trials.
  const auto& w = workloads::by_name("bfs");
  for (Technique technique : {Technique::kNone, Technique::kFerrum}) {
    auto build = pipeline::build(w.source, technique);
    fault::CampaignOptions options;
    options.trials = 120;
    options.seed = 0xdecaf;
    options.jobs = 1;
    const auto serial = fault::run_campaign(build.program, options);
    for (int jobs : {2, 8}) {
      options.jobs = jobs;
      const auto parallel = fault::run_campaign(build.program, options);
      expect_identical(serial, parallel);
    }
  }
}

TEST(Campaign, DeterministicAcrossJobCountsMultiFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 100;
  options.faults_per_run = 2;
  options.burst = 2;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    expect_identical(serial, fault::run_campaign(build.program, options));
  }
}

TEST(Campaign, JobsZeroSelectsHardwareConcurrencyAndStaysDeterministic) {
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 80;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  options.jobs = 0;  // hardware concurrency
  expect_identical(serial, fault::run_campaign(build.program, options));
}

TEST(Audit, DeterministicAcrossJobCounts) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::AuditOptions options;
  options.probe_bits = {0, 17, 63};
  options.jobs = 1;
  const auto serial = fault::audit_program(build.program, options);
  ASSERT_FALSE(serial.escapes.empty());  // unprotected: SDCs escape
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    const auto parallel = fault::audit_program(build.program, options);
    EXPECT_EQ(serial.sites, parallel.sites);
    EXPECT_EQ(serial.injections, parallel.injections);
    EXPECT_EQ(serial.detected, parallel.detected);
    EXPECT_EQ(serial.benign, parallel.benign);
    EXPECT_EQ(serial.crashed, parallel.crashed);
    // The escape list must come out in site order, byte-identical.
    ASSERT_EQ(serial.escapes.size(), parallel.escapes.size());
    for (std::size_t i = 0; i < serial.escapes.size(); ++i) {
      EXPECT_EQ(serial.escapes[i].site, parallel.escapes[i].site);
      EXPECT_EQ(serial.escapes[i].bit, parallel.escapes[i].bit);
      EXPECT_EQ(serial.escapes[i].kind, parallel.escapes[i].kind);
      EXPECT_EQ(serial.escapes[i].origin, parallel.escapes[i].origin);
      EXPECT_EQ(serial.escapes[i].function, parallel.escapes[i].function);
    }
  }
}

TEST(StepBudget, CampaignAndAuditShareOneHangBound) {
  // Regression: the campaign used golden*16 + 100'000 while the audit
  // used golden*16 + 10'000, so the same borderline livelock could be a
  // crash in one and a budget-exhaustion in the other.
  EXPECT_EQ(fault::faulty_step_budget(0), 100'000u);
  EXPECT_EQ(fault::faulty_step_budget(1000), 116'000u);
}

TEST(Campaign, MultiFaultLatencyAnchorsOnFirstInjection) {
  // VM-level contract behind the CampaignResult documentation: with
  // several faults per run, fault_step records the dynamically FIRST
  // injected fault no matter the order the specs were listed in.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_GT(golden.fi_sites, 60u);

  vm::VmOptions faulty;
  faulty.max_steps = fault::faulty_step_budget(golden.steps);
  vm::FaultSpec early;
  early.site = 5;
  early.bit = 3;
  vm::FaultSpec late;
  late.site = 60;
  late.bit = 3;

  const vm::VmResult only_early = vm::run(build.program, faulty, &early);
  ASSERT_TRUE(only_early.fault_injected);
  // Spec order reversed (late listed first) must not move the anchor.
  const vm::VmResult both =
      vm::run_multi(build.program, faulty, {late, early});
  ASSERT_TRUE(both.fault_injected);
  EXPECT_EQ(both.fault_step, only_early.fault_step);
}

TEST(Campaign, MultiFaultLatencyIsWellDefined) {
  // ablation_multibit's double-fault cell: latency statistics must stay
  // internally consistent when two faults land per run.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 200;
  options.faults_per_run = 2;
  const auto result = fault::run_campaign(build.program, options);
  ASSERT_GT(result.latency_samples, 0);
  EXPECT_LE(result.latency_samples, result.count(Outcome::kDetected));
  EXPECT_GE(result.mean_detection_latency(), 0.0);
  EXPECT_LE(result.mean_detection_latency(),
            static_cast<double>(result.latency_max));
  // Latency from the first injection can never exceed the step budget.
  EXPECT_LT(result.latency_max,
            fault::faulty_step_budget(result.golden_steps));
}

TEST(Campaign, GoldenFailureThrows) {
  // A program that traps cleanly cannot be a campaign target.
  auto build = pipeline::build(
      "int main() { int z = 0; print_int(1 / z); return 0; }",
      Technique::kNone);
  EXPECT_THROW(fault::run_campaign(build.program, {}), std::runtime_error);
}

TEST(Coverage, MetricMatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.0, 0.0), 1.0);  // nothing to cover
}

TEST(Outcomes, Names) {
  EXPECT_STREQ(fault::outcome_name(Outcome::kBenign), "benign");
  EXPECT_STREQ(fault::outcome_name(Outcome::kSdc), "sdc");
  EXPECT_STREQ(fault::outcome_name(Outcome::kDetected), "detected");
  EXPECT_STREQ(fault::outcome_name(Outcome::kCrash), "crash");
}

}  // namespace
}  // namespace ferrum
