#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "check/prune.h"
#include "fault/audit.h"
#include "fault/campaign.h"
#include "fault/step_budget.h"
#include "pipeline/pipeline.h"
#include "telemetry/export.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using fault::Outcome;
using pipeline::Technique;

constexpr const char* kSmallProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 12; i++) s += i * i;
    print_int(s);
    return 0;
  })";

TEST(Campaign, CountsSumToTrials) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 64;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.trials(), 64);
  EXPECT_GT(result.total_sites, 0u);
  EXPECT_GT(result.golden_steps, 0u);
}

TEST(Campaign, DeterministicForFixedSeed) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 777;
  const auto a = fault::run_campaign(build.program, options);
  const auto b = fault::run_campaign(build.program, options);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.sdc_breakdown, b.sdc_breakdown);
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions a_options;
  a_options.trials = 64;
  a_options.seed = 1;
  fault::CampaignOptions b_options = a_options;
  b_options.seed = 2;
  const auto a = fault::run_campaign(build.program, a_options);
  const auto b = fault::run_campaign(build.program, b_options);
  // Extremely unlikely to tie exactly on all four counters.
  EXPECT_NE(a.counts, b.counts);
}

TEST(Campaign, UnprotectedProgramShowsSdcs) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 200;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_GT(result.count(Outcome::kSdc), 0);
  EXPECT_EQ(result.count(Outcome::kDetected), 0);  // nothing to detect with
  EXPECT_GT(result.sdc_rate(), 0.0);
}

TEST(Campaign, FerrumDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
  EXPECT_GT(result.count(Outcome::kDetected), 0);
}

TEST(Campaign, HybridDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
}

TEST(Campaign, IrEddiLeavesResidualSdcs) {
  // The cross-layer gap (paper Sec IV-B1): IR-level protection misses
  // backend-introduced fault sites on at least one workload.
  int residual = 0;
  for (const char* name : {"bfs", "lud", "backprop"}) {
    const auto& w = workloads::by_name(name);
    auto build = pipeline::build(w.source, Technique::kIrEddi);
    fault::CampaignOptions options;
    options.trials = 250;
    residual += fault::run_campaign(build.program, options)
                    .count(Outcome::kSdc);
  }
  EXPECT_GT(residual, 0);
}

TEST(Campaign, SdcBreakdownIdentifiesOrigins) {
  const auto& w = workloads::by_name("lud");
  auto build = pipeline::build(w.source, Technique::kIrEddi);
  fault::CampaignOptions options;
  options.trials = 400;
  const auto result = fault::run_campaign(build.program, options);
  int breakdown_total = 0;
  for (const auto& [key, count] : result.sdc_breakdown) {
    EXPECT_NE(key.find('/'), std::string::npos) << key;
    breakdown_total += count;
  }
  EXPECT_EQ(breakdown_total, result.count(Outcome::kSdc));
}

void expect_identical(const fault::CampaignResult& a,
                      const fault::CampaignResult& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total_sites, b.total_sites);
  EXPECT_EQ(a.golden_steps, b.golden_steps);
  EXPECT_EQ(a.sdc_breakdown, b.sdc_breakdown);
  EXPECT_EQ(a.latency_sum, b.latency_sum);
  EXPECT_EQ(a.latency_max, b.latency_max);
  EXPECT_EQ(a.latency_samples, b.latency_samples);
}

TEST(Campaign, DeterministicAcrossJobCounts) {
  // The determinism guarantee: one seed, one sampled fault set, one
  // result — regardless of how many workers execute the trials.
  const auto& w = workloads::by_name("bfs");
  for (Technique technique : {Technique::kNone, Technique::kFerrum}) {
    auto build = pipeline::build(w.source, technique);
    fault::CampaignOptions options;
    options.trials = 120;
    options.seed = 0xdecaf;
    options.jobs = 1;
    const auto serial = fault::run_campaign(build.program, options);
    for (int jobs : {2, 8}) {
      options.jobs = jobs;
      const auto parallel = fault::run_campaign(build.program, options);
      expect_identical(serial, parallel);
    }
  }
}

TEST(Campaign, DeterministicAcrossJobCountsMultiFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 100;
  options.faults_per_run = 2;
  options.burst = 2;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    expect_identical(serial, fault::run_campaign(build.program, options));
  }
}

TEST(Campaign, JobsZeroSelectsHardwareConcurrencyAndStaysDeterministic) {
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 80;
  options.jobs = 1;
  const auto serial = fault::run_campaign(build.program, options);
  options.jobs = 0;  // hardware concurrency
  expect_identical(serial, fault::run_campaign(build.program, options));
}

TEST(Audit, DeterministicAcrossJobCounts) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::AuditOptions options;
  options.probe_bits = {0, 17, 63};
  options.jobs = 1;
  const auto serial = fault::audit_program(build.program, options);
  ASSERT_FALSE(serial.escapes.empty());  // unprotected: SDCs escape
  for (int jobs : {2, 8}) {
    options.jobs = jobs;
    const auto parallel = fault::audit_program(build.program, options);
    EXPECT_EQ(serial.sites, parallel.sites);
    EXPECT_EQ(serial.injections, parallel.injections);
    EXPECT_EQ(serial.detected, parallel.detected);
    EXPECT_EQ(serial.benign, parallel.benign);
    EXPECT_EQ(serial.crashed, parallel.crashed);
    // The escape list must come out in site order, byte-identical.
    ASSERT_EQ(serial.escapes.size(), parallel.escapes.size());
    for (std::size_t i = 0; i < serial.escapes.size(); ++i) {
      EXPECT_EQ(serial.escapes[i].site, parallel.escapes[i].site);
      EXPECT_EQ(serial.escapes[i].bit, parallel.escapes[i].bit);
      EXPECT_EQ(serial.escapes[i].kind, parallel.escapes[i].kind);
      EXPECT_EQ(serial.escapes[i].origin, parallel.escapes[i].origin);
      EXPECT_EQ(serial.escapes[i].function, parallel.escapes[i].function);
    }
  }
}

TEST(StepBudget, CampaignAndAuditShareOneHangBound) {
  // Regression: the campaign used golden*16 + 100'000 while the audit
  // used golden*16 + 10'000, so the same borderline livelock could be a
  // crash in one and a budget-exhaustion in the other.
  EXPECT_EQ(fault::faulty_step_budget(0), 100'000u);
  EXPECT_EQ(fault::faulty_step_budget(1000), 116'000u);
}

TEST(Campaign, MultiFaultLatencyAnchorsOnFirstInjection) {
  // VM-level contract behind the CampaignResult documentation: with
  // several faults per run, fault_step records the dynamically FIRST
  // injected fault no matter the order the specs were listed in.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  const vm::VmResult golden = vm::run(build.program);
  ASSERT_GT(golden.fi_sites, 60u);

  vm::VmOptions faulty;
  faulty.max_steps = fault::faulty_step_budget(golden.steps);
  vm::FaultSpec early;
  early.site = 5;
  early.bit = 3;
  vm::FaultSpec late;
  late.site = 60;
  late.bit = 3;

  const vm::VmResult only_early = vm::run(build.program, faulty, &early);
  ASSERT_TRUE(only_early.fault_injected);
  // Spec order reversed (late listed first) must not move the anchor.
  const vm::VmResult both =
      vm::run_multi(build.program, faulty, {late, early});
  ASSERT_TRUE(both.fault_injected);
  EXPECT_EQ(both.fault_step, only_early.fault_step);
}

TEST(Campaign, MultiFaultLatencyIsWellDefined) {
  // ablation_multibit's double-fault cell: latency statistics must stay
  // internally consistent when two faults land per run.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 200;
  options.faults_per_run = 2;
  const auto result = fault::run_campaign(build.program, options);
  ASSERT_GT(result.latency_samples, 0);
  EXPECT_LE(result.latency_samples, result.count(Outcome::kDetected));
  EXPECT_GE(result.mean_detection_latency(), 0.0);
  EXPECT_LE(result.mean_detection_latency(),
            static_cast<double>(result.latency_max));
  // Latency from the first injection can never exceed the step budget.
  EXPECT_LT(result.latency_max,
            fault::faulty_step_budget(result.golden_steps));
}

TEST(Campaign, GoldenFailureThrows) {
  // A program that traps cleanly cannot be a campaign target.
  auto build = pipeline::build(
      "int main() { int z = 0; print_int(1 / z); return 0; }",
      Technique::kNone);
  EXPECT_THROW(fault::run_campaign(build.program, {}), std::runtime_error);
}

TEST(Coverage, MetricMatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.0, 0.0), 1.0);  // nothing to cover
}

TEST(Outcomes, Names) {
  EXPECT_STREQ(fault::outcome_name(Outcome::kBenign), "benign");
  EXPECT_STREQ(fault::outcome_name(Outcome::kSdc), "sdc");
  EXPECT_STREQ(fault::outcome_name(Outcome::kDetected), "detected");
  EXPECT_STREQ(fault::outcome_name(Outcome::kCrash), "crash");
}

// ---------------------------------------------------- adaptive stop --

TEST(Adaptive, BoundaryLadderDoublesFromMinTrials) {
  const fault::StopRule rule{0.05};
  EXPECT_EQ(fault::stop_boundaries(1000, rule),
            (std::vector<int>{64, 128, 256, 512, 1000}));
  // The planned budget is always the final boundary, even when the
  // ladder lands on it exactly.
  EXPECT_EQ(fault::stop_boundaries(256, rule),
            (std::vector<int>{64, 128, 256}));
  // Budgets at or below min_trials evaluate once, at the full budget.
  EXPECT_EQ(fault::stop_boundaries(64, rule), (std::vector<int>{64}));
  EXPECT_EQ(fault::stop_boundaries(10, rule), (std::vector<int>{10}));
  EXPECT_TRUE(fault::stop_boundaries(0, rule).empty());
}

TEST(Adaptive, WilsonHalfWidthShrinksWithSampleSize) {
  EXPECT_DOUBLE_EQ(fault::wilson_half_width(0, 0), 0.5);  // vacuous [0,1]
  const double at_64 = fault::wilson_half_width(32, 64);
  const double at_1024 = fault::wilson_half_width(512, 1024);
  EXPECT_GT(at_64, at_1024);
  EXPECT_GT(at_1024, 0.0);
  // Extreme rates are the narrowest — the stop rule keys on the WIDEST
  // of the four outcome rates, which is what max_outcome_half_width
  // returns.
  EXPECT_LT(fault::wilson_half_width(0, 64), at_64);
  const std::array<int, 4> counts{16, 16, 16, 16};
  EXPECT_DOUBLE_EQ(fault::max_outcome_half_width(counts, 64),
                   fault::wilson_half_width(16, 64));
}

TEST(Adaptive, StopsEarlyOnACanonicalPrefix) {
  // The load-bearing property: the adaptive result is EXACTLY the
  // full-budget campaign truncated to its first `executed` canonical
  // trials — asserted by re-running with trials=executed and no stop
  // rule and requiring byte-identical deterministic JSON.
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 4096;
  options.max_half_width = 0.05;
  const auto adaptive = fault::run_campaign(build.program, options);
  ASSERT_TRUE(adaptive.adaptive.enabled);
  ASSERT_TRUE(adaptive.adaptive.stopped_early);
  ASSERT_LT(adaptive.adaptive.executed_trials, 4096);
  EXPECT_EQ(adaptive.trials(), adaptive.adaptive.executed_trials);
  EXPECT_GE(adaptive.adaptive.reduction(), 2.0);
  // Every half-width at the stop boundary is pinned under the target.
  for (const double half_width : adaptive.adaptive.half_widths) {
    EXPECT_LE(half_width, 0.05);
  }

  fault::CampaignOptions prefix_options;
  prefix_options.trials = adaptive.adaptive.executed_trials;
  const auto prefix = fault::run_campaign(build.program, prefix_options);
  EXPECT_EQ(adaptive.counts, prefix.counts);
  EXPECT_EQ(adaptive.sdc_breakdown, prefix.sdc_breakdown);
  EXPECT_EQ(adaptive.latency_sum, prefix.latency_sum);
}

TEST(Adaptive, StoppedCountIsEngineKnobInvariant) {
  // The ISSUE's determinism clause: the stopped trial count and the full
  // deterministic JSON agree across jobs x batch x dispatch.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  std::string reference;
  int reference_executed = -1;
  for (const int jobs : {1, 2, 8}) {
    for (const int batch : {1, 8}) {
      for (const vm::DispatchMode dispatch :
           {vm::DispatchMode::kSwitch, vm::DispatchMode::kAuto}) {
        fault::CampaignOptions options;
        options.trials = 2048;
        options.max_half_width = 0.04;
        options.jobs = jobs;
        options.batch = batch;
        options.vm.dispatch = dispatch;
        const auto result = fault::run_campaign(build.program, options);
        const std::string dump = telemetry::to_json(result).dump();
        if (reference.empty()) {
          reference = dump;
          reference_executed = result.adaptive.executed_trials;
        } else {
          EXPECT_EQ(result.adaptive.executed_trials, reference_executed)
              << "stopped count moved at jobs=" << jobs
              << " batch=" << batch;
          EXPECT_EQ(dump, reference)
              << "adaptive JSON diverged at jobs=" << jobs
              << " batch=" << batch;
        }
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(Adaptive, DisabledTargetRunsTheFullBudget) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 128;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_FALSE(result.adaptive.enabled);
  EXPECT_EQ(result.trials(), 128);
}

TEST(Adaptive, WideTargetNeverStopsBeforeTheBudget) {
  // A target no campaign can reach (tighter than 1/sqrt(planned) allows)
  // must degrade to the full budget with stopped_early = false.
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 128;
  options.max_half_width = 0.001;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_TRUE(result.adaptive.enabled);
  EXPECT_FALSE(result.adaptive.stopped_early);
  EXPECT_EQ(result.adaptive.executed_trials, 128);
  EXPECT_EQ(result.trials(), 128);
}

TEST(Adaptive, PruneModeRejectsTheStopRule) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  // The rejection fires before the plan is consulted, so an empty report
  // exercises it without linking the prune analysis into this binary.
  check::prune::PruneReport prune_report;
  fault::CampaignOptions options;
  options.trials = 64;
  options.max_half_width = 0.05;
  options.prune = &prune_report;
  EXPECT_THROW(fault::run_campaign(build.program, options),
               std::invalid_argument);
}

// ---------------------------------------------------- prepared state --

TEST(Prepared, SharedStateIsResultInvariant) {
  // PreparedCampaign is the service's cross-cell engine-state reuse: a
  // campaign run against a pre-built predecode/golden/checkpoint set
  // must be byte-identical to one that builds its own.
  const auto& w = workloads::by_name("bfs");
  auto build = pipeline::build(w.source, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 96;
  const auto owned = fault::run_campaign(build.program, options);

  const fault::PreparedCampaign prepared(build.program, options.vm,
                                         /*ckpt_stride=*/64);
  options.prepared = &prepared;
  const auto shared = fault::run_campaign(build.program, options);
  EXPECT_EQ(telemetry::to_json(owned).dump(),
            telemetry::to_json(shared).dump());

  // Different seeds/trials against ONE prepared state (the service's
  // N-cells-one-program pattern) still match their owned-state twins.
  for (const std::uint64_t seed : {1u, 2u}) {
    fault::CampaignOptions cell;
    cell.trials = 64;
    cell.seed = seed;
    const auto cold = fault::run_campaign(build.program, cell);
    cell.prepared = &prepared;
    const auto warm = fault::run_campaign(build.program, cell);
    EXPECT_EQ(telemetry::to_json(cold).dump(),
              telemetry::to_json(warm).dump());
  }
}

TEST(Prepared, StoreDataMismatchThrows) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  vm::VmOptions vm;
  vm.fault_store_data = false;
  const fault::PreparedCampaign prepared(build.program, vm, 64);
  fault::CampaignOptions options;
  options.trials = 16;
  options.vm.fault_store_data = true;  // disagrees: different site space
  options.prepared = &prepared;
  EXPECT_THROW(fault::run_campaign(build.program, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ferrum
