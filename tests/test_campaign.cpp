#include <gtest/gtest.h>

#include "fault/campaign.h"
#include "pipeline/pipeline.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using fault::Outcome;
using pipeline::Technique;

constexpr const char* kSmallProgram = R"(
  int main() {
    int s = 0;
    for (int i = 0; i < 12; i++) s += i * i;
    print_int(s);
    return 0;
  })";

TEST(Campaign, CountsSumToTrials) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 64;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.trials(), 64);
  EXPECT_GT(result.total_sites, 0u);
  EXPECT_GT(result.golden_steps, 0u);
}

TEST(Campaign, DeterministicForFixedSeed) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 48;
  options.seed = 777;
  const auto a = fault::run_campaign(build.program, options);
  const auto b = fault::run_campaign(build.program, options);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.sdc_breakdown, b.sdc_breakdown);
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions a_options;
  a_options.trials = 64;
  a_options.seed = 1;
  fault::CampaignOptions b_options = a_options;
  b_options.seed = 2;
  const auto a = fault::run_campaign(build.program, a_options);
  const auto b = fault::run_campaign(build.program, b_options);
  // Extremely unlikely to tie exactly on all four counters.
  EXPECT_NE(a.counts, b.counts);
}

TEST(Campaign, UnprotectedProgramShowsSdcs) {
  auto build = pipeline::build(kSmallProgram, Technique::kNone);
  fault::CampaignOptions options;
  options.trials = 200;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_GT(result.count(Outcome::kSdc), 0);
  EXPECT_EQ(result.count(Outcome::kDetected), 0);  // nothing to detect with
  EXPECT_GT(result.sdc_rate(), 0.0);
}

TEST(Campaign, FerrumDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kFerrum);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
  EXPECT_GT(result.count(Outcome::kDetected), 0);
}

TEST(Campaign, HybridDetectsEverySampledFault) {
  auto build = pipeline::build(kSmallProgram, Technique::kHybrid);
  fault::CampaignOptions options;
  options.trials = 300;
  const auto result = fault::run_campaign(build.program, options);
  EXPECT_EQ(result.count(Outcome::kSdc), 0);
}

TEST(Campaign, IrEddiLeavesResidualSdcs) {
  // The cross-layer gap (paper Sec IV-B1): IR-level protection misses
  // backend-introduced fault sites on at least one workload.
  int residual = 0;
  for (const char* name : {"bfs", "lud", "backprop"}) {
    const auto& w = workloads::by_name(name);
    auto build = pipeline::build(w.source, Technique::kIrEddi);
    fault::CampaignOptions options;
    options.trials = 250;
    residual += fault::run_campaign(build.program, options)
                    .count(Outcome::kSdc);
  }
  EXPECT_GT(residual, 0);
}

TEST(Campaign, SdcBreakdownIdentifiesOrigins) {
  const auto& w = workloads::by_name("lud");
  auto build = pipeline::build(w.source, Technique::kIrEddi);
  fault::CampaignOptions options;
  options.trials = 400;
  const auto result = fault::run_campaign(build.program, options);
  int breakdown_total = 0;
  for (const auto& [key, count] : result.sdc_breakdown) {
    EXPECT_NE(key.find('/'), std::string::npos) << key;
    breakdown_total += count;
  }
  EXPECT_EQ(breakdown_total, result.count(Outcome::kSdc));
}

TEST(Campaign, GoldenFailureThrows) {
  // A program that traps cleanly cannot be a campaign target.
  auto build = pipeline::build(
      "int main() { int z = 0; print_int(1 / z); return 0; }",
      Technique::kNone);
  EXPECT_THROW(fault::run_campaign(build.program, {}), std::runtime_error);
}

TEST(Coverage, MetricMatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fault::sdc_coverage(0.0, 0.0), 1.0);  // nothing to cover
}

TEST(Outcomes, Names) {
  EXPECT_STREQ(fault::outcome_name(Outcome::kBenign), "benign");
  EXPECT_STREQ(fault::outcome_name(Outcome::kSdc), "sdc");
  EXPECT_STREQ(fault::outcome_name(Outcome::kDetected), "detected");
  EXPECT_STREQ(fault::outcome_name(Outcome::kCrash), "crash");
}

}  // namespace
}  // namespace ferrum
