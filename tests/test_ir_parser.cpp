#include <gtest/gtest.h>

#include "eddi/ir_eddi.h"
#include "frontend/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/source_location.h"
#include "workloads/workloads.h"

namespace ferrum::ir {
namespace {

std::unique_ptr<Module> parse_ok(const std::string& text) {
  DiagEngine diags;
  auto module = parse_module(text, diags);
  EXPECT_NE(module, nullptr) << diags.render();
  return module;
}

TEST(IrParser, MinimalFunction) {
  auto module = parse_ok(
      "define i32 @main() {\n"
      "entry:\n"
      "  ret i32 42\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  EXPECT_TRUE(verify(*module).empty()) << verify_to_string(*module);
  auto result = interpret(*module);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 42);
}

TEST(IrParser, ArithmeticAndMemory) {
  auto module = parse_ok(
      "define i64 @main() {\n"
      "entry:\n"
      "  %0 = alloca i64\n"
      "  store i64 40, %0\n"
      "  %1 = load i64, %0\n"
      "  %2 = add i64 %1, 2\n"
      "  ret i64 %2\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  auto result = interpret(*module);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.return_value, 42);
}

TEST(IrParser, ControlFlowForwardReferences) {
  auto module = parse_ok(
      "define i32 @main() {\n"
      "entry:\n"
      "  %0 = icmp lt i32 3, 5\n"
      "  condbr i1 %0, label %yes, label %no\n"
      "yes:\n"
      "  ret i32 1\n"
      "no:\n"
      "  ret i32 0\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  auto result = interpret(*module);
  EXPECT_EQ(result.return_value, 1);
  // Block order follows the text, not reference order.
  const Function* main_fn = module->find_function("main");
  EXPECT_EQ(main_fn->blocks()[0]->name(), "entry");
  EXPECT_EQ(main_fn->blocks()[1]->name(), "yes");
  EXPECT_EQ(main_fn->blocks()[2]->name(), "no");
}

TEST(IrParser, GlobalsWithInitialisers) {
  auto module = parse_ok(
      "@t = global i32 x 3 init [7, 8, 9]\n"
      "\n"
      "define i32 @main() {\n"
      "entry:\n"
      "  %0 = gep i32* @t, 2\n"
      "  %1 = load i32, %0\n"
      "  ret i32 %1\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  auto result = interpret(*module);
  EXPECT_EQ(result.return_value, 9);
}

TEST(IrParser, CallsAndDeclarations) {
  auto module = parse_ok(
      "declare void @print_int(i64)\n"
      "define i64 @double_it(i64 %x) {\n"
      "entry:\n"
      "  %0 = add i64 %x, %x\n"
      "  ret i64 %0\n"
      "}\n"
      "define i32 @main() {\n"
      "entry:\n"
      "  %0 = call i64 @double_it(i64 21)\n"
      "  call void @print_int(i64 %0)\n"
      "  ret i32 0\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  auto result = interpret(*module);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(result.output[0]), 42);
}

TEST(IrParser, FloatsAndCasts) {
  auto module = parse_ok(
      "define i32 @main() {\n"
      "entry:\n"
      "  %0 = fadd f64 1.5, 2.5\n"
      "  %1 = fptosi f64 %0 to i32\n"
      "  %2 = sext i32 %1 to i64\n"
      "  %3 = trunc i64 %2 to i32\n"
      "  ret i32 %3\n"
      "}\n");
  ASSERT_NE(module, nullptr);
  auto result = interpret(*module);
  EXPECT_EQ(result.return_value, 4);
}

TEST(IrParser, ErrorsAreReported) {
  DiagEngine diags;
  EXPECT_EQ(parse_module("define i32 @f() {\nentry:\n  bogus i32 1\n}\n",
                         diags),
            nullptr);
  EXPECT_TRUE(diags.has_errors());

  DiagEngine diags2;
  EXPECT_EQ(parse_module("define i32 @f() {\nentry:\n  ret i32 %nope\n}\n",
                         diags2),
            nullptr);
  EXPECT_TRUE(diags2.has_errors());
}

/// Round trip: frontend -> print -> parse -> print must be a fixpoint,
/// and the reparsed module must compute the same outputs.
void expect_round_trip(const std::string& minic_source) {
  DiagEngine diags;
  auto module = minic::compile(minic_source, diags);
  ASSERT_NE(module, nullptr) << diags.render();
  const std::string first = print(*module);
  DiagEngine diags2;
  auto reparsed = parse_module(first, diags2);
  ASSERT_NE(reparsed, nullptr) << diags2.render() << "\n" << first;
  EXPECT_EQ(print(*reparsed), first);
  EXPECT_TRUE(verify(*reparsed).empty()) << verify_to_string(*reparsed);
  const auto a = interpret(*module);
  const auto b = interpret(*reparsed);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.output, b.output);
}

TEST(IrParserRoundTrip, SimplePrograms) {
  expect_round_trip("int main() { print_int(1 + 2 * 3); return 0; }");
  expect_round_trip(R"(
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { print_int(fib(10)); return 0; })");
  expect_round_trip(R"(
    double g[3] = {1.5, 2.5, 3.5};
    int main() {
      double s = 0.0;
      for (int i = 0; i < 3; i++) s += g[i];
      print_f64(sqrt(s));
      return 0;
    })");
}

class WorkloadRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadRoundTrip, PrintParsePrintIsFixpoint) {
  const auto& w =
      workloads::all()[static_cast<std::size_t>(GetParam())];
  expect_round_trip(w.source);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRoundTrip,
                         ::testing::Range(0, 8));

TEST(IrParserRoundTrip, ProtectedModules) {
  // EDDI-transformed IR (split blocks, cross-block uses) must round-trip
  // too — it exercises the forward-reference machinery hardest.
  DiagEngine diags;
  auto module = minic::compile(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 6; i++) s += i * i;
      print_int(s);
      return 0;
    })", diags);
  ASSERT_NE(module, nullptr);
  eddi::apply_ir_eddi(*module, eddi::IrEddiMode::kClassic);
  const std::string first = print(*module);
  DiagEngine diags2;
  auto reparsed = parse_module(first, diags2);
  ASSERT_NE(reparsed, nullptr) << diags2.render() << "\n" << first;
  EXPECT_EQ(print(*reparsed), first);
  const auto a = interpret(*module);
  const auto b = interpret(*reparsed);
  EXPECT_EQ(a.output, b.output);
}

}  // namespace
}  // namespace ferrum::ir
