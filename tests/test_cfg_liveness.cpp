#include <gtest/gtest.h>

#include "masm/cfg.h"
#include "masm/parser.h"
#include "support/source_location.h"

namespace ferrum::masm {
namespace {

AsmProgram parse_ok(const char* text) {
  DiagEngine diags;
  AsmProgram program = parse_program(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return program;
}

TEST(Cfg, LinearFallthrough) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n\tmovq\t$1, %rax\n"
      ".b:\n\tmovq\t$2, %rcx\n"
      ".c:\n\tret\n");
  Cfg cfg = build_cfg(program.functions[0]);
  ASSERT_EQ(cfg.successors.size(), 3u);
  EXPECT_EQ(cfg.successors[0], std::vector<int>{1});
  EXPECT_EQ(cfg.successors[1], std::vector<int>{2});
  EXPECT_TRUE(cfg.successors[2].empty());
  EXPECT_EQ(cfg.predecessors[2], std::vector<int>{1});
}

TEST(Cfg, JccPlusJmpCluster) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tcmpq\t$0, %rax\n"
      "\tje\t.c\n"
      "\tjmp\t.b\n"
      ".b:\n\tret\n"
      ".c:\n\tret\n");
  Cfg cfg = build_cfg(program.functions[0]);
  // Block a: both the jmp target and the jcc target, no fallthrough.
  ASSERT_EQ(cfg.successors[0].size(), 2u);
  EXPECT_EQ(cfg.successors[0][0], 1);  // jmp .b (scanned from the end)
  EXPECT_EQ(cfg.successors[0][1], 2);  // je .c
}

TEST(Cfg, JccWithFallthrough) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tcmpq\t$0, %rax\n"
      "\tje\t.c\n"
      ".b:\n\tret\n"
      ".c:\n\tret\n");
  Cfg cfg = build_cfg(program.functions[0]);
  ASSERT_EQ(cfg.successors[0].size(), 2u);
  // jcc target + fallthrough to the next block.
  EXPECT_EQ(cfg.successors[0][0], 2);
  EXPECT_EQ(cfg.successors[0][1], 1);
}

TEST(Liveness, ValueConsumedInNextBlock) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tmovq\t$7, %rcx\n"
      "\tjmp\t.b\n"
      ".b:\n"
      "\tmovq\t%rcx, %rax\n"
      "\tret\n");
  Liveness liveness(program.functions[0]);
  EXPECT_TRUE(has_gpr(liveness.live_out(0), Gpr::kRcx));
  EXPECT_TRUE(has_gpr(liveness.live_in(1), Gpr::kRcx));
  // After the use, rcx is dead.
  EXPECT_FALSE(has_gpr(liveness.live_after(1, 0), Gpr::kRcx));
}

TEST(Liveness, OverwrittenValueIsDeadBefore) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tmovq\t$1, %rcx\n"
      "\tmovq\t$2, %rcx\n"
      "\tmovq\t%rcx, %rax\n"
      "\tret\n");
  Liveness liveness(program.functions[0]);
  // rcx is not live into the block: the first write is dead.
  EXPECT_FALSE(has_gpr(liveness.live_in(0), Gpr::kRcx));
  // It is live right after the second write.
  EXPECT_TRUE(has_gpr(liveness.live_after(0, 1), Gpr::kRcx));
}

TEST(Liveness, FlagsLiveBetweenCmpAndJcc) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tcmpq\t$0, %rax\n"
      "\tje\t.b\n"
      ".b:\n\tret\n");
  Liveness liveness(program.functions[0]);
  EXPECT_TRUE(has_flags(liveness.live_after(0, 0)));
  EXPECT_FALSE(has_flags(liveness.live_after(0, 1)));
}

TEST(Liveness, LoopCarriedRegisterStaysLive) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".head:\n"
      "\taddq\t$1, %rbx\n"
      "\tcmpq\t$10, %rbx\n"
      "\tjl\t.head\n"
      "\tjmp\t.done\n"
      ".done:\n"
      "\tmovq\t%rbx, %rax\n"
      "\tret\n");
  Liveness liveness(program.functions[0]);
  EXPECT_TRUE(has_gpr(liveness.live_in(0), Gpr::kRbx));
  EXPECT_TRUE(has_gpr(liveness.live_out(0), Gpr::kRbx));
}

TEST(Liveness, ByteWriteKeepsRegisterAlive) {
  // setcc writes only 8 bits, so the old upper bits still matter: the
  // register must count as read+written (merge semantics).
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tcmpq\t$0, %rax\n"
      "\tsete\t%r11b\n"
      "\tmovq\t%r11, %rax\n"
      "\tret\n");
  Liveness liveness(program.functions[0]);
  EXPECT_TRUE(has_gpr(liveness.live_in(0), Gpr::kR11));
}

TEST(Liveness, RetKeepsCalleeSavedLive) {
  AsmProgram program = parse_ok("f:\n.a:\n\tret\n");
  Liveness liveness(program.functions[0]);
  EXPECT_TRUE(has_gpr(liveness.live_in(0), Gpr::kRbx));
  EXPECT_TRUE(has_gpr(liveness.live_in(0), Gpr::kR12));
  EXPECT_TRUE(has_gpr(liveness.live_in(0), Gpr::kRax));
  EXPECT_FALSE(has_gpr(liveness.live_in(0), Gpr::kR10));
}

TEST(UsedRegisters, ScanIsComplete) {
  AsmProgram program = parse_ok(
      "f:\n"
      ".a:\n"
      "\tmovq\t%rdi, %rax\n"
      "\tmovq\t%rax, %xmm3\n"
      "\tcmpq\t$1, %rax\n"
      "\tret\n");
  const LiveSet used = used_registers(program.functions[0]);
  EXPECT_TRUE(has_gpr(used, Gpr::kRdi));
  EXPECT_TRUE(has_gpr(used, Gpr::kRax));
  EXPECT_TRUE(has_xmm(used, 3));
  EXPECT_TRUE(has_flags(used));
  EXPECT_FALSE(has_gpr(used, Gpr::kR10));
  EXPECT_FALSE(has_xmm(used, 7));
}

// The UseDef masks of the protection pseudo-ops are contract: the spare
// register scan, the requisition machinery and ferrum-check all consume
// them (see the table in cfg.h). Each test pins one non-obvious case.

AsmInst parse_inst(const char* body) {
  AsmProgram program =
      parse_ok(("f:\n.a:\n\t" + std::string(body) + "\n\tret\n").c_str());
  return program.functions[0].blocks[0].insts[0];
}

TEST(UseDef, VptestReadsBothOperandsDefinesOnlyFlags) {
  const UseDef ud = use_def_of(parse_inst("vptest\t%ymm14, %ymm13"));
  EXPECT_TRUE(has_xmm(ud.use, 14));
  EXPECT_TRUE(has_xmm(ud.use, 13));
  EXPECT_EQ(ud.def, kFlagsBit);
}

TEST(UseDef, PinsrqIsReadModifyWrite) {
  const UseDef ud = use_def_of(parse_inst("pinsrq\t$1, %rcx, %xmm5"));
  EXPECT_TRUE(has_gpr(ud.use, Gpr::kRcx));
  // Lane 0 survives the insert, so the destination is read as well.
  EXPECT_TRUE(has_xmm(ud.use, 5));
  EXPECT_TRUE(has_xmm(ud.def, 5));
  EXPECT_FALSE(has_flags(ud.def));
}

TEST(UseDef, Vinserti128IsReadModifyWrite) {
  const UseDef ud = use_def_of(parse_inst("vinserti128\t$1, %xmm2, %ymm7"));
  EXPECT_TRUE(has_xmm(ud.use, 2));
  EXPECT_TRUE(has_xmm(ud.use, 7));
  EXPECT_TRUE(has_xmm(ud.def, 7));
}

TEST(UseDef, PushPopBumpRsp) {
  const UseDef push = use_def_of(parse_inst("pushq\t%r12"));
  EXPECT_TRUE(has_gpr(push.use, Gpr::kR12));
  EXPECT_TRUE(has_gpr(push.use, Gpr::kRsp));
  EXPECT_TRUE(has_gpr(push.def, Gpr::kRsp));
  EXPECT_FALSE(has_gpr(push.def, Gpr::kR12));

  const UseDef pop = use_def_of(parse_inst("popq\t%r12"));
  EXPECT_TRUE(has_gpr(pop.use, Gpr::kRsp));
  EXPECT_TRUE(has_gpr(pop.def, Gpr::kR12));
  EXPECT_TRUE(has_gpr(pop.def, Gpr::kRsp));
}

TEST(UseDef, DetectTrapIsInert) {
  // Never returns: nothing can be live through it, so both masks are
  // empty and liveness ends at the trap.
  const UseDef ud = use_def_of(AsmInst(Op::kDetectTrap, {}));
  EXPECT_EQ(ud.use, 0u);
  EXPECT_EQ(ud.def, 0u);
}

TEST(UseDef, NarrowGprDefCountsAsUse) {
  // setcc writes one byte; the upper bits (a parked requisition value,
  // a batched capture) survive, so the register is read as well.
  const UseDef set = use_def_of(parse_inst("setl\t%r10b"));
  EXPECT_TRUE(has_flags(set.use));
  EXPECT_TRUE(has_gpr(set.use, Gpr::kR10));
  EXPECT_TRUE(has_gpr(set.def, Gpr::kR10));

  // A full-width def is a clean kill: no self-use.
  const UseDef mov = use_def_of(parse_inst("movq\t$1, %r10"));
  EXPECT_FALSE(has_gpr(mov.use, Gpr::kR10));
  EXPECT_TRUE(has_gpr(mov.def, Gpr::kR10));
}

}  // namespace
}  // namespace ferrum::masm
