#include <gtest/gtest.h>

#include "fault/audit.h"
#include "masm/parser.h"
#include "masm/verifier.h"
#include "pipeline/pipeline.h"
#include "support/source_location.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

masm::AsmProgram parse_any(const char* text) {
  DiagEngine diags;
  return masm::parse_program(text, diags);
}

TEST(AsmVerifier, AcceptsMinimalProgram) {
  auto program = parse_any("main:\n.entry:\n\tmovq\t$0, %rax\n\tret\n");
  EXPECT_TRUE(masm::verify_program(program).empty())
      << masm::verify_program_to_string(program);
}

TEST(AsmVerifier, RequiresMain) {
  auto program = parse_any("helper:\n.entry:\n\tret\n");
  EXPECT_FALSE(masm::verify_program(program).empty());
  EXPECT_TRUE(masm::verify_program(program, /*require_main=*/false).empty());
}

TEST(AsmVerifier, CatchesUnresolvedJump) {
  auto program = parse_any("main:\n.entry:\n\tjmp\t.nowhere\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unresolved jump"), std::string::npos);
}

TEST(AsmVerifier, CatchesUnknownCallee) {
  auto program = parse_any("main:\n.entry:\n\tcall\tmystery\n\tret\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unknown function"), std::string::npos);
}

TEST(AsmVerifier, IntrinsicsAreKnown) {
  auto program = parse_any(
      "main:\n.entry:\n"
      "\tmovq\t$1, %rdi\n\tcall\tprint_int\n\tret\n");
  EXPECT_TRUE(masm::verify_program(program).empty());
}

TEST(AsmVerifier, CatchesUnreachableCode) {
  auto program = parse_any(
      "main:\n.entry:\n\tret\n\tmovq\t$1, %rax\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unreachable"), std::string::npos);
}

TEST(AsmVerifier, MidBlockConditionalIsLegal) {
  // Protection checks (`jne .detect`) appear mid-block by design.
  auto program = parse_any(
      "main:\n.entry:\n"
      "\tcmpq\t$0, %rax\n"
      "\tjne\t.entry\n"
      "\tmovq\t$1, %rax\n"
      "\tret\n");
  EXPECT_TRUE(masm::verify_program(program).empty())
      << masm::verify_program_to_string(program);
}

TEST(AsmVerifier, CatchesDuplicateLabels) {
  masm::AsmProgram program;
  masm::AsmFunction fn;
  fn.name = "main";
  fn.blocks.push_back({"x", {masm::AsmInst(masm::Op::kRet, {})}});
  fn.blocks.push_back({"x", {masm::AsmInst(masm::Op::kRet, {})}});
  program.functions.push_back(fn);
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("duplicate"), std::string::npos);
}

TEST(AsmVerifier, CatchesBadPinsrLane) {
  masm::AsmProgram program;
  masm::AsmFunction fn;
  fn.name = "main";
  masm::AsmBlock block;
  block.label = "entry";
  block.insts.push_back(masm::AsmInst(
      masm::Op::kPinsrq,
      {masm::Operand::make_imm(5, 1), masm::Operand::make_reg(masm::Gpr::kRax),
       masm::Operand::make_xmm(0)}));
  block.insts.push_back(masm::AsmInst(masm::Op::kRet, {}));
  fn.blocks.push_back(block);
  program.functions.push_back(fn);
  EXPECT_FALSE(masm::verify_program(program).empty());
}

TEST(AsmVerifier, CatchesUnassignedIntrinsicArgument) {
  // print_int reads %rdi, which nothing on the path assigns.
  auto program = parse_any("main:\n.entry:\n\tcall\tprint_int\n\tret\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("not definitely assigned"), std::string::npos);
  EXPECT_NE(problems[0].find("%rdi"), std::string::npos);
}

TEST(AsmVerifier, CatchesUnassignedFpArgument) {
  auto program = parse_any("main:\n.entry:\n\tcall\tprint_f64\n\tret\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("%xmm0"), std::string::npos);
}

TEST(AsmVerifier, CallClobbersArgumentRegisters) {
  // The first call consumes the marshalled %rdi; ABI discipline says the
  // callee may trash it, so the second call needs a fresh assignment.
  auto program = parse_any(
      "main:\n.entry:\n"
      "\tmovq\t$1, %rdi\n\tcall\tprint_int\n"
      "\tcall\tprint_int\n\tret\n");
  const auto problems = masm::verify_program(program);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("%rdi"), std::string::npos);
}

TEST(AsmVerifier, ArgumentMustBeAssignedOnAllPaths) {
  // The jne path reaches .join without ever writing %rdi; the must-
  // analysis intersects the two edges and flags the call.
  auto program = parse_any(
      "main:\n.entry:\n"
      "\tcmpq\t$0, %rsp\n"
      "\tjne\t.join\n"
      "\tmovq\t$1, %rdi\n"
      "\tjmp\t.join\n"
      ".join:\n"
      "\tcall\tprint_int\n"
      "\tret\n");
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("%rdi"), std::string::npos);

  auto fixed = parse_any(
      "main:\n.entry:\n"
      "\tmovq\t$1, %rdi\n"
      "\tcmpq\t$0, %rsp\n"
      "\tjne\t.join\n"
      "\tmovq\t$2, %rdi\n"
      "\tjmp\t.join\n"
      ".join:\n"
      "\tcall\tprint_int\n"
      "\tret\n");
  EXPECT_TRUE(masm::verify_program(fixed).empty())
      << masm::verify_program_to_string(fixed);
}

TEST(AsmVerifier, UserFunctionArgumentDiscipline) {
  // Parsed assembly carries no arg counts (the discipline is vacuous);
  // once the backend metadata is present the missing %rdi is flagged.
  auto program = parse_any(
      "helper:\n.entry:\n\tret\n"
      "main:\n.entry:\n\tcall\thelper\n\tret\n");
  EXPECT_TRUE(masm::verify_program(program).empty());
  program.functions[0].int_args = 1;
  const auto problems = masm::verify_program(program);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("%rdi"), std::string::npos);

  auto fixed = parse_any(
      "helper:\n.entry:\n\tret\n"
      "main:\n.entry:\n\tmovq\t$7, %rdi\n\tcall\thelper\n\tret\n");
  fixed.functions[0].int_args = 1;
  EXPECT_TRUE(masm::verify_program(fixed).empty())
      << masm::verify_program_to_string(fixed);
}

TEST(AsmVerifier, ReturnRegisterSatisfiesNextMarshal) {
  // %rax is live after a call (the return value); moving it into %rdi
  // re-satisfies the next call even though the call clobbered %rdi.
  auto program = parse_any(
      "helper:\n.entry:\n\tmovq\t$3, %rax\n\tret\n"
      "main:\n.entry:\n"
      "\tcall\thelper\n"
      "\tmovq\t%rax, %rdi\n"
      "\tcall\tprint_int\n"
      "\tret\n");
  EXPECT_TRUE(masm::verify_program(program).empty())
      << masm::verify_program_to_string(program);
}

TEST(AsmVerifier, EveryPipelineOutputVerifies) {
  using pipeline::Technique;
  for (const auto& w : workloads::all()) {
    for (Technique technique : {Technique::kNone, Technique::kIrEddi,
                                Technique::kHybrid, Technique::kFerrum}) {
      auto build = pipeline::build(w.source, technique);
      EXPECT_TRUE(masm::verify_program(build.program).empty())
          << w.name << "/" << pipeline::technique_name(technique) << "\n"
          << masm::verify_program_to_string(build.program);
    }
  }
}

TEST(Audit, CleanProgramFullyCovered) {
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i++) s += i * 2;
      print_int(s);
      return 0;
    })", pipeline::Technique::kFerrum);
  const auto report = fault::audit_program(build.program);
  EXPECT_TRUE(report.fully_covered())
      << report.escapes.size() << " escapes";
  EXPECT_GT(report.detected, 0u);
  EXPECT_EQ(report.injections,
            report.detected + report.benign + report.crashed);
}

TEST(Audit, UnprotectedProgramHasEscapes) {
  auto build = pipeline::build(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i++) s += i * 2;
      print_int(s);
      return 0;
    })", pipeline::Technique::kNone);
  const auto report = fault::audit_program(build.program);
  EXPECT_FALSE(report.fully_covered());
  EXPECT_EQ(report.detected, 0u);
  // Escape records carry diagnosable metadata.
  ASSERT_FALSE(report.escapes.empty());
  EXPECT_EQ(report.escapes[0].function, "main");
}

TEST(Audit, GoldenFailureThrows) {
  auto build = pipeline::build(
      "int main() { int z = 0; print_int(3 / z); return 0; }",
      pipeline::Technique::kNone);
  EXPECT_THROW(fault::audit_program(build.program), std::runtime_error);
}

}  // namespace
}  // namespace ferrum
