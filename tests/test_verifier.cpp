#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/ir.h"
#include "ir/verifier.h"

namespace ferrum::ir {
namespace {

/// A minimal valid function to mutate in each test.
struct Fixture {
  Module module;
  Function* fn;
  BasicBlock* entry;
  IRBuilder builder{module};

  Fixture() {
    fn = module.add_function("f", Type::i32());
    entry = fn->add_block("entry");
    builder.set_insert_point(entry);
  }
};

TEST(Verifier, AcceptsValidFunction) {
  Fixture fx;
  Instruction* slot = fx.builder.create_alloca(TypeKind::kI32);
  fx.builder.create_store(fx.module.const_i32(1), slot);
  Instruction* value = fx.builder.create_load(slot);
  fx.builder.create_ret(value);
  EXPECT_TRUE(verify(fx.module).empty()) << verify_to_string(fx.module);
}

TEST(Verifier, RejectsEmptyBlock) {
  Fixture fx;
  fx.builder.create_ret(fx.module.const_i32(0));
  fx.fn->add_block("empty");
  const auto problems = verify(fx.module);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("empty"), std::string::npos);
}

TEST(Verifier, RejectsMissingTerminator) {
  Fixture fx;
  fx.builder.create_alloca(TypeKind::kI32);
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsMidBlockTerminator) {
  Fixture fx;
  fx.builder.create_ret(fx.module.const_i32(0));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsRetTypeMismatch) {
  Fixture fx;
  fx.builder.create_ret(fx.module.const_i64(0));  // i64 in an i32 function
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsRetVoidFromNonVoid) {
  Fixture fx;
  fx.builder.create_ret_void();
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsStoreTypeMismatch) {
  Fixture fx;
  Instruction* slot = fx.builder.create_alloca(TypeKind::kI32);
  // Hand-build a bad store (the builder would assert).
  auto bad = std::make_unique<Instruction>(Opcode::kStore, Type::void_type());
  bad->operands = {fx.module.const_i64(1), slot};
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsLoadFromNonPointer) {
  Fixture fx;
  auto bad = std::make_unique<Instruction>(Opcode::kLoad, Type::i32());
  bad->operands = {fx.module.const_i32(1)};
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsGepWithNarrowIndex) {
  Fixture fx;
  GlobalVar* g = fx.module.add_global(TypeKind::kI32, 4, "g");
  auto bad = std::make_unique<Instruction>(Opcode::kGep,
                                           Type::ptr(TypeKind::kI32));
  bad->operands = {g, fx.module.const_i32(1)};  // index must be i64
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsBinaryTypeMixing) {
  Fixture fx;
  auto bad = std::make_unique<Instruction>(Opcode::kAdd, Type::i32());
  bad->operands = {fx.module.const_i32(1), fx.module.const_i64(2)};
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsFloatOpOnInts) {
  Fixture fx;
  auto bad = std::make_unique<Instruction>(Opcode::kFAdd, Type::f64());
  bad->operands = {fx.module.const_i32(1), fx.module.const_i32(2)};
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsCondBrOnNonBool) {
  Fixture fx;
  BasicBlock* other = fx.fn->add_block("other");
  auto bad = std::make_unique<Instruction>(Opcode::kCondBr, Type::void_type());
  bad->operands = {fx.module.const_i32(1)};
  bad->targets[0] = other;
  bad->targets[1] = other;
  fx.entry->append(std::move(bad));
  fx.builder.set_insert_point(other);
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsBranchToForeignBlock) {
  Fixture fx;
  Function* other_fn = fx.module.add_function("g", Type::void_type());
  BasicBlock* foreign = other_fn->add_block("entry");
  IRBuilder b2(fx.module);
  b2.set_insert_point(foreign);
  b2.create_ret_void();

  auto bad = std::make_unique<Instruction>(Opcode::kBr, Type::void_type());
  bad->targets[0] = foreign;
  fx.entry->append(std::move(bad));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsUseBeforeDefinitionInBlock) {
  Fixture fx;
  Instruction* slot = fx.builder.create_alloca(TypeKind::kI32);
  // Build a load, then an add that we insert *before* the load.
  Instruction* value = fx.builder.create_load(slot);
  auto add = std::make_unique<Instruction>(Opcode::kAdd, Type::i32());
  add->operands = {value, fx.module.const_i32(1)};
  fx.entry->insert(1, std::move(add));
  fx.builder.create_ret(fx.module.const_i32(0));
  const auto problems = verify(fx.module);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("use before definition"), std::string::npos);
}

TEST(Verifier, AcceptsCrossBlockUses) {
  // Protection passes split blocks; values may flow across block edges.
  Fixture fx;
  BasicBlock* next = fx.fn->add_block("next");
  Instruction* slot = fx.builder.create_alloca(TypeKind::kI32);
  Instruction* value = fx.builder.create_load(slot);
  fx.builder.create_br(next);
  fx.builder.set_insert_point(next);
  fx.builder.create_ret(value);
  EXPECT_TRUE(verify(fx.module).empty()) << verify_to_string(fx.module);
}

TEST(Verifier, RejectsCallArityMismatch) {
  Fixture fx;
  Function* callee = fx.module.add_function("callee", Type::i32());
  callee->add_arg(Type::i32(), "x");
  BasicBlock* body = callee->add_block("entry");
  IRBuilder b2(fx.module);
  b2.set_insert_point(body);
  b2.create_ret(fx.module.const_i32(0));

  auto bad = std::make_unique<Instruction>(Opcode::kCall, Type::i32());
  bad->callee = callee;  // no arguments supplied
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsCallArgumentTypeMismatch) {
  Fixture fx;
  Function* callee = fx.module.add_function("callee", Type::void_type());
  callee->add_arg(Type::f64(), "x");
  BasicBlock* body = callee->add_block("entry");
  IRBuilder b2(fx.module);
  b2.set_insert_point(body);
  b2.create_ret_void();

  auto bad = std::make_unique<Instruction>(Opcode::kCall, Type::void_type());
  bad->callee = callee;
  bad->operands = {fx.module.const_i32(1)};
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

TEST(Verifier, RejectsBadAlloca) {
  Fixture fx;
  auto bad = std::make_unique<Instruction>(Opcode::kAlloca,
                                           Type::ptr(TypeKind::kI32));
  bad->alloca_elem = TypeKind::kI32;
  bad->alloca_count = 0;
  fx.entry->append(std::move(bad));
  fx.builder.create_ret(fx.module.const_i32(0));
  EXPECT_FALSE(verify(fx.module).empty());
}

}  // namespace
}  // namespace ferrum::ir
