#include <gtest/gtest.h>

#include "ir/interp.h"
#include "pipeline/pipeline.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using pipeline::Technique;

TEST(Workloads, AllEightArePresent) {
  const auto& list = workloads::all();
  ASSERT_EQ(list.size(), 8u);
  const char* expected[] = {"backprop", "bfs", "pathfinder", "lud",
                            "needle", "knn", "kmeans", "particlefilter"};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(list[i].name, expected[i]);
    EXPECT_EQ(list[i].suite, "rodinia-class");
    EXPECT_FALSE(list[i].domain.empty());
    EXPECT_FALSE(list[i].source.empty());
  }
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workloads::by_name("lud").name, "lud");
  EXPECT_THROW(workloads::by_name("nonesuch"), std::out_of_range);
}

class WorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadTest, RunsCleanUnprotected) {
  const auto& w = workloads::all()[static_cast<std::size_t>(GetParam())];
  auto build = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult result = vm::run(build.program);
  ASSERT_TRUE(result.ok()) << w.name << ": "
                           << vm::exit_status_name(result.status);
  EXPECT_FALSE(result.output.empty()) << w.name;
  EXPECT_GT(result.fi_sites, 1000u) << w.name;
}

TEST_P(WorkloadTest, DeterministicOutput) {
  const auto& w = workloads::all()[static_cast<std::size_t>(GetParam())];
  auto build = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult a = vm::run(build.program);
  const vm::VmResult b = vm::run(build.program);
  EXPECT_EQ(a.output, b.output) << w.name;
  EXPECT_EQ(a.steps, b.steps) << w.name;
}

TEST_P(WorkloadTest, AllTechniquesPreserveOutput) {
  const auto& w = workloads::all()[static_cast<std::size_t>(GetParam())];
  auto baseline = pipeline::build(w.source, Technique::kNone);
  const vm::VmResult golden = vm::run(baseline.program);
  ASSERT_TRUE(golden.ok());
  for (Technique technique :
       {Technique::kIrEddi, Technique::kHybrid, Technique::kFerrum}) {
    auto build = pipeline::build(w.source, technique);
    const vm::VmResult result = vm::run(build.program);
    ASSERT_TRUE(result.ok())
        << w.name << "/" << pipeline::technique_name(technique) << ": "
        << vm::exit_status_name(result.status);
    EXPECT_EQ(result.output, golden.output)
        << w.name << "/" << pipeline::technique_name(technique);
  }
}

TEST_P(WorkloadTest, InterpreterAgreesWithVm) {
  const auto& w = workloads::all()[static_cast<std::size_t>(GetParam())];
  auto build = pipeline::build(w.source, Technique::kNone);
  const ir::RunResult reference = ir::interpret(*build.module);
  const vm::VmResult actual = vm::run(build.program);
  ASSERT_TRUE(reference.ok()) << w.name;
  ASSERT_TRUE(actual.ok()) << w.name;
  EXPECT_EQ(actual.output, reference.output) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::Range(0, 8));

TEST(Workloads, ScalingGrowsExecution) {
  const auto small = workloads::scaled("bfs", 1);
  const auto large = workloads::scaled("bfs", 4);
  auto small_build = pipeline::build(small.source, Technique::kNone);
  auto large_build = pipeline::build(large.source, Technique::kNone);
  const vm::VmResult small_run = vm::run(small_build.program);
  const vm::VmResult large_run = vm::run(large_build.program);
  ASSERT_TRUE(small_run.ok());
  ASSERT_TRUE(large_run.ok());
  EXPECT_GT(large_run.steps, small_run.steps * 2);
}

TEST(Workloads, ScaledOutputsStayDeterministic) {
  const auto w = workloads::scaled("pathfinder", 3);
  auto build = pipeline::build(w.source, Technique::kFerrum);
  const vm::VmResult a = vm::run(build.program);
  const vm::VmResult b = vm::run(build.program);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.output, b.output);
}

}  // namespace
}  // namespace ferrum
