// End-to-end integration: realistic multi-function MiniC programs run
// through every technique, checked against the IR interpreter, and
// audited exhaustively under FERRUM.
#include <gtest/gtest.h>

#include "fault/audit.h"
#include "ir/interp.h"
#include "pipeline/pipeline.h"
#include "vm/vm.h"

namespace ferrum {
namespace {

using pipeline::Technique;

void expect_all_techniques_agree(const std::string& source) {
  auto baseline = pipeline::build(source, Technique::kNone);
  const ir::RunResult reference = ir::interpret(*baseline.module);
  ASSERT_TRUE(reference.ok());
  for (Technique technique : {Technique::kNone, Technique::kIrEddi,
                              Technique::kHybrid, Technique::kFerrum}) {
    auto build = pipeline::build(source, technique);
    const vm::VmResult result = vm::run(build.program);
    ASSERT_TRUE(result.ok())
        << pipeline::technique_name(technique) << ": "
        << vm::exit_status_name(result.status);
    EXPECT_EQ(result.output, reference.output)
        << pipeline::technique_name(technique);
  }
}

TEST(Integration, InsertionSort) {
  expect_all_techniques_agree(R"(
    int data[24];
    int seed = 91;
    int rnd() {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) seed = -seed;
      return seed % 1000;
    }
    void sort(int* a, int n) {
      for (int i = 1; i < n; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
          a[j + 1] = a[j];
          j--;
        }
        a[j + 1] = key;
      }
    }
    int main() {
      for (int i = 0; i < 24; i++) data[i] = rnd();
      sort(data, 24);
      int sorted = 1;
      for (int i = 1; i < 24; i++) {
        if (data[i - 1] > data[i]) sorted = 0;
      }
      print_int(sorted);
      long check = 0L;
      for (int i = 0; i < 24; i++) check += (long)(data[i] * (i + 1));
      print_int(check);
      return 0;
    })");
}

TEST(Integration, MatrixMultiply) {
  expect_all_techniques_agree(R"(
    double a[16];
    double b[16];
    double c[16];
    int main() {
      for (int i = 0; i < 16; i++) {
        a[i] = (double)(i % 5) + 0.5;
        b[i] = (double)(i % 3) - 1.0;
      }
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
          double acc = 0.0;
          for (int k = 0; k < 4; k++) acc += a[i * 4 + k] * b[k * 4 + j];
          c[i * 4 + j] = acc;
        }
      }
      double trace = 0.0;
      for (int i = 0; i < 4; i++) trace += c[i * 4 + i];
      print_f64(trace);
      return 0;
    })");
}

TEST(Integration, FixedPointNewton) {
  expect_all_techniques_agree(R"(
    double my_sqrt(double x) {
      double guess = x / 2.0;
      for (int i = 0; i < 20; i++) guess = (guess + x / guess) / 2.0;
      return guess;
    }
    int main() {
      double total = 0.0;
      for (int i = 1; i <= 10; i++) total += my_sqrt((double)i);
      print_f64(total);
      print_f64(total - sqrt(2.0) - sqrt(3.0));
      return 0;
    })");
}

TEST(Integration, CollatzSteps) {
  expect_all_techniques_agree(R"(
    int steps(long n) {
      int count = 0;
      while (n != 1L) {
        if (n % 2L == 0L) n = n / 2L;
        else n = 3L * n + 1L;
        count++;
      }
      return count;
    }
    int main() {
      long best = 0L;
      int best_steps = 0;
      for (long n = 1L; n <= 40L; n++) {
        int s = steps(n);
        if (s > best_steps) { best_steps = s; best = n; }
      }
      print_int(best);
      print_int(best_steps);
      return 0;
    })");
}

TEST(Integration, HistogramWithFunctions) {
  expect_all_techniques_agree(R"(
    int hist[10];
    int seed = 1234;
    int rnd() {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      if (seed < 0) seed = -seed;
      return seed;
    }
    void bump(int* h, int bucket) { h[bucket] += 1; }
    int main() {
      for (int i = 0; i < 200; i++) bump(hist, rnd() % 10);
      int total = 0;
      int max = 0;
      for (int i = 0; i < 10; i++) {
        total += hist[i];
        if (hist[i] > max) max = hist[i];
      }
      print_int(total);
      print_int(max);
      return 0;
    })");
}

TEST(IntegrationAudit, SortIsFullyCoveredUnderFerrum) {
  auto build = pipeline::build(R"(
    int data[8];
    void sort(int* a, int n) {
      for (int i = 1; i < n; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
        a[j + 1] = key;
      }
    }
    int main() {
      for (int i = 0; i < 8; i++) data[i] = (i * 37 + 11) % 23;
      sort(data, 8);
      long check = 0L;
      for (int i = 0; i < 8; i++) check += (long)(data[i] * (i + 1));
      print_int(check);
      return 0;
    })", Technique::kFerrum);
  fault::AuditOptions options;
  options.probe_bits = {0, 31};
  const auto report = fault::audit_program(build.program, options);
  EXPECT_TRUE(report.fully_covered()) << report.escapes.size()
                                      << " escapes of " << report.injections;
}

TEST(IntegrationAudit, NewtonIsFullyCoveredUnderFerrum) {
  auto build = pipeline::build(R"(
    int main() {
      double x = 7.0;
      double guess = x / 2.0;
      for (int i = 0; i < 6; i++) guess = (guess + x / guess) / 2.0;
      print_f64(guess);
      return 0;
    })", Technique::kFerrum);
  fault::AuditOptions options;
  options.probe_bits = {0, 17, 52, 63};  // mantissa, exponent, sign
  const auto report = fault::audit_program(build.program, options);
  EXPECT_TRUE(report.fully_covered()) << report.escapes.size()
                                      << " escapes of " << report.injections;
}

}  // namespace
}  // namespace ferrum
