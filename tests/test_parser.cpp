#include <gtest/gtest.h>

#include "frontend/parser.h"

namespace ferrum::minic {
namespace {

TranslationUnit parse_ok(std::string_view source) {
  DiagEngine diags;
  auto unit = parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return unit;
}

bool parse_fails(std::string_view source) {
  DiagEngine diags;
  parse(source, diags);
  return diags.has_errors();
}

TEST(Parser, FunctionSignature) {
  auto unit = parse_ok("double f(int a, long b, double* p) { return 0.0; }");
  ASSERT_EQ(unit.functions.size(), 1u);
  const FunctionDecl& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "f");
  EXPECT_EQ(fn.return_type, CType::double_type());
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(fn.params[0].type, CType::int_type());
  EXPECT_EQ(fn.params[1].type, CType::long_type());
  EXPECT_EQ(fn.params[2].type, CType::pointer_to(CType::Base::kDouble));
}

TEST(Parser, GlobalScalarAndArray) {
  auto unit = parse_ok("int n = 5;\ndouble w[3] = {1.0, -2.0, 3.5};\nint z[7];");
  ASSERT_EQ(unit.globals.size(), 3u);
  EXPECT_EQ(unit.globals[0].name, "n");
  EXPECT_TRUE(unit.globals[0].has_init);
  EXPECT_EQ(unit.globals[0].int_init[0], 5);
  EXPECT_EQ(unit.globals[1].array_size, 3);
  EXPECT_DOUBLE_EQ(unit.globals[1].float_init[1], -2.0);
  EXPECT_EQ(unit.globals[2].array_size, 7);
  EXPECT_FALSE(unit.globals[2].has_init);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto unit = parse_ok("int f() { return 1 + 2 * 3; }");
  const Stmt& ret = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(ret.kind, StmtKind::kReturn);
  const Expr& add = *ret.expr;
  ASSERT_EQ(add.kind, ExprKind::kBinary);
  EXPECT_EQ(add.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(add.children[1]->binary_op, BinaryOp::kMul);
}

TEST(Parser, ComparisonBindsLooserThanShift) {
  auto unit = parse_ok("int f() { return 1 << 2 < 3; }");
  const Expr& cmp = *unit.functions[0].body->stmts[0]->expr;
  EXPECT_EQ(cmp.binary_op, BinaryOp::kLt);
  EXPECT_EQ(cmp.children[0]->binary_op, BinaryOp::kShl);
}

TEST(Parser, LogicalOrBindsLoosest) {
  auto unit = parse_ok("int f() { return 1 && 2 || 3 && 4; }");
  const Expr& expr = *unit.functions[0].body->stmts[0]->expr;
  EXPECT_EQ(expr.binary_op, BinaryOp::kLogicalOr);
  EXPECT_EQ(expr.children[0]->binary_op, BinaryOp::kLogicalAnd);
  EXPECT_EQ(expr.children[1]->binary_op, BinaryOp::kLogicalAnd);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto unit = parse_ok("int f() { int a; int b; a = b = 3; return a; }");
  const Expr& outer = *unit.functions[0].body->stmts[2]->expr;
  ASSERT_EQ(outer.kind, ExprKind::kAssign);
  EXPECT_EQ(outer.children[1]->kind, ExprKind::kAssign);
}

TEST(Parser, CompoundAssignments) {
  auto unit = parse_ok("int f() { int a = 1; a += 2; a -= 3; a *= 4; a /= 5; "
                       "a %= 6; return a; }");
  const auto& stmts = unit.functions[0].body->stmts;
  EXPECT_EQ(stmts[1]->expr->assign_op, AssignOp::kAdd);
  EXPECT_EQ(stmts[2]->expr->assign_op, AssignOp::kSub);
  EXPECT_EQ(stmts[3]->expr->assign_op, AssignOp::kMul);
  EXPECT_EQ(stmts[4]->expr->assign_op, AssignOp::kDiv);
  EXPECT_EQ(stmts[5]->expr->assign_op, AssignOp::kRem);
}

TEST(Parser, CastVersusParenthesisedExpression) {
  auto unit = parse_ok("int f() { return (int)(1.5) + (1 + 2); }");
  const Expr& add = *unit.functions[0].body->stmts[0]->expr;
  EXPECT_EQ(add.children[0]->kind, ExprKind::kCast);
  EXPECT_EQ(add.children[0]->cast_type, CType::int_type());
  EXPECT_EQ(add.children[1]->kind, ExprKind::kBinary);
}

TEST(Parser, UnaryChains) {
  auto unit = parse_ok("int f() { int a = 1; return -~!a; }");
  const Expr& neg = *unit.functions[0].body->stmts[1]->expr;
  ASSERT_EQ(neg.kind, ExprKind::kUnary);
  EXPECT_EQ(neg.unary_op, UnaryOp::kNeg);
  EXPECT_EQ(neg.children[0]->unary_op, UnaryOp::kBitNot);
  EXPECT_EQ(neg.children[0]->children[0]->unary_op, UnaryOp::kNot);
}

TEST(Parser, PostfixAndPrefixIncrement) {
  auto unit = parse_ok("int f() { int a = 0; a++; ++a; a--; --a; return a; }");
  const auto& stmts = unit.functions[0].body->stmts;
  EXPECT_EQ(stmts[1]->expr->kind, ExprKind::kPostfix);
  EXPECT_TRUE(stmts[1]->expr->postfix_increment);
  EXPECT_EQ(stmts[2]->expr->kind, ExprKind::kUnary);
  EXPECT_EQ(stmts[2]->expr->unary_op, UnaryOp::kPreInc);
  EXPECT_FALSE(stmts[3]->expr->postfix_increment);
  EXPECT_EQ(stmts[4]->expr->unary_op, UnaryOp::kPreDec);
}

TEST(Parser, IndexingChains) {
  auto unit = parse_ok("int f(int* p) { return p[p[0]]; }");
  const Expr& outer = *unit.functions[0].body->stmts[0]->expr;
  ASSERT_EQ(outer.kind, ExprKind::kIndex);
  EXPECT_EQ(outer.children[1]->kind, ExprKind::kIndex);
}

TEST(Parser, ForLoopPieces) {
  auto unit = parse_ok("int f() { for (int i = 0; i < 4; i++) { } return 0; }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(loop.kind, StmtKind::kFor);
  EXPECT_NE(loop.init_stmt, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_NE(loop.step, nullptr);
  EXPECT_NE(loop.body, nullptr);
}

TEST(Parser, ForLoopAllPiecesOptional) {
  auto unit = parse_ok("int f() { for (;;) { break; } return 0; }");
  const Stmt& loop = *unit.functions[0].body->stmts[0];
  EXPECT_EQ(loop.init_stmt, nullptr);
  EXPECT_EQ(loop.cond, nullptr);
  EXPECT_EQ(loop.step, nullptr);
}

TEST(Parser, IfElseChain) {
  auto unit = parse_ok(
      "int f(int x) { if (x > 0) return 1; else if (x < 0) return -1; "
      "else return 0; }");
  const Stmt& outer = *unit.functions[0].body->stmts[0];
  ASSERT_EQ(outer.kind, StmtKind::kIf);
  ASSERT_NE(outer.else_body, nullptr);
  EXPECT_EQ(outer.else_body->kind, StmtKind::kIf);
}

TEST(Parser, CallWithArguments) {
  auto unit = parse_ok("int g(int a, int b) { return a; } "
                       "int f() { return g(1, 2 + 3); }");
  const Expr& call = *unit.functions[1].body->stmts[0]->expr;
  ASSERT_EQ(call.kind, ExprKind::kCall);
  EXPECT_EQ(call.name, "g");
  EXPECT_EQ(call.children.size(), 2u);
}

TEST(Parser, LocalArrayDeclaration) {
  auto unit = parse_ok("int f() { int buf[16]; buf[3] = 1; return buf[3]; }");
  const Stmt& decl = *unit.functions[0].body->stmts[0];
  EXPECT_EQ(decl.kind, StmtKind::kDecl);
  EXPECT_EQ(decl.array_size, 16);
}

TEST(Parser, ErrorMissingSemicolon) {
  EXPECT_TRUE(parse_fails("int f() { return 1 }"));
}

TEST(Parser, ErrorUnbalancedParens) {
  EXPECT_TRUE(parse_fails("int f() { return (1 + 2; }"));
}

TEST(Parser, ErrorBadTopLevel) {
  EXPECT_TRUE(parse_fails("42;"));
}

TEST(Parser, ErrorVoidVariable) {
  EXPECT_TRUE(parse_fails("int f() { void x; return 0; }"));
}

TEST(Parser, ErrorNegativeArraySize) {
  EXPECT_TRUE(parse_fails("int g[0];"));
}

TEST(Parser, ErrorLocalArrayInitialiser) {
  EXPECT_TRUE(parse_fails("int f() { int a[2] = 1; return 0; }"));
}

}  // namespace
}  // namespace ferrum::minic
