// ferrum-flow self-test. The analysis makes a one-directional promise —
// a site predicted masked or detected must never produce a dynamic SDC —
// so the tests pin the conservative side of every transfer rule:
//
//   - transfer/prediction unit tests on hand-written MiniASM fragments
//     (store data chains, branch feeds, address registers, main's return
//     value as program output, detector-targeted jumps, dead writes, and
//     the scalar-double chain that once slipped past check's benign
//     verdict);
//   - determinism: the serialized ferrum.flow.v1 document is
//     byte-identical across independent runs and unaffected by the
//     execution env knobs (FERRUM_JOBS/FERRUM_DISPATCH/FERRUM_BATCH),
//     which have no channel into the static analysis;
//   - the selective planner: ordinal stability of the protectable-site
//     universe (selection outcomes cannot shift site identity), budget
//     arithmetic through the pipeline, and the protected-site count
//     matching the plan exactly.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/flow.h"
#include "eddi/asm_protect.h"
#include "masm/parser.h"
#include "pipeline/pipeline.h"
#include "pipeline/selective.h"
#include "support/source_location.h"
#include "workloads/workloads.h"

namespace ferrum {
namespace {

using check::flow::FlowReport;
using check::flow::FlowSite;
using check::flow::Prediction;
using check::flow::PredictionBasis;
using pipeline::SelectiveOptions;
using pipeline::Technique;

FlowReport flow_text(const char* text) {
  DiagEngine diags;
  const masm::AsmProgram program = masm::parse_program(text, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return check::flow::flow_program(program);
}

const FlowSite* site_of(const FlowReport& report, int block, int inst) {
  return report.find(/*function=*/0, block, inst);
}

// ------------------------------------------------ transfer functions --

// A value that reaches a store is sdc-vulnerable: memory is untracked,
// so the store stream counts as observable output.
TEST(FlowTransfer, StoreDataChainIsVulnerable) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$7, %rcx\n"
      "\tmovq\t%rcx, -8(%rsp)\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const FlowSite* site = site_of(flow, 0, 0);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->prediction, Prediction::kSdcVulnerable);
  EXPECT_NE(site->sinks & check::flow::kSinkStore, 0);
}

// A write that is overwritten before any observation has no sinks —
// masked, on flow's own evidence.
TEST(FlowTransfer, DeadWriteIsMasked) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$7, %rcx\n"
      "\tmovq\t$8, %rcx\n"
      "\tmovq\t%rcx, %rax\n"
      "\tret\n");
  const FlowSite* site = site_of(flow, 0, 0);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->prediction, Prediction::kMasked);
}

// main's return value is program output: the rax write feeding ret is
// sdc-vulnerable via the seeded output sink.
TEST(FlowTransfer, MainReturnValueIsOutput) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$42, %rax\n"
      "\tret\n");
  const FlowSite* site = site_of(flow, 0, 0);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->prediction, Prediction::kSdcVulnerable);
  EXPECT_NE(site->sinks & check::flow::kSinkOutput, 0);
}

// A register consumed by a compare that steers a branch is crash-prone
// (control flow can diverge), and the branch decision itself is a
// crash-prone site when its target is not a detector.
TEST(FlowTransfer, BranchFeedIsCrashProne) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$3, %rcx\n"
      "\tcmpq\t$0, %rcx\n"
      "\tje\t.done\n"
      "\tjmp\t.done\n"
      ".done:\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const FlowSite* feed = site_of(flow, 0, 0);  // rcx write
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(feed->prediction, Prediction::kCrashProne);
  const FlowSite* flags = site_of(flow, 0, 1);  // cmp flags write
  ASSERT_NE(flags, nullptr);
  EXPECT_EQ(flags->prediction, Prediction::kCrashProne);
  EXPECT_NE(flags->sinks & check::flow::kSinkBranch, 0);
  const FlowSite* branch = site_of(flow, 0, 2);  // jcc decision
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->prediction, Prediction::kCrashProne);
}

// A branch whose target block opens with detecttrap is the detector
// dispatch itself: corrupting the decision fires the trap, so the site
// is predicted detected, not crash-prone.
TEST(FlowTransfer, DetectorBranchIsDetected) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$3, %rcx\n"
      "\tcmpq\t$3, %rcx\n"
      "\tjne\t.fault\n"
      "\tjmp\t.done\n"
      ".fault:\n"
      "\tcall\t__ferrum_detect\n"
      ".done:\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const FlowSite* branch = site_of(flow, 0, 2);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->kind, masm::FaultSiteKind::kBranchDecision);
  EXPECT_EQ(branch->prediction, Prediction::kDetected);
  EXPECT_NE(branch->sinks & check::flow::kSinkDetect, 0);
}

// A register used to form a load address is crash-prone: a flipped
// address can fault the access.
TEST(FlowTransfer, AddressRegisterIsCrashProne) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tleaq\t-16(%rsp), %rcx\n"
      "\tmovq\t(%rcx), %rdx\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  const FlowSite* site = site_of(flow, 0, 0);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->prediction, Prediction::kCrashProne);
  EXPECT_NE(site->sinks & check::flow::kSinkAddress, 0);
}

// Regression: the scalar-double chain cvtsi2sd → divsd → movsd-to-memory
// must keep the whole chain sdc-vulnerable. ferrum-check's observation
// model calls these writes "never observed" (its scope is protection
// invariants), and an early flow version let that benign verdict
// override the store-sink evidence — the exhaustive audit promptly found
// dynamic SDCs on the sites. Check-benign may corroborate an empty sink
// mask, never veto a non-empty one.
TEST(FlowTransfer, ScalarDoubleStoreChainStaysVulnerable) {
  const FlowReport flow = flow_text(
      "main:\n"
      ".entry:\n"
      "\tmovq\t$6, %rcx\n"
      "\tcvtsi2sd\t%ecx, %xmm0\n"
      "\tmovsd\t%xmm0, %xmm1\n"
      "\tmovq\t$4613937818241073152, %rdx\n"
      "\tmovq\t%rdx, %xmm2\n"
      "\tdivsd\t%xmm2, %xmm1\n"
      "\tmovsd\t%xmm1, -8(%rsp)\n"
      "\tmovq\t$0, %rax\n"
      "\tret\n");
  for (const int inst : {0, 1, 2, 4, 5}) {
    const FlowSite* site = site_of(flow, 0, inst);
    ASSERT_NE(site, nullptr) << "inst " << inst;
    EXPECT_EQ(site->prediction, Prediction::kSdcVulnerable)
        << "inst " << inst;
  }
}

// ------------------------------------------------------- determinism --

// The flow document is a pure function of (program, options): two
// independent runs serialize byte-identically, and the runtime env knobs
// cannot perturb it — the analysis never reads them.
TEST(FlowDeterminism, SerializationIsStableAndKnobBlind) {
  const auto& workload = workloads::all().front();
  const auto build = pipeline::build(workload.source, Technique::kFerrum);

  setenv("FERRUM_JOBS", "1", 1);
  setenv("FERRUM_DISPATCH", "switch", 1);
  setenv("FERRUM_BATCH", "1", 1);
  const FlowReport first = check::flow::flow_program(build.program);
  const std::string first_doc =
      check::flow::to_json(first, build.program).dump();

  setenv("FERRUM_JOBS", "8", 1);
  setenv("FERRUM_DISPATCH", "threaded", 1);
  setenv("FERRUM_BATCH", "16", 1);
  const FlowReport second = check::flow::flow_program(build.program);
  const std::string second_doc =
      check::flow::to_json(second, build.program).dump();

  unsetenv("FERRUM_JOBS");
  unsetenv("FERRUM_DISPATCH");
  unsetenv("FERRUM_BATCH");
  EXPECT_EQ(first_doc, second_doc);
  EXPECT_FALSE(first_doc.empty());
}

// ------------------------------------------------- selective planner --

// Site ordinals are a property of the program shape, not of any
// particular selection: a selector that records every ref it is offered
// sees the identical universe whether it keeps all, none, or half.
TEST(FlowSelective, OrdinalsAreSelectionIndependent) {
  const auto& workload = workloads::all().front();
  const auto build = pipeline::build(workload.source, Technique::kNone);
  const eddi::AsmProtectOptions options;
  const auto universe =
      eddi::enumerate_protectable_sites(build.program, options);
  ASSERT_FALSE(universe.empty());

  for (const int keep_mod : {1, 2, 0}) {  // all, half, none
    masm::AsmProgram scratch = build.program;
    std::vector<eddi::ProtectSiteRef> seen;
    eddi::AsmProtectOptions recording = options;
    recording.selector = [&seen, keep_mod](const eddi::ProtectSiteRef& ref) {
      seen.push_back(ref);
      return keep_mod != 0 && ref.ordinal % keep_mod == 0;
    };
    eddi::protect_asm(scratch, recording);
    ASSERT_EQ(seen.size(), universe.size()) << "keep_mod " << keep_mod;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].ordinal, universe[i].ordinal);
      EXPECT_EQ(seen[i].function, universe[i].function);
      EXPECT_EQ(seen[i].block, universe[i].block);
      EXPECT_EQ(seen[i].inst, universe[i].inst);
      EXPECT_EQ(seen[i].cluster, universe[i].cluster);
    }
  }
}

// The plan's budget arithmetic and the pipeline integration: the
// protection pass skips exactly the unselected sites, budget 1.0
// reproduces full FERRUM, and plans replay deterministically.
TEST(FlowSelective, PipelineProtectsExactlyThePlan) {
  const auto& workload = workloads::all().front();

  pipeline::BuildOptions full_options;
  const auto full =
      pipeline::build(workload.source, Technique::kFerrum, full_options);

  pipeline::BuildOptions half_options;
  half_options.selective.strategy = SelectiveOptions::Strategy::kAnalysis;
  half_options.selective.budget = 0.5;
  const auto half =
      pipeline::build(workload.source, Technique::kFerrum, half_options);
  const auto& plan = half.selective_plan;
  ASSERT_FALSE(plan.universe.empty());
  EXPECT_EQ(plan.selected.size(),
            static_cast<std::size_t>(plan.budget_sites));
  EXPECT_EQ(half.asm_stats.skipped_sites,
            plan.universe.size() - plan.selected.size());

  pipeline::BuildOptions all_options;
  all_options.selective.strategy = SelectiveOptions::Strategy::kAnalysis;
  all_options.selective.budget = 1.0;
  const auto all =
      pipeline::build(workload.source, Technique::kFerrum, all_options);
  EXPECT_EQ(all.selective_plan.selected.size(),
            all.selective_plan.universe.size());
  // Budget 1.0 selects every site, so the emitted program is the full
  // FERRUM program, byte for byte.
  EXPECT_EQ(masm::print(all.program), masm::print(full.program));

  const auto replay =
      pipeline::build(workload.source, Technique::kFerrum, half_options);
  EXPECT_EQ(masm::print(replay.program), masm::print(half.program));
}

// Random plans with different seeds draw different prefixes but the same
// universe; the same seed replays exactly.
TEST(FlowSelective, RandomStrategyIsSeedDeterministic) {
  const auto& workload = workloads::all().front();
  const auto build = pipeline::build(workload.source, Technique::kNone);
  const eddi::AsmProtectOptions protect_options;

  SelectiveOptions options;
  options.strategy = SelectiveOptions::Strategy::kRandom;
  options.budget = 0.5;
  options.seed = 7;
  const auto a =
      pipeline::plan_selective(build.program, options, protect_options);
  const auto b =
      pipeline::plan_selective(build.program, options, protect_options);
  EXPECT_EQ(a.selected, b.selected);

  options.seed = 8;
  const auto c =
      pipeline::plan_selective(build.program, options, protect_options);
  EXPECT_EQ(c.selected.size(), a.selected.size());
  EXPECT_NE(c.selected, a.selected);
}

}  // namespace
}  // namespace ferrum
